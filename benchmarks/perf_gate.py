#!/usr/bin/env python
"""Pinned-seed perf regression gate for the columnar kernels.

Measures per-query latency for every algorithm twice on the same pinned
workload — once with the vectorized (columnar) kernels, once on the
object path via ``scalar_kernels()`` — and emits per-series p50/p95
latencies, the deterministic circleScan/pruning counters, and the
measured ``speedup_vs_object_path``.

The regression gate compares a run against a committed baseline:

* **counters** are deterministic on a pinned seed, so any drift is an
  algorithmic change and fails exactly;
* **speedup** is a same-process ratio (both modes timed on the same
  machine within one run), so it is robust to host speed differences —
  a series fails when its speedup falls below ``baseline * (1 - tol)``.

Usage::

    # Emit the benchmark artifact (BENCH_6.json) at full scale
    python benchmarks/perf_gate.py --scale full --out BENCH_6.json

    # Record a baseline for the gate
    python benchmarks/perf_gate.py --scale small --write-baseline \
        benchmarks/perf_baseline_small.json

    # CI gate: green within tolerance, red beyond it
    python benchmarks/perf_gate.py --scale small --baseline \
        benchmarks/perf_baseline_small.json

    # Prove the gate trips: inject a synthetic 25% slowdown
    python benchmarks/perf_gate.py --scale small --baseline \
        benchmarks/perf_baseline_small.json --inject-regression 0.25
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

SEED = 0xB6B6
SHUFFLER_SEED = 0x5EED

#: Workload presets: (objects, vocabulary size, query keywords, queries).
SCALES = {
    "smoke": dict(n=2500, terms=12, m=5, queries=3, repeats=1),
    "small": dict(n=6000, terms=16, m=6, queries=5, repeats=3),
    "full": dict(n=20000, terms=20, m=8, queries=6, repeats=3),
}

#: Counters copied from ``Group.stats`` when present — the deterministic
#: work measures the gate tracks exactly.
TRACKED_COUNTERS = (
    "circle_scans",
    "binary_steps",
    "pruned_poles",
    "candidate_circles",
    "poles_scanned",
    "anchors",
)


def build_workload(scale: str):
    cfg = SCALES[scale]
    rng = random.Random(SEED)
    vocab = [f"kw{i}" for i in range(cfg["terms"])]
    records = []
    for _ in range(cfg["n"]):
        x = rng.uniform(0.0, 1000.0)
        y = rng.uniform(0.0, 1000.0)
        keywords = rng.sample(vocab, rng.randint(1, 3))
        records.append((x, y, keywords))
    from repro.core.objects import Dataset

    dataset = Dataset.from_records(records, name=f"perf-gate-{scale}")
    queries = [tuple(rng.sample(vocab, cfg["m"])) for _ in range(cfg["queries"])]
    return dataset, queries, cfg


def algorithms():
    from repro.core.exact import exact
    from repro.core.gkg import gkg
    from repro.core.skec import skec
    from repro.core.skeca import skeca
    from repro.core.skecaplus import skeca_plus

    return {
        "GKG": gkg,
        "SKEC": skec,
        "SKECa": skeca,
        "SKECa+": skeca_plus,
        "EXACT": exact,
    }


def _run_mode(dataset, queries, repeats: int, vectorized: bool):
    """Per-algorithm latency samples + answers + counters for one mode."""
    import repro.geometry.mcc as mcc
    from repro.core.query import compile_query
    from repro.kernels import set_vectorized

    set_vectorized(vectorized)
    # Welzl's MCC shuffler is module-level workload state; pin it so both
    # modes see identical shuffle sequences (and identical answers).
    mcc._SHUFFLER = random.Random(SHUFFLER_SEED)
    out = {}
    for name, fn in algorithms().items():
        samples = []
        answers = []
        counters = {key: 0.0 for key in TRACKED_COUNTERS}
        for _rep in range(repeats):
            for q in queries:
                t0 = time.perf_counter()
                ctx = compile_query(dataset, q)
                group = fn(ctx)
                samples.append(time.perf_counter() - t0)
                if _rep == 0:
                    answers.append((tuple(group.object_ids), group.diameter))
                    for key in TRACKED_COUNTERS:
                        counters[key] += float(group.stats.get(key, 0.0))
        out[name] = (samples, answers, counters)
    return out


def measure(scale: str, inject_regression: float = 0.0) -> dict:
    dataset, queries, cfg = build_workload(scale)
    from repro.core.gkg import gkg
    from repro.core.query import compile_query
    from repro.kernels import set_vectorized, vectorized_enabled

    original = vectorized_enabled()
    try:
        # Warm lazy one-time state (scipy import, per-term NN columns) so
        # the timed passes measure steady-state latency.
        set_vectorized(True)
        for q in queries:
            ctx = compile_query(dataset, q)
            gkg(ctx)
            ctx.cover_radii
        vec = _run_mode(dataset, queries, cfg["repeats"], vectorized=True)
        obj = _run_mode(dataset, queries, cfg["repeats"], vectorized=False)
    finally:
        set_vectorized(original)

    series = {}
    for name in vec:
        v_samples, v_answers, v_counters = vec[name]
        o_samples, o_answers, o_counters = obj[name]
        if v_answers != o_answers:
            raise SystemExit(
                f"PARITY VIOLATION: {name} answers differ between the "
                "columnar and object paths — fix the kernels before timing."
            )
        if v_counters != o_counters:
            raise SystemExit(
                f"PARITY VIOLATION: {name} counters differ between modes."
            )
        if inject_regression:
            v_samples = [s * (1.0 + inject_regression) for s in v_samples]
        series[name] = {
            "p50_us": round(statistics.median(v_samples) * 1e6, 1),
            "p95_us": round(_p95(v_samples) * 1e6, 1),
            "object_path_p50_us": round(statistics.median(o_samples) * 1e6, 1),
            "object_path_p95_us": round(_p95(o_samples) * 1e6, 1),
            "speedup_vs_object_path": round(
                _paired_speedup(v_samples, o_samples, len(queries)), 3
            ),
            "counters": {k: v for k, v in v_counters.items() if v},
        }
    return {
        "bench": "BENCH_6",
        "description": "columnar kernels vs object path, pinned seed",
        "seed": SEED,
        "scale": scale,
        "workload": {k: cfg[k] for k in ("n", "terms", "m", "queries", "repeats")},
        "series": series,
    }


def _p95(samples):
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(0.95 * (len(ordered) - 1))))
    return ordered[idx]


def _paired_speedup(v_samples, o_samples, n_queries):
    """Median over queries of best-vec vs best-object per-query latency.

    Samples arrive as ``repeats`` back-to-back sweeps over the same query
    list, so index ``i % n_queries`` identifies the query.  Taking the
    per-query minimum over repeats discards scheduler noise, and pairing
    the two modes query-by-query removes cross-query latency variance —
    the resulting ratio is far more stable run-to-run than a ratio of
    global medians, which is what lets the gate hold a tight tolerance.
    """
    ratios = []
    for q in range(n_queries):
        v_best = min(v_samples[i] for i in range(q, len(v_samples), n_queries))
        o_best = min(o_samples[i] for i in range(q, len(o_samples), n_queries))
        ratios.append(o_best / v_best)
    return statistics.median(ratios)


def check_against_baseline(result: dict, baseline: dict, tolerance: float) -> int:
    """Gate: exact counters, speedup within the tolerance band.

    Prints a per-series delta table; returns a process exit code.
    """
    failures = []
    rows = []
    for name, cur in sorted(result["series"].items()):
        base = baseline["series"].get(name)
        if base is None:
            rows.append((name, "-", cur["speedup_vs_object_path"], "NEW"))
            continue
        status = "ok"
        if cur["counters"] != base["counters"]:
            status = "COUNTER DRIFT"
            failures.append(
                f"{name}: counters changed {base['counters']} -> {cur['counters']}"
            )
        floor = base["speedup_vs_object_path"] * (1.0 - tolerance)
        if cur["speedup_vs_object_path"] < floor:
            status = "REGRESSED"
            failures.append(
                f"{name}: speedup {cur['speedup_vs_object_path']:.2f}x fell "
                f"below the tolerance floor {floor:.2f}x "
                f"(baseline {base['speedup_vs_object_path']:.2f}x)"
            )
        rows.append(
            (
                name,
                base["speedup_vs_object_path"],
                cur["speedup_vs_object_path"],
                status,
            )
        )

    print(f"{'series':<8} {'baseline':>9} {'current':>9}  status")
    for name, base_s, cur_s, status in rows:
        base_txt = f"{base_s:.2f}x" if isinstance(base_s, float) else base_s
        print(f"{name:<8} {base_txt:>9} {cur_s:>8.2f}x  {status}")
    if failures:
        print("\nPERF GATE: FAIL")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("\nPERF GATE: OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--out", help="write the benchmark artifact JSON here")
    parser.add_argument("--baseline", help="compare against this baseline and gate")
    parser.add_argument("--write-baseline", help="write a fresh baseline here")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional speedup drop before the gate trips",
    )
    parser.add_argument(
        "--inject-regression",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="inflate measured columnar latencies by this fraction "
        "(demonstrates the gate tripping; never use when recording)",
    )
    args = parser.parse_args(argv)

    result = measure(args.scale, inject_regression=args.inject_regression)

    for name, row in sorted(result["series"].items()):
        print(
            f"{name:<8} p50 {row['p50_us']:>9.1f}us  "
            f"object-path p50 {row['object_path_p50_us']:>9.1f}us  "
            f"speedup {row['speedup_vs_object_path']:>6.2f}x"
        )

    if args.out:
        Path(args.out).write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    if args.write_baseline:
        if args.inject_regression:
            raise SystemExit("refusing to record a baseline with injected regression")
        Path(args.write_baseline).write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote baseline {args.write_baseline}")
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        return check_against_baseline(result, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
