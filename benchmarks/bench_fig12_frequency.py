"""Figure 12: varying the query-keyword frequency pool (LA).

Paper shape: all algorithms slow down as query terms get more frequent
(more relevant objects); SKECa+ stays near-optimal; EXACT keeps a higher
success rate than VirbR and wins on common successes.
"""

import math

from repro.experiments.figures import fig12_vary_frequency

from _common import QUERIES, SCALE, TIMEOUT, run_figure


def test_fig12_vary_frequency(benchmark):
    approx_rt, approx_ra, exact_rt, exact_sr = run_figure(
        benchmark,
        fig12_vary_frequency,
        scale=SCALE,
        queries_per_set=QUERIES,
        pool_fractions=(0.2, 0.4, 0.6, 0.8, 1.0),
        timeout=TIMEOUT,
    )

    # SKECa+ stays within its guarantee across all pools.
    for r in approx_ra.series["SKECa+"]:
        if not math.isnan(r):
            assert r <= 2 / math.sqrt(3) + 0.01 + 1e-9

    # EXACT success rate dominates VirbR's.
    for e, v in zip(exact_sr.series["EXACT"], exact_sr.series["VirbR"]):
        assert e >= v - 1e-9

    # More frequent pools mean more relevant objects: the approximation
    # runtimes at the full pool exceed the rare pool's (weak check, noise
    # tolerant).
    rt = approx_rt.series["SKECa+"]
    assert rt[-1] >= rt[0] * 0.5
