"""Shared benchmark configuration.

Every benchmark regenerates one table/figure of the paper and prints the
reproduced series, so ``pytest benchmarks/ --benchmark-only`` leaves a
readable record of the reproduction next to the timing data.

Scales are chosen so the full suite completes in minutes on a laptop;
raise ``REPRO_BENCH_SCALE`` to push toward the paper's dataset sizes.
"""

import os

import pytest

#: Dataset scale factor shared by all figure benchmarks (preset sizes are
#: 20k/30k/40k objects at scale 1.0).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))

#: Queries per (dataset, parameter) cell; the paper uses 50.
QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "5"))

#: Timeout for exact algorithms, in seconds (the paper uses 60).
TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "10"))

#: When set, every benchmark appends the process-wide MetricsRegistry
#: (per-algorithm latency + search/pruning counters) to this JSON path.
METRICS_PATH = os.environ.get("REPRO_BENCH_METRICS")


def dump_metrics(path=None):
    """Append the process-wide serving metrics registry to ``path``.

    Every :class:`~repro.experiments.runner.ExperimentRunner` the figure
    functions create reports into ``MetricsRegistry.default()``, so after a
    benchmark run this holds per-algorithm latency aggregates (including
    the p50/p95/p99 histogram snapshots) and the circleScan/pruning
    counters of everything that executed.

    Each call appends one single-line JSON snapshot (JSON-lines), so a
    session that runs several benchmarks against the same ``path`` keeps
    every dump instead of overwriting the earlier ones.  The Prometheus
    text rendering at ``<path>.prom`` is a point-in-time exposition format
    and is rewritten with the latest snapshot on every call.
    """
    from repro.serving.stats import MetricsRegistry

    target = path or METRICS_PATH
    if not target:
        return None
    registry = MetricsRegistry.default()
    with open(target, "a") as fh:
        fh.write(registry.to_json(indent=None))
        fh.write("\n")
    with open(target + ".prom", "w") as fh:
        fh.write(registry.to_prometheus())
    return target


def run_figure(benchmark, fn, **kwargs):
    """Benchmark one figure function and print its reproduced series."""
    result = benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
    print()
    if isinstance(result, tuple) and isinstance(result[0], str):
        print(result[0])  # table1 returns (text, stats)
    else:
        for figure in result:
            print(figure.render())
            print()
    dump_metrics()
    return result
