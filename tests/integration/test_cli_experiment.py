"""CLI experiment subcommand tests (JSON export, epsilon/timeout flags)."""

import json

import pytest

from repro.cli import main


class TestExperimentJson:
    def test_save_json_round_trips(self, tmp_path, capsys):
        out = tmp_path / "fig7.json"
        code = main(
            ["experiment", "fig7", "--scale", "0.01", "--save-json", str(out)]
        )
        assert code == 0
        assert "saved 2 figure(s)" in capsys.readouterr().out

        from repro.experiments.persistence import load_figures

        figures = load_figures(out)
        assert [f.figure_id for f in figures] == ["Fig7a", "Fig7b"]
        document = json.loads(out.read_text())
        assert document["format"] == "repro-figures-v1"

    def test_table1_has_no_json(self, tmp_path, capsys):
        # table1 returns a string; --save-json is simply unused.
        code = main(["experiment", "table1", "--scale", "0.01"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out


class TestQueryFlags:
    @pytest.fixture
    def dataset_path(self, tmp_path):
        path = tmp_path / "city.jsonl"
        assert main(["generate", "LA", str(path), "--scale", "0.005"]) == 0
        return path

    def test_epsilon_flag(self, dataset_path, capsys):
        code = main(
            [
                "query", str(dataset_path), "t0", "t1",
                "--algorithm", "SKECa+", "--epsilon", "0.25",
            ]
        )
        assert code == 0
        assert "diameter" in capsys.readouterr().out

    def test_timeout_flag_propagates(self, dataset_path):
        from repro.datasets.io import load_jsonl
        from repro.exceptions import AlgorithmTimeout

        # Rare terms so no single object covers the query (the
        # single-object shortcut legitimately returns before any deadline
        # poll).
        ds = load_jsonl(dataset_path)
        rare = ds.vocabulary.terms_by_frequency()[:6]
        with pytest.raises(AlgorithmTimeout):
            main(
                [
                    "query", str(dataset_path), *rare,
                    "--algorithm", "EXACT", "--timeout", "-1",
                ]
            )
