"""Edge cases cutting across modules: degenerate datasets and queries."""

import pytest

from repro.baselines.asgk import asgk, asgka
from repro.baselines.bruteforce import brute_force_optimal
from repro.baselines.virbr import virbr
from repro.core.engine import ALGORITHMS, MCKEngine
from repro.core.objects import Dataset
from repro.core.query import compile_query


class TestSingleKeywordQueries:
    """m = 1: every holder is a complete answer (diameter 0)."""

    @pytest.fixture
    def ds(self):
        return Dataset.from_records(
            [(0, 0, ["a"]), (5, 5, ["a", "b"]), (9, 9, ["b"])]
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_algorithms(self, ds, algorithm):
        group = MCKEngine(ds).query(["a"], algorithm=algorithm)
        assert group.diameter == 0.0
        assert len(group) == 1

    def test_baselines(self, ds):
        ctx = compile_query(ds, ["b"])
        for solver in (virbr, asgk, asgka, brute_force_optimal):
            assert solver(ctx).diameter == 0.0


class TestCoincidentObjects:
    """All objects at one point: every feasible group has diameter 0."""

    @pytest.fixture
    def ds(self):
        return Dataset.from_records(
            [(3, 3, ["a"]), (3, 3, ["b"]), (3, 3, ["c"]), (3, 3, ["a", "c"])]
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_zero_diameter(self, ds, algorithm):
        group = MCKEngine(ds).query(["a", "b", "c"], algorithm=algorithm)
        assert group.diameter == pytest.approx(0.0, abs=1e-12)
        assert group.covers(ds, ["a", "b", "c"])


class TestCollinearDatasets:
    """Degenerate geometry: all objects on one line."""

    @pytest.fixture
    def ds(self):
        return Dataset.from_records(
            [(float(i), 0.0, [k]) for i, k in enumerate("abcabcabc")]
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_optimal_window(self, ds, algorithm):
        # Optimal {a,b,c} group on the line is any consecutive window: diam 2.
        group = MCKEngine(ds).query(["a", "b", "c"], algorithm=algorithm)
        if algorithm in ("EXACT",):
            assert group.diameter == pytest.approx(2.0)
        else:
            assert group.diameter <= 2.0 * 2.0 + 1e-9

    def test_exact_matches_bruteforce(self, ds):
        ctx = compile_query(ds, ["a", "b", "c"])
        from repro.core.exact import exact

        assert exact(ctx).diameter == pytest.approx(
            brute_force_optimal(ctx).diameter
        )


class TestTinyDatasets:
    def test_two_objects(self):
        ds = Dataset.from_records([(0, 0, ["a"]), (7, 0, ["b"])])
        for algorithm in ALGORITHMS:
            group = MCKEngine(ds).query(["a", "b"], algorithm=algorithm)
            assert group.diameter == pytest.approx(7.0), algorithm

    def test_exactly_one_feasible_group(self):
        ds = Dataset.from_records(
            [(0, 0, ["a"]), (100, 100, ["b"]), (200, 0, ["c"])]
        )
        for algorithm in ALGORITHMS:
            group = MCKEngine(ds).query(["a", "b", "c"], algorithm=algorithm)
            assert set(group.object_ids) == {0, 1, 2}, algorithm


class TestHugeCoordinates:
    """UTM-scale coordinates (1e5-1e7 m) must not break the geometry."""

    def test_all_algorithms_agree(self):
        base_x, base_y = 583_000.0, 4_507_000.0
        ds = Dataset.from_records(
            [
                (base_x, base_y, ["a"]),
                (base_x + 120, base_y + 40, ["b"]),
                (base_x + 60, base_y + 130, ["c"]),
                (base_x + 50_000, base_y, ["a", "b", "c"]),
            ]
        )
        ctx = compile_query(ds, ["a", "b", "c"])
        reference = brute_force_optimal(ctx).diameter
        for algorithm in ("EXACT", "SKECa+", "SKEC"):
            group = MCKEngine(ds).query(["a", "b", "c"], algorithm=algorithm)
            assert group.diameter <= 1.17 * reference + 1e-6, algorithm
