"""Assertions of the paper's qualitative experimental claims at small scale.

Each test pins down one claim of §6 that the benches reproduce at larger
scale; keeping a cheap automated version here guards against regressions
that silently break a reproduced shape.
"""

import pytest

from repro.core.engine import MCKEngine
from repro.core.query import compile_query
from repro.datasets.queries import generate_queries
from repro.datasets.synthetic import make_la_like
from repro.experiments.runner import ExperimentRunner
from repro.experiments.metrics import summarize


@pytest.fixture(scope="module")
def city():
    return make_la_like(scale=0.04)


@pytest.fixture(scope="module")
def queries(city):
    return generate_queries(city, m=4, count=4, seed=3)


@pytest.fixture(scope="module")
def measurements(city, queries):
    runner = ExperimentRunner(city)
    return runner.run_suite(
        ["GKG", "SKECa+", "EXACT", "VirbR"], queries, timeout=15.0
    )


def _summary(measurements, algo):
    for s in summarize(measurements):
        if s.algorithm == algo:
            return s
    raise KeyError(algo)


class TestAccuracyOrdering:
    def test_skeca_plus_at_least_as_accurate_as_gkg(self, measurements):
        """§6.2.2: SKECa+ achieves better accuracy than GKG."""
        gkg = _summary(measurements, "GKG")
        sk = _summary(measurements, "SKECa+")
        assert sk.mean_ratio <= gkg.mean_ratio + 1e-9

    def test_skeca_plus_near_optimal(self, measurements):
        """§6.2.2: SKECa+ always obtains nearly optimal groups."""
        sk = _summary(measurements, "SKECa+")
        assert sk.mean_ratio <= 1.16  # the 2/sqrt(3)+eps guarantee
        assert sk.max_ratio <= 1.16

    def test_exact_ratio_exactly_one(self, measurements):
        ex = _summary(measurements, "EXACT")
        assert ex.mean_ratio == pytest.approx(1.0, abs=1e-9)

    def test_virbr_ratio_exactly_one(self, measurements):
        vb = _summary(measurements, "VirbR")
        if vb.n_succeeded:
            assert vb.mean_ratio == pytest.approx(1.0, abs=1e-9)


class TestRuntimeOrdering:
    def test_gkg_fastest(self, measurements):
        """§6.2.2: GKG runs the fastest on all datasets."""
        gkg = _summary(measurements, "GKG")
        for algo in ("SKECa+", "EXACT"):
            other = _summary(measurements, algo)
            assert gkg.mean_runtime <= other.mean_runtime * 1.5 + 0.005

    def test_exact_not_slower_than_virbr(self, city, queries):
        """§1/§6.2.2: EXACT outperforms VirbR (allowing slack at this tiny
        scale where both are in milliseconds)."""
        runner = ExperimentRunner(city)
        ms = runner.run_suite(
            ["EXACT", "VirbR"], queries, timeout=15.0, with_reference=False
        )
        ex = _summary(ms, "EXACT")
        vb = _summary(ms, "VirbR")
        if vb.n_succeeded == 0:
            # VirbR hit the threshold on every query while EXACT finished:
            # the claim holds in its strongest form.
            assert ex.n_succeeded > 0
            return
        assert ex.mean_runtime <= vb.mean_runtime * 2.0 + 0.01


class TestEpsilonClaim:
    def test_smaller_epsilon_no_worse_accuracy(self, city):
        """Figure 7: accuracy degrades as epsilon grows."""
        queries = generate_queries(city, m=4, count=3, seed=9)
        fine = ExperimentRunner(city, epsilon=0.0004)
        coarse = ExperimentRunner(city, epsilon=0.25)
        fine_ms = fine.run_suite(["SKECa+"], queries)
        coarse_ms = coarse.run_suite(["SKECa+"], queries)
        assert (
            _summary(fine_ms, "SKECa+").mean_ratio
            <= _summary(coarse_ms, "SKECa+").mean_ratio + 1e-9
        )


class TestSingleObjectAnswer:
    def test_all_algorithms_handle_full_cover_object(self, city):
        """An object covering the whole query short-circuits everywhere."""
        obj = max(city, key=lambda o: len(o.keywords))
        keywords = sorted(obj.keywords)[:3]
        if len(keywords) < 2:
            pytest.skip("no multi-keyword object in this sample")
        engine = MCKEngine(city)
        for algo in ("GKG", "SKECa", "SKECa+", "EXACT"):
            group = engine.query(keywords, algorithm=algo)
            assert group.diameter == pytest.approx(0.0, abs=1e-9), algo
