"""Every example script must run end-to-end (the examples are API docs)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
SRC_DIR = REPO_ROOT / "src"
ALL_EXAMPLES = sorted(
    p.name for p in EXAMPLES_DIR.glob("*.py") if not p.name.startswith("_")
)


def _example_env():
    """The subprocess must see ``src/`` even without an installed package."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(SRC_DIR) if not existing else os.pathsep.join([str(SRC_DIR), existing])
    )
    return env


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # artefacts (SVGs) land in the temp dir, not the repo
        env=_example_env(),
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-1500:]}\n{result.stderr[-1500:]}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"


def test_example_inventory():
    """The README promises at least these scenarios."""
    required = {
        "quickstart.py",
        "location_detection.py",
        "trip_planning.py",
        "np_hardness_demo.py",
        "benchmark_walkthrough.py",
        "distributed_mck.py",
        "road_network_mck.py",
        "visualize_query.py",
    }
    assert required <= set(ALL_EXAMPLES)
