"""End-to-end tests of the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def dataset_path(tmp_path):
    path = tmp_path / "city.jsonl"
    code = main(["generate", "NY", str(path), "--scale", "0.01"])
    assert code == 0
    return path


class TestGenerate:
    def test_writes_valid_jsonl(self, dataset_path):
        lines = dataset_path.read_text().strip().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == "repro-mck-v1"
        record = json.loads(lines[1])
        assert {"x", "y", "keywords"} <= set(record)

    def test_seed_changes_output(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        main(["generate", "NY", str(a), "--scale", "0.01", "--seed", "1"])
        main(["generate", "NY", str(b), "--scale", "0.01", "--seed", "2"])
        assert a.read_text() != b.read_text()


class TestQuery:
    def test_query_prints_group(self, dataset_path, capsys):
        code = main(
            ["query", str(dataset_path), "t0", "t1", "--algorithm", "EXACT"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "diameter" in out
        assert "EXACT" in out

    def test_approximate_algorithm(self, dataset_path, capsys):
        code = main(["query", str(dataset_path), "t0", "t1", "t2"])
        assert code == 0
        assert "SKECa+" in capsys.readouterr().out


class TestStats:
    def test_stats_table(self, dataset_path, capsys):
        code = main(["stats", str(dataset_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Objects" in out
        assert "NY-like" in out


class TestExperiment:
    def test_table1(self, capsys):
        code = main(["experiment", "table1", "--scale", "0.01"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_fig7_tiny(self, capsys):
        code = main(["experiment", "fig7", "--scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig7a" in out and "Fig7b" in out


class TestUsage:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()


class TestTrace:
    def test_writes_chrome_trace_and_prometheus(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        prom_path = tmp_path / "metrics.prom"
        code = main(
            [
                "trace",
                "--preset",
                "NY",
                "--scale",
                "0.005",
                "--m",
                "3",
                "--queries",
                "2",
                "--repeat",
                "2",
                "--algorithm",
                "SKECa+",
                "--trace-out",
                str(trace_path),
                "--prom-out",
                str(prom_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve.request" in out
        document = json.loads(trace_path.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert "serve.request" in names
        assert "engine.query" in names
        prom = prom_path.read_text()
        assert 'mck_query_latency_seconds_bucket' in prom
        assert 'cache="hit"' in prom and 'cache="miss"' in prom

    def test_existing_dataset_and_histogram_summary(self, dataset_path, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                "--dataset",
                str(dataset_path),
                "--m",
                "2",
                "--queries",
                "1",
                "--repeat",
                "1",
                "--algorithm",
                "GKG",
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mck_query_latency_seconds" in out
        assert trace_path.exists()

    def test_rejects_bad_sample_rate(self, tmp_path, capsys):
        code = main(
            ["trace", "--sample-rate", "1.5", "--trace-out", str(tmp_path / "t.json")]
        )
        assert code == 2


class TestMetricsCommand:
    def test_wraps_nested_command(self, capsys):
        code = main(["metrics", "experiment", "table1", "--scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "mck_algorithm_seconds" in out

    def test_prometheus_flag(self, capsys):
        code = main(
            ["metrics", "--prometheus", "experiment", "table1", "--scale", "0.01"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE mck_algorithm_seconds histogram" in out

    def test_rejects_nested_metrics(self, capsys):
        assert main(["metrics", "metrics"]) == 2

    def test_requires_nested_command(self, capsys):
        assert main(["metrics"]) == 2
