"""End-to-end tests of the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def dataset_path(tmp_path):
    path = tmp_path / "city.jsonl"
    code = main(["generate", "NY", str(path), "--scale", "0.01"])
    assert code == 0
    return path


class TestGenerate:
    def test_writes_valid_jsonl(self, dataset_path):
        lines = dataset_path.read_text().strip().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == "repro-mck-v1"
        record = json.loads(lines[1])
        assert {"x", "y", "keywords"} <= set(record)

    def test_seed_changes_output(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        main(["generate", "NY", str(a), "--scale", "0.01", "--seed", "1"])
        main(["generate", "NY", str(b), "--scale", "0.01", "--seed", "2"])
        assert a.read_text() != b.read_text()


class TestQuery:
    def test_query_prints_group(self, dataset_path, capsys):
        code = main(
            ["query", str(dataset_path), "t0", "t1", "--algorithm", "EXACT"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "diameter" in out
        assert "EXACT" in out

    def test_approximate_algorithm(self, dataset_path, capsys):
        code = main(["query", str(dataset_path), "t0", "t1", "t2"])
        assert code == 0
        assert "SKECa+" in capsys.readouterr().out


class TestStats:
    def test_stats_table(self, dataset_path, capsys):
        code = main(["stats", str(dataset_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Objects" in out
        assert "NY-like" in out


class TestExperiment:
    def test_table1(self, capsys):
        code = main(["experiment", "table1", "--scale", "0.01"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_fig7_tiny(self, capsys):
        code = main(["experiment", "fig7", "--scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig7a" in out and "Fig7b" in out


class TestUsage:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()
