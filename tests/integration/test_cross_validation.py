"""Randomized cross-validation: every algorithm against brute force.

These are the strongest correctness tests in the suite: three exact
algorithms implemented with entirely different strategies (bounded circle
search, virtual-tree enumeration, Dia-CoSKQ adaptation) must all agree
with plain exhaustive enumeration, and every approximation algorithm must
respect its proven ratio on every instance.
"""

import pytest

from repro.baselines.asgk import asgk, asgka
from repro.baselines.bruteforce import brute_force_optimal
from repro.baselines.virbr import virbr
from repro.core.common import SQRT3_FACTOR
from repro.core.exact import exact
from repro.core.gkg import gkg
from repro.core.query import compile_query
from repro.core.skec import skec
from repro.core.skeca import skeca
from repro.core.skecaplus import skeca_plus
from tests.conftest import feasible_query, make_random_dataset

SEEDS = range(10)


def _instance(seed, n=45, m=4):
    ds = make_random_dataset(seed, n=n)
    query = feasible_query(ds, seed, m)
    return ds, query, compile_query(ds, query)


class TestExactAlgorithmsAgree:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_three_exact_implementations(self, seed):
        ds, query, ctx = _instance(seed)
        reference = brute_force_optimal(ctx).diameter
        assert exact(ctx).diameter == pytest.approx(reference, abs=1e-9)
        assert virbr(ctx).diameter == pytest.approx(reference, abs=1e-9)
        assert asgk(ctx).diameter == pytest.approx(reference, abs=1e-9)


class TestApproximationBounds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_ratios_hold(self, seed):
        ds, query, ctx = _instance(seed)
        opt = brute_force_optimal(ctx).diameter
        eps = 0.01

        checks = [
            (gkg(ctx), 2.0),
            (skec(ctx), SQRT3_FACTOR),
            (skeca(ctx, eps), SQRT3_FACTOR + eps),
            (skeca_plus(ctx, eps), SQRT3_FACTOR + eps),
            (asgka(ctx), 2.0),
        ]
        for group, bound in checks:
            assert group.covers(ds, query), group.algorithm
            assert group.diameter <= bound * opt + 1e-9, (
                f"{group.algorithm}: {group.diameter} > {bound} * {opt}"
            )


class TestLargerQueries:
    @pytest.mark.parametrize("m", [2, 6])
    def test_exact_agreement_across_query_sizes(self, m):
        ds, query, ctx = _instance(500 + m, n=55, m=m)
        reference = brute_force_optimal(ctx).diameter
        assert exact(ctx).diameter == pytest.approx(reference, abs=1e-9)
        assert virbr(ctx).diameter == pytest.approx(reference, abs=1e-9)


class TestClusteredData:
    """Random uniform data is easy; clustered synthetic data stresses the
    sweeping-area density assumptions."""

    @pytest.mark.parametrize("seed", range(4))
    def test_on_synthetic_city(self, seed):
        from repro.datasets.queries import generate_queries
        from repro.datasets.synthetic import make_ny_like

        ds = make_ny_like(scale=0.015, seed=seed)
        (query,) = generate_queries(ds, m=4, count=1, seed=seed)
        ctx = compile_query(ds, query)
        reference = brute_force_optimal(ctx).diameter
        assert exact(ctx).diameter == pytest.approx(reference, abs=1e-9)
        group = skeca_plus(ctx, 0.01)
        assert group.diameter <= (SQRT3_FACTOR + 0.01) * reference + 1e-9
