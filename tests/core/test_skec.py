"""Tests for Algorithm SKEC (exact smallest keywords enclosing circle)."""

import math

import pytest

from repro.baselines.bruteforce import brute_force_optimal
from repro.core.common import SQRT3_FACTOR
from repro.core.objects import Dataset
from repro.core.query import compile_query
from repro.core.skec import find_oskec, skec
from repro.geometry.circle import Circle
from tests.conftest import feasible_query, make_random_dataset


class TestRatioBound:
    @pytest.mark.parametrize("seed", range(12))
    def test_theorem5_bound(self, seed):
        ds = make_random_dataset(seed, n=30)
        query = feasible_query(ds, seed, 4)
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx)
        group = skec(ctx)
        assert group.covers(ds, query)
        assert group.diameter <= SQRT3_FACTOR * opt.diameter + 1e-9

    def test_kyoto(self, kyoto_dataset, kyoto_query):
        ctx = compile_query(kyoto_dataset, kyoto_query)
        opt = brute_force_optimal(ctx)
        group = skec(ctx)
        assert group.diameter <= SQRT3_FACTOR * opt.diameter + 1e-9


class TestSkecCircleIsSmallest:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_no_smaller_covering_circle_exists(self, seed):
        """The circle SKEC returns must be the smallest keywords enclosing
        circle; verify against a dense grid of candidate circles."""
        ds = make_random_dataset(seed, n=14, vocab="abcd")
        query = feasible_query(ds, seed, 3)
        ctx = compile_query(ds, query)
        group = skec(ctx)
        circle = group.enclosing_circle
        assert circle is not None
        # Any circle through two/three relevant objects that covers the
        # query must be at least as large (Corollary 1 enumeration).
        from repro.exceptions import GeometryError
        from repro.geometry.circle import circle_from_three, circle_from_two

        n = len(ctx.relevant_ids)
        pts = [ctx.location_of_row(r) for r in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                candidates = [circle_from_two(pts[i], pts[j])]
                for k in range(j + 1, n):
                    try:
                        candidates.append(circle_from_three(pts[i], pts[j], pts[k]))
                    except GeometryError:
                        continue
                for cand in candidates:
                    rows = ctx.rows_within(cand.cx, cand.cy, cand.r)
                    if len(rows) and ctx.covers(rows):
                        assert cand.diameter >= circle.diameter - 1e-6


class TestSingleObject:
    def test_single_covering_object_returned(self):
        ds = Dataset.from_records(
            [(0, 0, ["x", "y"]), (5, 5, ["x"]), (9, 9, ["y"])]
        )
        ctx = compile_query(ds, ["x", "y"])
        group = skec(ctx)
        assert group.object_ids == (0,)
        assert group.diameter == 0.0


class TestFindOskec:
    def test_improves_loose_circle(self):
        ds = Dataset.from_records(
            [(0, 0, ["a"]), (1, 0, ["b"]), (100, 100, ["a", "b"])]
        )
        ctx = compile_query(ds, ["a", "b"])
        loose = Circle(0.5, 0.0, 50.0)
        improved = find_oskec(ctx, ctx.row_of(0), loose)
        assert improved.diameter <= 1.0 + 1e-9

    def test_keeps_circle_when_pole_hopeless(self):
        # Pole far from any 'b' holder within the current diameter.
        ds = Dataset.from_records(
            [(0, 0, ["a"]), (100, 0, ["b"]), (101, 0, ["a"])]
        )
        ctx = compile_query(ds, ["a", "b"])
        current = Circle(100.5, 0.0, 0.5)
        out = find_oskec(ctx, ctx.row_of(0), current)
        assert out is current
