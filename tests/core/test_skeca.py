"""Tests for Algorithm SKECa (per-object binary search)."""

import pytest

from repro.baselines.bruteforce import brute_force_optimal
from repro.core.common import SQRT3_FACTOR, Deadline
from repro.core.objects import Dataset
from repro.core.query import compile_query
from repro.core.skec import skec
from repro.core.skeca import find_app_oskec, skeca
from repro.exceptions import AlgorithmTimeout
from tests.conftest import feasible_query, make_random_dataset


class TestRatioBound:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("epsilon", [0.01, 0.25])
    def test_theorem6_bound(self, seed, epsilon):
        ds = make_random_dataset(seed, n=30)
        query = feasible_query(ds, seed, 4)
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx)
        group = skeca(ctx, epsilon=epsilon)
        assert group.covers(ds, query)
        assert group.diameter <= (SQRT3_FACTOR + epsilon) * opt.diameter + 1e-9


class TestAgainstExactSkec:
    @pytest.mark.parametrize("seed", range(6))
    def test_circle_close_to_exact_skec(self, seed):
        """The SKECa circle diameter is within alpha of the exact SKECq."""
        ds = make_random_dataset(seed + 50, n=25)
        query = feasible_query(ds, seed, 3)
        ctx = compile_query(ds, query)
        exact_group = skec(ctx)
        eps = 0.01
        approx_group = skeca(ctx, epsilon=eps)
        alpha = approx_group.stats.get("alpha", 1e-9)
        assert approx_group.enclosing_circle is not None
        assert exact_group.enclosing_circle is not None
        assert (
            approx_group.enclosing_circle.diameter
            <= exact_group.enclosing_circle.diameter + alpha + 1e-9
        )


class TestFindAppOskec:
    def test_returns_none_when_pole_cannot_beat_bound(self):
        ds = Dataset.from_records(
            [(0, 0, ["a"]), (100, 0, ["b"]), (101, 0, ["a"])]
        )
        ctx = compile_query(ds, ["a", "b"])
        found, steps = find_app_oskec(
            ctx, ctx.row_of(0), search_lb=0.0, current_ub=1.0, alpha=0.01
        )
        assert found is None
        assert steps == 1

    def test_converges_within_alpha(self):
        ds = Dataset.from_records(
            [(0, 0, ["a"]), (2, 0, ["b"]), (50, 50, ["a", "b"])]
        )
        ctx = compile_query(ds, ["a", "b"])
        alpha = 0.001
        found, _steps = find_app_oskec(
            ctx, ctx.row_of(0), search_lb=0.0, current_ub=10.0, alpha=alpha
        )
        assert found is not None
        # True SKECo diameter is 2.0 (segment as diameter).
        assert 2.0 - 1e-9 <= found.diameter <= 2.0 + alpha + 10.0 * alpha

    def test_steps_grow_with_precision(self):
        ds = make_random_dataset(8, n=30)
        query = feasible_query(ds, 8, 3)
        ctx = compile_query(ds, query)
        coarse = skeca(ctx, epsilon=0.25)
        fine = skeca(ctx, epsilon=0.0004)
        assert fine.stats["binary_steps"] >= coarse.stats["binary_steps"]


class TestDeadline:
    def test_timeout_raises(self):
        ds = make_random_dataset(9, n=60)
        query = feasible_query(ds, 9, 5)
        ctx = compile_query(ds, query)
        with pytest.raises(AlgorithmTimeout):
            skeca(ctx, deadline=Deadline("SKECa", -1.0))
