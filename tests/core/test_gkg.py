"""Tests for Algorithm GKG (greedy 2-approximation)."""

import pytest

from repro.baselines.bruteforce import brute_force_optimal
from repro.core.gkg import gkg
from repro.core.objects import Dataset
from repro.core.query import compile_query
from repro.exceptions import QueryError
from tests.conftest import feasible_query, make_random_dataset


class TestKyotoScenario:
    def test_finds_tight_cluster(self, kyoto_dataset, kyoto_query):
        ctx = compile_query(kyoto_dataset, kyoto_query)
        group = gkg(ctx)
        assert group.covers(kyoto_dataset, kyoto_query)
        # The greedy result must be within 2x of the true optimum (the
        # cluster 0-3, diameter ~1.7).
        opt = brute_force_optimal(ctx)
        assert group.diameter <= 2 * opt.diameter + 1e-9

    def test_group_is_feasible(self, kyoto_dataset, kyoto_query):
        ctx = compile_query(kyoto_dataset, kyoto_query)
        group = gkg(ctx)
        assert group.covers(kyoto_dataset, kyoto_query)


class TestSingleObjectShortcuts:
    def test_one_object_covers_all(self):
        ds = Dataset.from_records(
            [(0, 0, ["a", "b", "c"]), (10, 10, ["a"]), (20, 20, ["b"])]
        )
        ctx = compile_query(ds, ["a", "b", "c"])
        group = gkg(ctx)
        assert group.object_ids == (0,)
        assert group.diameter == 0.0

    def test_single_keyword_query(self):
        ds = Dataset.from_records([(0, 0, ["a"]), (9, 9, ["a"])])
        ctx = compile_query(ds, ["a"])
        group = gkg(ctx)
        assert len(group) == 1
        assert group.diameter == 0.0


class TestApproximationBound:
    @pytest.mark.parametrize("seed", range(15))
    @pytest.mark.parametrize("method", ["kdtree", "brtree"])
    def test_theorem2_bound(self, seed, method):
        ds = make_random_dataset(seed, n=35)
        query = feasible_query(ds, seed, 4)
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx)
        group = gkg(ctx, method=method)
        assert group.covers(ds, query)
        assert group.diameter <= 2.0 * opt.diameter + 1e-9

    def test_methods_same_bound_not_necessarily_same_group(self):
        ds = make_random_dataset(3, n=50)
        query = feasible_query(ds, 3, 4)
        ctx = compile_query(ds, query)
        g_kd = gkg(ctx, method="kdtree")
        g_br = gkg(ctx, method="brtree")
        opt = brute_force_optimal(ctx)
        for g in (g_kd, g_br):
            assert g.diameter <= 2 * opt.diameter + 1e-9


class TestErrors:
    def test_unknown_method(self):
        ds = make_random_dataset(1, n=10)
        ctx = compile_query(ds, feasible_query(ds, 1, 2))
        with pytest.raises(QueryError):
            gkg(ctx, method="nope")


class TestAnchors:
    def test_anchor_is_least_frequent_holder(self):
        # 'rare' appears once; the group must contain that object.
        ds = Dataset.from_records(
            [
                (0, 0, ["rare"]),
                (1, 0, ["common"]),
                (50, 50, ["common"]),
                (51, 50, ["common"]),
            ]
        )
        ctx = compile_query(ds, ["rare", "common"])
        group = gkg(ctx)
        assert 0 in group.object_ids
        assert group.diameter == pytest.approx(1.0)

    def test_stats_record_anchor_count(self):
        ds = make_random_dataset(5, n=40)
        ctx = compile_query(ds, feasible_query(ds, 5, 3))
        group = gkg(ctx)
        assert group.stats["anchors"] >= 1
