"""Tests for the Group result type."""

import pytest

from repro.core.objects import Dataset
from repro.core.query import compile_query
from repro.core.result import Group


@pytest.fixture
def ds():
    return Dataset.from_records(
        [(0, 0, ["a"]), (3, 4, ["b"]), (0, 8, ["c"]), (50, 50, ["a", "b", "c"])]
    )


class TestConstruction:
    def test_from_object_ids(self, ds):
        g = Group.from_object_ids(ds, [0, 1], algorithm="X")
        assert g.object_ids == (0, 1)
        assert g.diameter == pytest.approx(5.0)
        assert g.algorithm == "X"

    def test_from_object_ids_dedupes(self, ds):
        g = Group.from_object_ids(ds, [1, 0, 1, 0])
        assert g.object_ids == (0, 1)

    def test_from_rows(self, ds):
        ctx = compile_query(ds, ["a", "b"])
        rows = [ctx.row_of(0), ctx.row_of(1)]
        g = Group.from_rows(ctx, rows, algorithm="Y")
        assert set(g.object_ids) == {0, 1}
        assert g.diameter == pytest.approx(5.0)

    def test_singleton_diameter_zero(self, ds):
        g = Group.from_object_ids(ds, [3])
        assert g.diameter == 0.0


class TestBehaviour:
    def test_keywords_union(self, ds):
        g = Group.from_object_ids(ds, [0, 1])
        assert g.keywords(ds) == frozenset({"a", "b"})

    def test_covers(self, ds):
        g = Group.from_object_ids(ds, [0, 1, 2])
        assert g.covers(ds, ["a", "b", "c"])
        assert not g.covers(ds, ["a", "b", "c", "d"])

    def test_mcc_encloses_group(self, ds):
        g = Group.from_object_ids(ds, [0, 1, 2])
        circle = g.mcc(ds)
        for oid in g.object_ids:
            assert circle.contains(ds.location_of(oid), eps=1e-7)

    def test_mcc_uses_cached_circle(self, ds):
        from repro.geometry.circle import Circle

        g = Group.from_object_ids(ds, [0, 1])
        g.enclosing_circle = Circle(1, 1, 99.0)
        assert g.mcc(ds).r == 99.0

    def test_ratio_to(self, ds):
        opt = Group.from_object_ids(ds, [0, 1])       # diameter 5
        approx = Group.from_object_ids(ds, [0, 2])    # diameter 8
        assert approx.ratio_to(opt) == pytest.approx(8.0 / 5.0)

    def test_ratio_to_zero_optimal(self, ds):
        opt = Group.from_object_ids(ds, [3])
        same = Group.from_object_ids(ds, [3])
        other = Group.from_object_ids(ds, [0, 1])
        assert same.ratio_to(opt) == 1.0
        assert other.ratio_to(opt) == float("inf")

    def test_len_and_objects(self, ds):
        g = Group.from_object_ids(ds, [0, 2])
        assert len(g) == 2
        assert [o.oid for o in g.objects(ds)] == [0, 2]
