"""Tests for the cooperative Deadline budget."""

import time

import pytest

from repro.core.common import SQRT3_FACTOR, Deadline
from repro.exceptions import AlgorithmTimeout


class TestDeadline:
    def test_unlimited_never_fires(self):
        dl = Deadline.unlimited("X")
        for _ in range(100):
            dl.check()

    def test_none_budget_never_fires(self):
        dl = Deadline("X", None)
        dl.check()

    def test_expired_budget_fires(self):
        dl = Deadline("X", -1.0)
        with pytest.raises(AlgorithmTimeout) as exc:
            dl.check()
        assert exc.value.algorithm == "X"

    def test_budget_in_future_does_not_fire(self):
        dl = Deadline("X", 60.0)
        dl.check()

    def test_short_budget_fires_after_sleep(self):
        dl = Deadline("X", 0.005)
        time.sleep(0.02)
        with pytest.raises(AlgorithmTimeout):
            dl.check()

    def test_exception_carries_budget(self):
        dl = Deadline("EXACT", -0.5)
        with pytest.raises(AlgorithmTimeout) as exc:
            dl.check()
        assert exc.value.budget_seconds == -0.5


class TestConstants:
    def test_sqrt3_factor(self):
        assert SQRT3_FACTOR == pytest.approx(2.0 / 3**0.5)
        assert 1.154 < SQRT3_FACTOR < 1.155
