"""Tests for functional dataset updates (extended / without / explain)."""

import pytest

from repro.core.engine import MCKEngine
from repro.core.objects import Dataset


@pytest.fixture
def ds():
    return Dataset.from_records(
        [(0, 0, ["a"]), (1, 0, ["b"]), (50, 50, ["a", "b"])], name="base"
    )


class TestExtended:
    def test_appends_records(self, ds):
        bigger = ds.extended([(2, 0, ["c"])])
        assert len(bigger) == 4
        assert bigger[3].keywords == frozenset({"c"})
        assert len(ds) == 3  # parent untouched

    def test_query_sees_new_objects(self, ds):
        bigger = ds.extended([(0.5, 0.5, ["c"])])
        group = MCKEngine(bigger).query(["a", "b", "c"], algorithm="EXACT")
        assert 3 in group.object_ids

    def test_name_override(self, ds):
        assert ds.extended([], name="v2").name == "v2"
        assert ds.extended([]).name == "base"


class TestWithout:
    def test_removes_and_redensifies(self, ds):
        smaller = ds.without([0])
        assert len(smaller) == 2
        assert [o.oid for o in smaller] == [0, 1]
        assert smaller[0].keywords == frozenset({"b"})

    def test_query_on_reduced(self, ds):
        smaller = ds.without([2])  # drop the combined holder
        group = MCKEngine(smaller).query(["a", "b"], algorithm="EXACT")
        assert group.diameter == pytest.approx(1.0)

    def test_removing_nothing(self, ds):
        assert len(ds.without([])) == 3


class TestExplain:
    def test_coverage_map(self, ds):
        group = MCKEngine(ds).query(["a", "b"], algorithm="EXACT")
        explained = group.explain(ds, ["a", "b"])
        assert set(explained) == {"a", "b"}
        for t, oids in explained.items():
            assert oids, f"{t} uncovered"
            for oid in oids:
                assert t in ds[oid].keywords

    def test_uncovered_keyword_flagged(self, ds):
        from repro.core.result import Group

        broken = Group.from_object_ids(ds, [0])
        explained = broken.explain(ds, ["a", "b"])
        assert explained["b"] == []
