"""Tests for Algorithm EXACT (optimal answers via bounded search)."""

import pytest

from repro.baselines.bruteforce import brute_force_optimal
from repro.core.common import Deadline
from repro.core.exact import branch_and_bound_search, exact
from repro.core.objects import Dataset
from repro.core.query import compile_query
from repro.exceptions import AlgorithmTimeout
from tests.conftest import feasible_query, make_random_dataset


class TestOptimality:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_bruteforce(self, seed):
        ds = make_random_dataset(seed, n=40)
        query = feasible_query(ds, seed, 4)
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx)
        got = exact(ctx)
        assert got.covers(ds, query)
        assert got.diameter == pytest.approx(opt.diameter, abs=1e-9)

    @pytest.mark.parametrize("m", [2, 3, 5, 6])
    def test_various_query_sizes(self, m):
        ds = make_random_dataset(100 + m, n=50)
        query = feasible_query(ds, m, m)
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx)
        got = exact(ctx)
        assert got.diameter == pytest.approx(opt.diameter, abs=1e-9)

    @pytest.mark.parametrize("epsilon", [0.0004, 0.05, 0.25])
    def test_optimal_regardless_of_epsilon(self, epsilon):
        """EXACT is exact for every ε: ε only shapes the search bound."""
        ds = make_random_dataset(77, n=35)
        query = feasible_query(ds, 77, 4)
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx)
        got = exact(ctx, epsilon=epsilon)
        assert got.diameter == pytest.approx(opt.diameter, abs=1e-9)


class TestKyoto:
    def test_finds_cluster(self, kyoto_dataset, kyoto_query):
        ctx = compile_query(kyoto_dataset, kyoto_query)
        group = exact(ctx)
        assert set(group.object_ids) == {0, 1, 2, 3}


class TestSingleObject:
    def test_zero_diameter_answer(self):
        ds = Dataset.from_records(
            [(1, 1, ["a", "b"]), (0, 0, ["a"]), (9, 9, ["b"])]
        )
        ctx = compile_query(ds, ["a", "b"])
        group = exact(ctx)
        assert group.object_ids == (0,)
        assert group.diameter == 0.0


class TestBranchAndBound:
    def test_search_within_candidate_circle(self):
        ds = Dataset.from_records(
            [
                (0, 0, ["a"]),     # pole
                (1, 0, ["b"]),
                (0, 1, ["c"]),
                (0.1, 0.1, ["b", "c"]),
            ]
        )
        ctx = compile_query(ds, ["a", "b", "c"])
        pole = ctx.row_of(0)
        all_rows = list(range(len(ctx.relevant_ids)))
        rows, diameter = branch_and_bound_search(
            ctx, pole, all_rows, all_rows, float("inf")
        )
        # Optimal containing the pole: {0, 3} with diameter ~0.1414.
        assert set(ctx.relevant_ids[r] for r in rows) == {0, 3}
        assert diameter == pytest.approx((0.02) ** 0.5)

    def test_search_keeps_incumbent_when_no_better(self):
        ds = Dataset.from_records([(0, 0, ["a"]), (5, 0, ["b"])])
        ctx = compile_query(ds, ["a", "b"])
        pole = ctx.row_of(0)
        incumbent_rows = [0, 1]
        rows, diameter = branch_and_bound_search(
            ctx, pole, [0, 1], incumbent_rows, 5.0
        )
        assert diameter == 5.0

    def test_pole_always_in_group(self):
        ds = Dataset.from_records(
            [(0, 0, ["a"]), (1, 0, ["a", "b"]), (1.1, 0, ["b"])]
        )
        ctx = compile_query(ds, ["a", "b"])
        pole = ctx.row_of(0)
        rows, diameter = branch_and_bound_search(
            ctx, pole, list(range(3)), [], float("inf")
        )
        assert pole in rows


class TestStatsAndDeadline:
    def test_stats_recorded(self):
        ds = make_random_dataset(55, n=30)
        ctx = compile_query(ds, feasible_query(ds, 55, 3))
        group = exact(ctx)
        assert "candidate_circles" in group.stats
        assert "pruned_poles" in group.stats

    def test_timeout(self):
        ds = make_random_dataset(66, n=70)
        ctx = compile_query(ds, feasible_query(ds, 66, 5))
        with pytest.raises(AlgorithmTimeout):
            exact(ctx, deadline=Deadline("EXACT", -1.0))


class TestSingleObjectStats:
    """Regression: the single-object shortcut must emit the same stats
    keys as the full branch-and-bound (consumers index them blindly)."""

    def test_single_object_answer_has_search_counters(self):
        ds = Dataset.from_records(
            [(5.0, 5.0, ["a", "b", "c"]), (50.0, 50.0, ["a"])]
        )
        ctx = compile_query(ds, ["a", "b", "c"])
        group = exact(ctx)
        assert len(group) == 1
        assert group.diameter == 0.0
        assert group.stats["candidate_circles"] == 0.0
        assert group.stats["pruned_poles"] == 0.0
        assert group.quality == "exact"

    def test_multi_object_answer_has_same_keys(self, kyoto_dataset, kyoto_query):
        ctx = compile_query(kyoto_dataset, kyoto_query)
        single = exact(compile_query(
            Dataset.from_records([(0.0, 0.0, ["x", "y"])]), ["x", "y"]
        ))
        multi = exact(ctx)
        assert set(single.stats) >= {"candidate_circles", "pruned_poles"}
        assert set(multi.stats) >= {"candidate_circles", "pruned_poles"}
