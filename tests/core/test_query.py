"""Tests for MCKQuery compilation and the QueryContext substrate."""

import numpy as np
import pytest

from repro.core.objects import Dataset
from repro.core.query import MCKQuery, compile_query
from repro.exceptions import InfeasibleQueryError, QueryError


@pytest.fixture
def ds():
    return Dataset.from_records(
        [
            (0, 0, ["a"]),       # 0
            (1, 0, ["b"]),       # 1
            (0, 1, ["c"]),       # 2
            (10, 10, ["a", "b"]),  # 3
            (11, 10, ["c"]),     # 4
            (50, 50, ["d"]),     # 5
        ]
    )


class TestMCKQuery:
    def test_dedupes_keywords_preserving_order(self):
        q = MCKQuery(["x", "y", "x", "z"])
        assert q.keywords == ("x", "y", "z")
        assert q.m == 3

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            MCKQuery([])

    def test_iterable(self):
        assert list(MCKQuery(["a", "b"])) == ["a", "b"]


class TestCompileQuery:
    def test_unknown_keyword_infeasible(self, ds):
        with pytest.raises(InfeasibleQueryError):
            compile_query(ds, ["a", "nope"])

    def test_relevant_set(self, ds):
        ctx = compile_query(ds, ["a", "b"])
        assert ctx.relevant_ids == [0, 1, 3]

    def test_masks_query_local(self, ds):
        ctx = compile_query(ds, ["b", "a"])
        # bit 0 = 'b', bit 1 = 'a'
        assert ctx.masks[ctx.row_of(1)] == 0b01
        assert ctx.masks[ctx.row_of(0)] == 0b10
        assert ctx.masks[ctx.row_of(3)] == 0b11

    def test_full_mask(self, ds):
        ctx = compile_query(ds, ["a", "b", "c"])
        assert ctx.full_mask == 0b111

    def test_t_inf_is_least_frequent(self, ds):
        # 'd' appears once, 'a' twice.
        ctx = compile_query(ds, ["a", "d"])
        assert ctx.t_inf == "d"
        assert ctx.t_inf_bit == 0b10

    def test_accepts_query_object(self, ds):
        ctx = compile_query(ds, MCKQuery(["a", "c"]))
        assert ctx.m == 2


class TestContextHelpers:
    def test_rows_with_bit(self, ds):
        ctx = compile_query(ds, ["a", "b"])
        a_rows = ctx.rows_with_bit(1)
        assert sorted(ctx.relevant_ids[r] for r in a_rows) == [0, 3]

    def test_rows_within(self, ds):
        ctx = compile_query(ds, ["a", "b", "c"])
        rows = ctx.rows_within(0.0, 0.0, 1.2)
        assert sorted(ctx.relevant_ids[r] for r in rows) == [0, 1, 2]

    def test_covers(self, ds):
        ctx = compile_query(ds, ["a", "b", "c"])
        r3, r4 = ctx.row_of(3), ctx.row_of(4)
        assert ctx.covers([r3, r4])
        assert not ctx.covers([r3])

    def test_group_diameter_rows(self, ds):
        ctx = compile_query(ds, ["a", "b", "c"])
        r0, r1, r2 = ctx.row_of(0), ctx.row_of(1), ctx.row_of(2)
        assert ctx.group_diameter_rows([r0]) == 0.0
        assert ctx.group_diameter_rows([r0, r1, r2]) == pytest.approx(2**0.5)

    def test_distances_from_row(self, ds):
        ctx = compile_query(ds, ["a", "b"])
        d = ctx.distances_from_row(ctx.row_of(0))
        assert d[ctx.row_of(0)] == 0.0
        assert d[ctx.row_of(1)] == pytest.approx(1.0)


class TestPoleCache:
    def test_sorted_distances(self, ds):
        ctx = compile_query(ds, ["a", "b", "c"])
        cache = ctx.pole_cache(ctx.row_of(0))
        assert list(cache.dists) == sorted(cache.dists)
        assert cache.dists[0] == 0.0  # the pole itself

    def test_prefix_union_monotone(self, ds):
        ctx = compile_query(ds, ["a", "b", "c"])
        cache = ctx.pole_cache(ctx.row_of(0))
        acc = 0
        for i in range(1, len(cache.prefix_union)):
            assert int(cache.prefix_union[i]) & acc == acc
            acc = int(cache.prefix_union[i])

    def test_rows_within_closed(self, ds):
        ctx = compile_query(ds, ["a", "b"])
        cache = ctx.pole_cache(ctx.row_of(0))
        rows = set(int(r) for r in cache.rows_within(1.0))
        assert ctx.row_of(1) in rows  # distance exactly 1

    def test_union_within_matches_bruteforce(self, ds):
        ctx = compile_query(ds, ["a", "b", "c"])
        pole = ctx.row_of(3)
        cache = ctx.pole_cache(pole)
        for radius in (0.5, 1.5, 20.0, 100.0):
            expected = ctx.union_mask(ctx.rows_within(10.0, 10.0, radius))
            assert int(cache.union_within(radius)) == expected

    def test_cache_reused(self, ds):
        ctx = compile_query(ds, ["a", "b"])
        c1 = ctx.pole_cache(0)
        c2 = ctx.pole_cache(0)
        assert c1 is c2


class TestCoverRadii:
    def test_values_match_definition(self, ds):
        ctx = compile_query(ds, ["a", "b", "c"])
        radii = ctx.cover_radii
        coords = ctx.coords
        for row in range(len(ctx.relevant_ids)):
            expected = 0.0
            for bit_pos in range(ctx.m):
                bit = 1 << bit_pos
                nearest = min(
                    float(np.hypot(*(coords[r] - coords[row])))
                    for r, msk in enumerate(ctx.masks)
                    if msk & bit
                )
                expected = max(expected, nearest)
            assert radii[row] == pytest.approx(expected)

    def test_cached(self, ds):
        ctx = compile_query(ds, ["a", "b"])
        assert ctx.cover_radii is ctx.cover_radii

    def test_keyword_tree_holders(self, ds):
        ctx = compile_query(ds, ["a", "b"])
        _tree, holders = ctx.keyword_tree(0)  # bit 0 = 'a'
        assert sorted(ctx.relevant_ids[r] for r in holders) == [0, 3]
