"""Tests for query compilation with excluded objects (top-k support)."""

import pytest

from repro.core.objects import Dataset
from repro.core.query import compile_query
from repro.exceptions import InfeasibleQueryError


@pytest.fixture
def ds():
    return Dataset.from_records(
        [
            (0, 0, ["a"]),      # 0
            (1, 0, ["b"]),      # 1
            (10, 10, ["a"]),    # 2
            (11, 10, ["b"]),    # 3
            (50, 50, ["c"]),    # 4
        ]
    )


class TestExclude:
    def test_excluded_objects_absent_from_relevant_set(self, ds):
        ctx = compile_query(ds, ["a", "b"], exclude=frozenset({0, 1}))
        assert ctx.relevant_ids == [2, 3]

    def test_exclusion_recorded(self, ds):
        ctx = compile_query(ds, ["a", "b"], exclude=frozenset({0}))
        assert ctx.excluded_ids == frozenset({0})

    def test_empty_exclusion_default(self, ds):
        ctx = compile_query(ds, ["a", "b"])
        assert ctx.excluded_ids == frozenset()
        assert ctx.relevant_ids == [0, 1, 2, 3]

    def test_exclusion_breaking_coverage_raises(self, ds):
        with pytest.raises(InfeasibleQueryError) as exc:
            compile_query(ds, ["a", "b"], exclude=frozenset({1, 3}))
        assert "b" in str(exc.value)

    def test_algorithms_respect_exclusion(self, ds):
        from repro.core.exact import exact

        ctx = compile_query(ds, ["a", "b"], exclude=frozenset({0, 1}))
        group = exact(ctx)
        assert set(group.object_ids) == {2, 3}


class TestIrTreeAccessor:
    def test_built_lazily_and_cached(self, ds):
        ctx = compile_query(ds, ["a", "b"])
        t1 = ctx.ir_tree()
        t2 = ctx.ir_tree()
        assert t1 is t2
        assert len(t1) == len(ctx.relevant_ids)

    def test_bit_positions_as_terms(self, ds):
        ctx = compile_query(ds, ["b", "a"])  # bit 0 = b, bit 1 = a
        tree = ctx.ir_tree()
        entry = tree.nearest_with_term(0.0, 0.0, 0)  # nearest 'b' holder
        assert entry is not None
        assert entry.item == 1
