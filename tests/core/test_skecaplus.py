"""Tests for Algorithm SKECa+ (global binary search, Algorithm 2)."""

import pytest

from repro.baselines.bruteforce import brute_force_optimal
from repro.core.circlescan import circle_scan
from repro.core.common import SQRT3_FACTOR
from repro.core.objects import Dataset
from repro.core.query import compile_query
from repro.core.skeca import skeca
from repro.core.skecaplus import skeca_plus, skeca_plus_state
from tests.conftest import feasible_query, make_random_dataset


class TestRatioBound:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("epsilon", [0.01, 0.25])
    def test_theorem6_bound(self, seed, epsilon):
        ds = make_random_dataset(seed, n=30)
        query = feasible_query(ds, seed, 4)
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx)
        group = skeca_plus(ctx, epsilon=epsilon)
        assert group.covers(ds, query)
        assert group.diameter <= (SQRT3_FACTOR + epsilon) * opt.diameter + 1e-9


class TestEquivalenceWithSkeca:
    @pytest.mark.parametrize("seed", range(8))
    def test_same_quality_as_skeca(self, seed):
        """Both algorithms converge to within alpha of ø(SKECq): their
        circle diameters differ by at most alpha."""
        ds = make_random_dataset(seed + 20, n=30)
        query = feasible_query(ds, seed, 3)
        ctx = compile_query(ds, query)
        a = skeca(ctx, epsilon=0.01)
        b = skeca_plus(ctx, epsilon=0.01)
        assert a.enclosing_circle is not None and b.enclosing_circle is not None
        alpha = max(a.stats.get("alpha", 0.0), b.stats.get("alpha", 0.0))
        if alpha == 0.0:
            alpha = 1e-9  # both hit the single-object shortcut
        assert abs(a.enclosing_circle.diameter - b.enclosing_circle.diameter) <= (
            alpha + 1e-9
        )


class TestState:
    def test_max_invalid_range_is_sound(self):
        """Every recorded invalid diameter must truly fail circleScan."""
        ds = make_random_dataset(4, n=25)
        query = feasible_query(ds, 4, 3)
        ctx = compile_query(ds, query)
        state = skeca_plus_state(ctx, epsilon=0.05)
        for pole, bad_diam in enumerate(state.max_invalid_range):
            if bad_diam > 0.0:
                assert circle_scan(ctx, pole, bad_diam) is None, (
                    f"pole {pole}: diameter {bad_diam} recorded invalid but scans OK"
                )

    def test_state_contains_gkg_group(self):
        ds = make_random_dataset(5, n=25)
        ctx = compile_query(ds, feasible_query(ds, 5, 3))
        state = skeca_plus_state(ctx, epsilon=0.01)
        assert state.gkg_group.algorithm == "GKG"
        assert state.alpha > 0.0

    def test_binary_steps_bounded_by_log(self):
        import math

        ds = make_random_dataset(6, n=40)
        ctx = compile_query(ds, feasible_query(ds, 6, 4))
        eps = 0.01
        state = skeca_plus_state(ctx, epsilon=eps)
        # The range is at most (2/sqrt(3) - 1/2) * d_gkg and alpha is
        # eps*d_gkg/2, so steps <= log2(range/alpha) + warm-up steps.
        bound = math.log2((2 / 3**0.5 - 0.5) / (eps / 2)) + 1
        # Warm-up binary search adds at most the same number again.
        assert state.binary_steps <= 2 * bound + 2


class TestSingleObject:
    def test_single_covering_object(self):
        ds = Dataset.from_records(
            [(3, 3, ["x", "y", "z"]), (9, 9, ["x"]), (0, 0, ["y"])]
        )
        ctx = compile_query(ds, ["x", "y", "z"])
        state = skeca_plus_state(ctx)
        assert state.group.object_ids == (0,)  # record 0 covers all keywords
        assert state.group.diameter == 0.0


class TestCircleEnclosesGroup:
    @pytest.mark.parametrize("seed", range(5))
    def test_enclosing_circle_valid(self, seed):
        ds = make_random_dataset(seed + 40, n=30)
        query = feasible_query(ds, seed, 3)
        ctx = compile_query(ds, query)
        group = skeca_plus(ctx)
        circle = group.enclosing_circle
        assert circle is not None
        for oid in group.object_ids:
            assert circle.contains(ds.location_of(oid), eps=1e-6)


class TestWarmupEqualDiameter:
    """Regression: a warm probe succeeding exactly at the initial upper
    bound must still be recorded (its pole seeds the binary loop's
    try-last-success-first fast path)."""

    def test_two_object_instance(self):
        # With exactly one object per keyword the warm probe cannot beat
        # the GKG circle: warm.diameter == search_ub, the previously
        # discarded case.
        ds = Dataset.from_records([(0.0, 0.0, ["a"]), (3.0, 4.0, ["b"])])
        ctx = compile_query(ds, ["a", "b"])
        group = skeca_plus(ctx, epsilon=0.01)
        assert group.covers(ds, ["a", "b"])
        assert group.diameter == pytest.approx(5.0)

    def test_matches_skeca_on_tight_instances(self):
        from repro.core.skeca import skeca

        records = [
            (0.0, 0.0, ["a"]),
            (1.0, 0.0, ["b"]),
            (0.5, 0.9, ["c"]),
            (40.0, 40.0, ["a", "b"]),
            (41.0, 40.0, ["c"]),
        ]
        ds = Dataset.from_records(records)
        ctx = compile_query(ds, ["a", "b", "c"])
        plus = skeca_plus(ctx, epsilon=0.01)
        base = skeca(ctx, 0.01)
        assert plus.covers(ds, ["a", "b", "c"])
        assert plus.diameter == pytest.approx(base.diameter, rel=0.05)
