"""Tests for the MCKEngine facade."""

import pytest

from repro.core.engine import ALGORITHMS, MCKEngine, canonical_algorithm
from repro.core.objects import Dataset
from repro.exceptions import AlgorithmTimeout, InfeasibleQueryError, QueryError
from tests.conftest import feasible_query, make_random_dataset


@pytest.fixture
def engine():
    return MCKEngine(make_random_dataset(1, n=40))


class TestQueryDispatch:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_algorithms_run(self, engine, algorithm):
        query = feasible_query(engine.dataset, 1, 3)
        group = engine.query(query, algorithm=algorithm)
        assert group.covers(engine.dataset, query)
        assert group.elapsed_seconds >= 0.0

    def test_algorithm_name_normalization(self, engine):
        query = feasible_query(engine.dataset, 1, 2)
        for alias in ("skeca+", "SKECA+", "skecaplus", "SKECa_PLUS".replace("_PLUS", "plus")):
            group = engine.query(query, algorithm=alias)
            assert group is not None

    def test_unknown_algorithm(self, engine):
        with pytest.raises(QueryError):
            engine.query(["a"], algorithm="quantum")

    def test_infeasible_query(self, engine):
        with pytest.raises(InfeasibleQueryError):
            engine.query(["definitely-not-a-keyword"])

    def test_timeout_propagates(self, engine):
        query = feasible_query(engine.dataset, 1, 4)
        with pytest.raises(AlgorithmTimeout):
            engine.query(query, algorithm="EXACT", timeout=-1.0)


class TestDispatchAliases:
    """Every reasonable spelling must resolve to the canonical name."""

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("GKG", "GKG"),
            ("gkg", "GKG"),
            (" GKG ", "GKG"),
            ("SKEC", "SKEC"),
            ("skec", "SKEC"),
            ("SKECa", "SKECa"),
            ("skeca", "SKECa"),
            ("SKECa+", "SKECa+"),
            ("skeca+", "SKECa+"),
            ("skecaplus", "SKECa+"),
            ("skeca_plus", "SKECa+"),
            ("SKECA-PLUS", "SKECa+"),
            (" SKECa+ ", "SKECa+"),
            ("EXACT", "EXACT"),
            ("exact", "EXACT"),
            ("exact ", "EXACT"),
            ("\tExAcT\n", "EXACT"),
        ],
    )
    def test_canonical_algorithm(self, alias, canonical):
        assert canonical_algorithm(alias) == canonical

    @pytest.mark.parametrize(
        "alias", ["exact ", " gkg", "Skeca_Plus", "skeca-plus", "SKECA+"]
    )
    def test_whitespace_and_case_variants_dispatch(self, engine, alias):
        query = feasible_query(engine.dataset, 7, 2)
        group = engine.query(query, algorithm=alias)
        assert group.covers(engine.dataset, query)

    def test_aliases_share_cache_key_semantics(self, engine):
        query = feasible_query(engine.dataset, 8, 2)
        a = engine.query(query, algorithm="skeca_plus")
        b = engine.query(query, algorithm="SKECa+")
        assert a.diameter == pytest.approx(b.diameter)

    @pytest.mark.parametrize("bad", ["quantum", "", "SKECa++", "EXACTLY"])
    def test_unknown_algorithm_message_lists_algorithms(self, engine, bad):
        with pytest.raises(QueryError) as excinfo:
            engine.query(["a"], algorithm=bad)
        message = str(excinfo.value)
        assert repr(bad) in message
        for name in ALGORITHMS:
            assert name in message

    def test_canonical_algorithm_error_is_query_error(self):
        with pytest.raises(QueryError):
            canonical_algorithm("nope")


class TestContextCache:
    def test_contexts_cached(self, engine):
        query = feasible_query(engine.dataset, 2, 3)
        c1 = engine.context(query)
        c2 = engine.context(query)
        assert c1 is c2

    def test_cache_eviction(self):
        engine = MCKEngine(make_random_dataset(3, n=30), context_cache_size=2)
        terms = engine.dataset.vocabulary.terms_by_frequency()
        q1, q2, q3 = [terms[0], terms[1]], [terms[1], terms[2]], [terms[2], terms[3]]
        c1 = engine.context(q1)
        engine.context(q2)
        engine.context(q3)  # evicts q1
        assert engine.context(q1) is not c1

    def test_zero_cache(self):
        engine = MCKEngine(make_random_dataset(4, n=20), context_cache_size=0)
        query = feasible_query(engine.dataset, 4, 2)
        assert engine.context(query) is not engine.context(query)


class TestSemantics:
    def test_exact_never_worse_than_approx(self, engine):
        query = feasible_query(engine.dataset, 5, 4)
        exact = engine.query(query, algorithm="EXACT")
        for algo in ("GKG", "SKECa", "SKECa+"):
            approx = engine.query(query, algorithm=algo)
            assert exact.diameter <= approx.diameter + 1e-9

    def test_docstring_example(self):
        dataset = Dataset.from_records([(0, 0, ["hotel"]), (1, 1, ["shop"])])
        engine = MCKEngine(dataset)
        group = engine.query(["hotel", "shop"], algorithm="EXACT")
        assert sorted(group.object_ids) == [0, 1]
