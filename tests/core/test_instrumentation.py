"""Instrumentation counter transport and span-resolution tests."""

import pytest

from repro.core.common import Deadline, Instrumentation, instrumentation_span
from repro.observability.tracer import NULL_SPAN, Tracer, set_tracer


class TestCounterTransport:
    def test_snapshot_and_deltas(self):
        instr = Instrumentation()
        instr.count("circle_scans", 5)
        before = instr.snapshot()
        instr.count("circle_scans", 3)
        instr.count("binary_steps", 2)
        assert instr.deltas_since(before) == {
            "circle_scans": 3.0,
            "binary_steps": 2.0,
        }
        # The snapshot itself is a copy, immune to later mutation.
        assert before == {"circle_scans": 5.0}

    def test_deltas_skip_unchanged_counters(self):
        instr = Instrumentation()
        instr.count("poles_scanned", 7)
        before = instr.snapshot()
        assert instr.deltas_since(before) == {}

    def test_merge_counters_sums(self):
        parent = Instrumentation()
        parent.count("circle_scans", 1)
        parent.merge_counters({"circle_scans": 4.0, "candidate_circles": 2.0})
        assert parent.counters == {
            "circle_scans": 5.0,
            "candidate_circles": 2.0,
        }

    def test_record_max(self):
        instr = Instrumentation()
        instr.record_max("search_depth_max", 3)
        instr.record_max("search_depth_max", 7)
        instr.record_max("search_depth_max", 5)
        assert instr.counters["search_depth_max"] == 7.0

    def test_merge_group_stats_keeps_larger_and_skips_parameters(self):
        instr = Instrumentation()
        instr.count("candidate_circles", 10)
        instr.merge_group_stats({"candidate_circles": 4.0, "alpha": 0.5})
        assert instr.counters["candidate_circles"] == 10.0
        assert "alpha" not in instr.counters


class TestSpanResolution:
    def test_attached_tracer_wins(self):
        tracer = Tracer()
        instr = Instrumentation(tracer=tracer)
        with instr.span("phase", key=1):
            pass
        assert [s["name"] for s in tracer.finished_spans()] == ["phase"]

    def test_falls_back_to_global_tracer(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            instr = Instrumentation()
            with instr.span("global.phase"):
                pass
        finally:
            set_tracer(previous)
        assert [s["name"] for s in tracer.finished_spans()] == ["global.phase"]

    def test_no_tracer_returns_null_span(self):
        instr = Instrumentation()
        assert instr.span("anything") is NULL_SPAN

    def test_deadline_span_routes_through_instrumentation(self):
        tracer = Tracer()
        instr = Instrumentation(tracer=tracer)
        deadline = Deadline("GKG", None, instr)
        with deadline.span("gkg.run"):
            pass
        assert len(tracer) == 1

    def test_deadline_without_instrumentation_is_null(self):
        deadline = Deadline.unlimited("GKG")
        assert deadline.span("x") is NULL_SPAN

    def test_instrumentation_span_helper(self):
        tracer = Tracer()
        instr = Instrumentation(tracer=tracer)
        with instrumentation_span(instr, "engine.query"):
            pass
        assert len(tracer) == 1
        assert instrumentation_span(None, "engine.query") is NULL_SPAN


class TestAlgorithmsEmitSpans:
    """End-to-end: running each algorithm with a tracer yields its spans."""

    @pytest.fixture()
    def engine(self):
        from tests.conftest import make_random_dataset

        from repro import MCKEngine

        return MCKEngine(make_random_dataset(31, n=40))

    @pytest.fixture()
    def query(self, engine):
        from tests.conftest import feasible_query

        return feasible_query(engine.dataset, 2, 3)

    @pytest.mark.parametrize(
        "algorithm, expected",
        [
            ("GKG", {"gkg.anchor_round"}),
            ("SKECa", {"skeca.pole", "circlescan"}),
            ("SKECa+", {"skecaplus.binary_step", "circlescan"}),
            ("EXACT", {"exact.skeca_plus_bound", "exact.candidate_enumeration"}),
        ],
    )
    def test_algorithm_spans(self, engine, query, algorithm, expected):
        tracer = Tracer()
        instr = Instrumentation(tracer=tracer)
        engine.query(query, algorithm=algorithm, instrumentation=instr)
        names = {s["name"] for s in tracer.finished_spans()}
        assert expected <= names, f"missing {expected - names} in {sorted(names)}"
        assert {"engine.query", "engine.algorithm"} <= names
