"""Anytime incumbent channel: Deadline offers, quality tags, engine modes."""

import pytest

from repro import Dataset, MCKEngine
from repro.core.common import (
    QUALITY_APPROX,
    QUALITY_EXACT,
    QUALITY_GREEDY,
    QUALITY_PARTIAL,
    QUALITY_RANK,
    Deadline,
    quality_ratio_bound,
)
from repro.core.query import compile_query
from repro.exceptions import AlgorithmTimeout
from repro.testing import faults

QUERY = ["shrine", "shop", "restaurant", "hotel"]


@pytest.fixture
def kyoto_ctx(kyoto_dataset):
    return compile_query(kyoto_dataset, QUERY)


class TestDeadlineIncumbent:
    def test_no_offer_no_incumbent(self):
        deadline = Deadline("EXACT", 10.0)
        group, quality = deadline.incumbent()
        assert group is None and quality == ""
        err = deadline.timeout()
        assert err.incumbent is None and err.quality == ""

    def test_offer_materializes_group(self, kyoto_dataset, kyoto_ctx):
        deadline = Deadline("EXACT", 10.0)
        rows = list(range(len(kyoto_ctx.relevant_ids)))[:4]
        deadline.offer(kyoto_ctx, rows, kyoto_ctx.group_diameter_rows(rows))
        group, quality = deadline.incumbent()
        assert group is not None
        assert group.covers(kyoto_dataset, QUERY) or len(group) == 4
        assert quality == QUALITY_PARTIAL  # no bound certified yet

    def test_smaller_offer_wins(self, kyoto_ctx):
        deadline = Deadline("EXACT", 10.0)
        deadline.offer(kyoto_ctx, [0, 1, 2, 3], 5.0)
        deadline.offer(kyoto_ctx, [0, 1], 2.0)
        assert deadline._offer_rows == [0, 1]
        deadline.offer(kyoto_ctx, [2, 3], 4.0)  # worse: ignored
        assert deadline._offer_rows == [0, 1]

    def test_equal_offer_needs_stronger_certificate(self, kyoto_ctx):
        deadline = Deadline("EXACT", 10.0)
        deadline.offer(kyoto_ctx, [0, 1], 2.0, quality=QUALITY_PARTIAL)
        deadline.offer(kyoto_ctx, [2, 3], 2.0, quality=QUALITY_GREEDY)
        assert deadline._offer_quality == QUALITY_GREEDY
        deadline.offer(kyoto_ctx, [0, 1], 2.0, quality=QUALITY_PARTIAL)
        assert deadline._offer_rows == [2, 3]

    def test_note_bound_upgrades_quality(self, kyoto_ctx):
        deadline = Deadline("EXACT", 10.0)
        deadline.note_bound(QUALITY_GREEDY, 10.0)
        deadline.offer(kyoto_ctx, [0, 1, 2, 3], 5.0)
        assert deadline._offer_quality == QUALITY_GREEDY
        deadline.note_bound(QUALITY_APPROX, 6.0)
        _group, quality = deadline.incumbent()
        # The recomputed actual diameter clears the approx certificate.
        assert quality == QUALITY_APPROX

    def test_timeout_carries_incumbent(self, kyoto_ctx):
        deadline = Deadline("SKECa+", 1.5)
        deadline.offer(kyoto_ctx, [0, 1, 2, 3], 5.0)
        err = deadline.timeout()
        assert isinstance(err, AlgorithmTimeout)
        assert err.incumbent is not None
        assert err.quality == err.incumbent.quality
        assert "exceeded time budget" in str(err)


class TestQualityHelpers:
    def test_rank_ladder(self):
        assert (
            QUALITY_RANK[QUALITY_EXACT]
            > QUALITY_RANK[QUALITY_APPROX]
            > QUALITY_RANK[QUALITY_GREEDY]
            > QUALITY_RANK[QUALITY_PARTIAL]
        )

    def test_ratio_bounds(self):
        assert quality_ratio_bound(QUALITY_EXACT) == pytest.approx(1.0)
        assert quality_ratio_bound(QUALITY_APPROX, 0.01) == pytest.approx(
            2.0 / (3.0**0.5) + 0.01
        )
        assert quality_ratio_bound(QUALITY_GREEDY) == pytest.approx(2.0)
        assert quality_ratio_bound(QUALITY_PARTIAL) == float("inf")


class TestCompletedRunsAreTagged:
    @pytest.mark.parametrize(
        "algorithm,expected",
        [
            ("GKG", QUALITY_GREEDY),
            ("SKEC", QUALITY_APPROX),
            ("SKECa", QUALITY_APPROX),
            ("SKECa+", QUALITY_APPROX),
            ("EXACT", QUALITY_EXACT),
        ],
    )
    def test_quality_tag(self, kyoto_engine, algorithm, expected):
        group = kyoto_engine.query(QUERY, algorithm=algorithm)
        assert group.quality == expected
        assert not group.degraded


class TestEngineDegradedMode:
    @pytest.mark.parametrize("algorithm", ["SKEC", "SKECa", "SKECa+", "EXACT"])
    def test_degrade_returns_feasible_incumbent(
        self, kyoto_engine, kyoto_dataset, algorithm
    ):
        with faults.injected(
            "core.deadline.clock", skew=1e9, after=2, times=None
        ):
            group = kyoto_engine.query(
                QUERY, algorithm=algorithm, timeout=60.0, degrade_on_timeout=True
            )
        assert group.degraded
        assert group.stats["degraded"] == 1.0
        assert group.covers(kyoto_dataset, QUERY)
        assert group.quality in (QUALITY_APPROX, QUALITY_GREEDY, QUALITY_PARTIAL)

    def test_strict_mode_raises_with_incumbent(self, kyoto_engine):
        with faults.injected(
            "core.deadline.clock", skew=1e9, after=2, times=None
        ):
            with pytest.raises(AlgorithmTimeout) as info:
                kyoto_engine.query(QUERY, algorithm="EXACT", timeout=60.0)
        assert info.value.incumbent is not None
        assert info.value.incumbent.covers(
            kyoto_engine.dataset, QUERY
        )

    def test_no_incumbent_raises_even_degraded(self, kyoto_engine):
        # Expire at the very first check: nothing offered yet.
        with faults.injected("core.deadline.clock", skew=1e9, times=None):
            with pytest.raises(AlgorithmTimeout) as info:
                kyoto_engine.query(
                    QUERY, algorithm="EXACT", timeout=60.0, degrade_on_timeout=True
                )
        assert info.value.incumbent is None

    def test_degraded_not_worse_than_greedy_when_certified(
        self, kyoto_engine, kyoto_dataset
    ):
        brute = kyoto_engine.query(QUERY, algorithm="EXACT").diameter
        with faults.injected(
            "core.deadline.clock", skew=1e9, after=3, times=None
        ):
            group = kyoto_engine.query(
                QUERY, algorithm="EXACT", timeout=60.0, degrade_on_timeout=True
            )
        bound = quality_ratio_bound(group.quality, kyoto_engine_epsilon())
        assert group.diameter <= bound * brute + 1e-9


def kyoto_engine_epsilon() -> float:
    from repro.core.skeca import DEFAULT_EPSILON

    return DEFAULT_EPSILON


class TestSlowScanDegrades:
    def test_slow_circlescan_pushes_over_real_deadline(
        self, kyoto_engine, kyoto_dataset
    ):
        # A genuinely slow scan against a tiny real budget: the query
        # degrades instead of hanging or failing.
        with faults.injected("core.circlescan", delay=0.05, times=None):
            group = kyoto_engine.query(
                QUERY, algorithm="EXACT", timeout=0.02, degrade_on_timeout=True
            )
        assert group.degraded
        assert group.covers(kyoto_dataset, QUERY)
