"""Tests for GeoObject and Dataset."""

import numpy as np
import pytest

from repro.core.objects import Dataset, GeoObject
from repro.exceptions import DatasetError


class TestGeoObject:
    def test_location(self):
        o = GeoObject(0, 1.5, 2.5, frozenset({"a"}))
        assert o.location == (1.5, 2.5)

    def test_covers(self):
        o = GeoObject(0, 0, 0, frozenset({"a", "b"}))
        assert o.covers(["a"])
        assert o.covers(["a", "b"])
        assert not o.covers(["a", "c"])

    def test_frozen(self):
        o = GeoObject(0, 0, 0, frozenset({"a"}))
        with pytest.raises(AttributeError):
            o.x = 5  # type: ignore[misc]


class TestDatasetConstruction:
    def test_from_records(self):
        ds = Dataset.from_records([(0, 0, ["a"]), (1, 1, ["b", "c"])])
        assert len(ds) == 2
        assert ds[1].keywords == frozenset({"b", "c"})

    def test_ids_dense(self):
        ds = Dataset.from_records([(i, i, ["x"]) for i in range(5)])
        assert [o.oid for o in ds] == list(range(5))

    def test_requires_keywords(self):
        ds = Dataset()
        with pytest.raises(DatasetError):
            ds.add(0, 0, [])

    def test_add_after_finalize_rejected(self):
        ds = Dataset.from_records([(0, 0, ["a"])])
        with pytest.raises(DatasetError):
            ds.add(1, 1, ["b"])

    def test_finalize_idempotent(self):
        ds = Dataset.from_records([(0, 0, ["a"])])
        ds.finalize()
        assert len(ds) == 1

    def test_coords_requires_finalize(self):
        ds = Dataset()
        ds.add(0, 0, ["a"])
        with pytest.raises(DatasetError):
            _ = ds.coords


class TestDatasetAccessors:
    @pytest.fixture
    def ds(self):
        return Dataset.from_records(
            [(0, 0, ["a", "b"]), (3, 4, ["b"]), (6, 8, ["c"])]
        )

    def test_coords_array(self, ds):
        assert ds.coords.shape == (3, 2)
        assert tuple(ds.coords[1]) == (3.0, 4.0)

    def test_location_of(self, ds):
        assert ds.location_of(2) == (6.0, 8.0)

    def test_term_ids_sorted(self, ds):
        tids = ds.term_ids_of(0)
        assert list(tids) == sorted(tids)
        assert len(tids) == 2

    def test_locations_view(self, ds):
        view = ds.locations
        assert view[1] == (3.0, 4.0)
        assert len(view) == 3

    def test_inverted_index_populated(self, ds):
        b_id = ds.vocabulary.id_of("b")
        assert ds.inverted.posting(b_id) == [0, 1]

    def test_vocabulary_frequencies(self, ds):
        assert ds.vocabulary.frequency("b") == 2
        assert ds.vocabulary.frequency("c") == 1


class TestDatasetStatsAndIndex:
    def test_word_counts(self):
        ds = Dataset.from_records([(0, 0, ["a", "b"]), (1, 1, ["b"])])
        assert ds.unique_word_count() == 2
        assert ds.total_word_count() == 3

    def test_extent_diameter(self):
        ds = Dataset.from_records([(0, 0, ["a"]), (3, 4, ["b"])])
        assert ds.extent_diameter() == pytest.approx(5.0)

    def test_brtree_cached(self):
        ds = Dataset.from_records([(i, i % 3, ["t"]) for i in range(20)])
        t1 = ds.brtree()
        t2 = ds.brtree()
        assert t1 is t2
        assert len(t1) == 20

    def test_brtree_mask_reflects_keywords(self):
        ds = Dataset.from_records([(0, 0, ["x"]), (5, 5, ["y"])])
        tree = ds.brtree()
        x_bit = 1 << ds.vocabulary.id_of("x")
        entry = tree.nearest_with_mask(0, 0, x_bit)
        assert entry is not None and entry.item == 0

    def test_duplicate_keywords_dedup(self):
        ds = Dataset.from_records([(0, 0, ["a", "a", "a"])])
        assert ds[0].keywords == frozenset({"a"})
        assert ds.total_word_count() == 1
