"""Columnar-vs-object-path parity: bit-identical groups on a pinned seed.

The PR's acceptance bar: every algorithm must return the *same* answer —
object ids including order, exact diameter, and the search counters — with
the vectorized kernels on and off.  The columnar kernels are constructed
as bit-identical rewrites (stable sorts over the same keys, elementwise
ufuncs over the same operands, prefix selections of the same stable
order), so any drift here is a kernel bug, not tolerance noise.
"""

import random

import pytest

import repro.geometry.mcc as mcc
from repro.core.engine import MCKEngine
from repro.core.exact import exact
from repro.core.gkg import gkg
from repro.core.objects import Dataset
from repro.core.query import compile_query
from repro.core.skec import skec
from repro.core.skeca import skeca
from repro.core.skecaplus import skeca_plus
from repro.kernels import scalar_kernels, set_vectorized, vectorized_enabled

SEED = 0xC01
N_OBJECTS = 2500
N_TERMS = 12
M = 5
N_QUERIES = 3

ALGORITHMS = {
    "GKG": gkg,
    "SKEC": skec,
    "SKECa": skeca,
    "SKECa+": skeca_plus,
    "EXACT": exact,
}


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(SEED)
    vocab = [f"kw{i}" for i in range(N_TERMS)]
    records = []
    for _ in range(N_OBJECTS):
        x = rng.uniform(0.0, 1000.0)
        y = rng.uniform(0.0, 1000.0)
        keywords = rng.sample(vocab, rng.randint(1, 3))
        records.append((x, y, keywords))
    dataset = Dataset.from_records(records, name="parity")
    queries = [tuple(rng.sample(vocab, M)) for _ in range(N_QUERIES)]
    return dataset, queries


def _run_all(dataset, queries, vectorized):
    """One full sweep in the given kernel mode; returns comparable tuples."""
    set_vectorized(vectorized)
    # Welzl's MCC keeps a module-level shuffler; pin it so both modes see
    # the same shuffle sequence (it is workload state, not kernel state).
    mcc._SHUFFLER = random.Random(0x5EED)
    out = {}
    for name, fn in ALGORITHMS.items():
        runs = []
        for q in queries:
            ctx = compile_query(dataset, q)
            group = fn(ctx)
            runs.append(
                (
                    tuple(group.object_ids),
                    group.diameter,
                    tuple(sorted(group.stats.items())),
                )
            )
        out[name] = runs
    return out


class TestColumnarParity:
    def test_all_algorithms_bit_identical(self, workload):
        dataset, queries = workload
        original = vectorized_enabled()
        try:
            vec = _run_all(dataset, queries, vectorized=True)
            obj = _run_all(dataset, queries, vectorized=False)
        finally:
            set_vectorized(original)
        for name in ALGORITHMS:
            for qi, (v, o) in enumerate(zip(vec[name], obj[name])):
                assert v[0] == o[0], f"{name} q{qi}: object ids diverge"
                assert v[1] == o[1], f"{name} q{qi}: diameter diverges"
                assert v[2] == o[2], f"{name} q{qi}: stats counters diverge"

    def test_scalar_kernels_context_manager_restores(self):
        before = vectorized_enabled()
        with scalar_kernels():
            assert not vectorized_enabled()
        assert vectorized_enabled() == before

    def test_engine_answers_match_across_modes(self, workload):
        """End-to-end through MCKEngine (compile + dispatch included)."""
        dataset, queries = workload
        engine = MCKEngine(dataset)
        original = vectorized_enabled()
        try:
            set_vectorized(True)
            mcc._SHUFFLER = random.Random(0x5EED)
            vec = [
                engine.query(list(q), algorithm="SKECa+").object_ids
                for q in queries
            ]
            set_vectorized(False)
            mcc._SHUFFLER = random.Random(0x5EED)
            obj = [
                engine.query(list(q), algorithm="SKECa+").object_ids
                for q in queries
            ]
        finally:
            set_vectorized(original)
        assert vec == obj
