"""Tests for Procedure circleScan (rotating-circle coverage oracle)."""

import math

import pytest

from repro.core.circlescan import circle_scan, circle_scan_candidates, sweeping_area
from repro.core.objects import Dataset
from repro.core.query import compile_query


def _ring_dataset():
    """Pole at origin; keyword holders placed at known angles/distances."""
    records = [
        (0.0, 0.0, ["p"]),            # 0 the pole keyword
        (1.0, 0.0, ["a"]),            # 1 east, d=1
        (0.0, 1.0, ["b"]),            # 2 north, d=1
        (-1.0, 0.0, ["a"]),           # 3 west, d=1
        (0.0, -1.0, ["b"]),           # 4 south, d=1
        (10.0, 10.0, ["a", "b"]),     # 5 far away
    ]
    return Dataset.from_records(records)


class TestSweepingArea:
    def test_contains_only_near_objects(self):
        ds = _ring_dataset()
        ctx = compile_query(ds, ["p", "a", "b"])
        pole = ctx.row_of(0)
        rows = set(int(r) for r in sweeping_area(ctx, pole, 1.5))
        oids = {ctx.relevant_ids[r] for r in rows}
        assert oids == {0, 1, 2, 3, 4}

    def test_closed_boundary(self):
        ds = _ring_dataset()
        ctx = compile_query(ds, ["p", "a"])
        pole = ctx.row_of(0)
        rows = sweeping_area(ctx, pole, 1.0)
        oids = {ctx.relevant_ids[int(r)] for r in rows}
        assert 1 in oids and 3 in oids


class TestCircleScan:
    def test_finds_adjacent_pair(self):
        # Objects 1 (east) and 2 (north) are both within a circle of
        # diameter sqrt(2) <= D through the pole; 'a' and 'b' get covered.
        ds = _ring_dataset()
        ctx = compile_query(ds, ["p", "a", "b"])
        pole = ctx.row_of(0)
        result = circle_scan(ctx, pole, 1.5)
        assert result is not None
        rows, theta = result
        assert ctx.covers(rows)

    def test_fails_when_diameter_too_small(self):
        # With D < 1 no keyword holder is even in the sweeping area.
        ds = _ring_dataset()
        ctx = compile_query(ds, ["p", "a", "b"])
        pole = ctx.row_of(0)
        assert circle_scan(ctx, pole, 0.5) is None

    def test_diameter_one_cannot_pair_orthogonal(self):
        # Pole = the east 'a' holder.  The nearest 'b' holders are sqrt(2)
        # away, outside a diameter-1 sweeping area, so the scan fails.
        ds = _ring_dataset()
        ctx = compile_query(ds, ["a", "b"])
        pole = ctx.row_of(1)
        assert circle_scan(ctx, pole, 1.0) is None

    def test_monotone_in_diameter(self):
        # Property 1: success at D implies success at any D' >= D.
        ds = _ring_dataset()
        ctx = compile_query(ds, ["p", "a", "b"])
        pole = ctx.row_of(0)
        smallest = None
        for d in [0.4, 0.8, 1.2, 1.6, 2.0, 3.0]:
            hit = circle_scan(ctx, pole, d)
            if smallest is None and hit is not None:
                smallest = d
            if smallest is not None:
                assert hit is not None, f"non-monotone at D={d}"

    def test_returned_circle_actually_encloses(self):
        ds = _ring_dataset()
        ctx = compile_query(ds, ["p", "a", "b"])
        pole = ctx.row_of(0)
        diameter = 1.6
        result = circle_scan(ctx, pole, diameter)
        assert result is not None
        rows, theta = result
        r = diameter / 2.0
        px, py = ctx.location_of_row(pole)
        cx, cy = px + r * math.cos(theta), py + r * math.sin(theta)
        for row in rows:
            x, y = ctx.location_of_row(row)
            assert math.hypot(x - cx, y - cy) <= r + 1e-6

    def test_pole_always_inside(self):
        ds = _ring_dataset()
        ctx = compile_query(ds, ["p", "a", "b"])
        pole = ctx.row_of(0)
        result = circle_scan(ctx, pole, 2.0)
        assert result is not None
        assert pole in result[0]


class TestCircleScanCandidates:
    def test_candidates_cover_query(self):
        ds = _ring_dataset()
        ctx = compile_query(ds, ["p", "a", "b"])
        pole = ctx.row_of(0)
        candidates = circle_scan_candidates(ctx, pole, 2.0)
        assert candidates
        for cand in candidates:
            assert ctx.covers(cand)

    def test_candidates_are_maximal(self):
        ds = _ring_dataset()
        ctx = compile_query(ds, ["p", "a", "b"])
        pole = ctx.row_of(0)
        candidates = [frozenset(c) for c in circle_scan_candidates(ctx, pole, 2.0)]
        for i, a in enumerate(candidates):
            for j, b in enumerate(candidates):
                if i != j:
                    assert not a < b, "non-maximal candidate survived"

    def test_no_candidates_when_scan_fails(self):
        ds = _ring_dataset()
        ctx = compile_query(ds, ["p", "a", "b"])
        pole = ctx.row_of(0)
        assert circle_scan_candidates(ctx, pole, 0.5) == []

    def test_contains_optimal_enclosed_set(self):
        # The pair {pole, east, north} is enclosed by some candidate when
        # the diameter is generous.
        ds = _ring_dataset()
        ctx = compile_query(ds, ["p", "a", "b"])
        pole = ctx.row_of(0)
        want = {pole, ctx.row_of(1), ctx.row_of(2)}
        candidates = [set(c) for c in circle_scan_candidates(ctx, pole, 2.5)]
        assert any(want <= c for c in candidates)


class TestDegenerateCases:
    def test_all_objects_at_pole(self):
        ds = Dataset.from_records(
            [(5, 5, ["a"]), (5, 5, ["b"]), (5, 5, ["c"])]
        )
        ctx = compile_query(ds, ["a", "b", "c"])
        result = circle_scan(ctx, 0, 0.001)
        assert result is not None
        rows, _theta = result
        assert ctx.covers(rows)

    def test_collinear_objects(self):
        ds = Dataset.from_records(
            [(0, 0, ["a"]), (1, 0, ["b"]), (2, 0, ["c"])]
        )
        ctx = compile_query(ds, ["a", "b", "c"])
        assert circle_scan(ctx, 0, 2.0) is not None
        assert circle_scan(ctx, 0, 1.0) is None
