"""Tests for the §6.2.3 common-success runtime comparison rule."""

import math

import pytest

from repro.experiments.figures import _common_success_runtimes
from repro.experiments.metrics import QueryMeasurement


def _m(algo, query, elapsed, success=True):
    return QueryMeasurement(
        algorithm=algo,
        query_keywords=query,
        elapsed_seconds=elapsed,
        diameter=1.0 if success else math.inf,
        success=success,
    )


class TestCommonSuccessRuntimes:
    def test_only_common_successes_counted(self):
        ms = [
            _m("A", ("q1",), 1.0),
            _m("B", ("q1",), 2.0),
            _m("A", ("q2",), 10.0),
            _m("B", ("q2",), 20.0, success=False),  # B failed on q2
        ]
        out = _common_success_runtimes(ms, ("A", "B"))
        assert out["A"] == pytest.approx(1.0)  # q2 excluded for both
        assert out["B"] == pytest.approx(2.0)

    def test_empty_when_no_common_query(self):
        ms = [
            _m("A", ("q1",), 1.0),
            _m("B", ("q2",), 2.0),
        ]
        assert _common_success_runtimes(ms, ("A", "B")) == {}

    def test_empty_when_all_fail(self):
        ms = [
            _m("A", ("q1",), 1.0, success=False),
            _m("B", ("q1",), 2.0, success=False),
        ]
        assert _common_success_runtimes(ms, ("A", "B")) == {}

    def test_means_over_multiple_queries(self):
        ms = [
            _m("A", ("q1",), 1.0),
            _m("B", ("q1",), 4.0),
            _m("A", ("q2",), 3.0),
            _m("B", ("q2",), 6.0),
        ]
        out = _common_success_runtimes(ms, ("A", "B"))
        assert out["A"] == pytest.approx(2.0)
        assert out["B"] == pytest.approx(5.0)

    def test_other_algorithms_ignored(self):
        ms = [
            _m("A", ("q1",), 1.0),
            _m("B", ("q1",), 2.0),
            _m("C", ("q1",), 99.0),
        ]
        out = _common_success_runtimes(ms, ("A", "B"))
        assert set(out) == {"A", "B"}
