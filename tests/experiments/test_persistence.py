"""Tests for figure persistence (JSON round-trips)."""

import math

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.persistence import (
    figure_from_dict,
    figure_to_dict,
    load_figures,
    save_figures,
)
from repro.experiments.report import FigureResult


def _figure():
    fig = FigureResult("F1", "A Title", "m", [2, 4, 6])
    fig.add_series("GKG", [0.1, 0.2, math.nan])
    fig.add_series("EXACT", [1.0, 2.0, 3.0])
    fig.notes.append("a note")
    return fig


class TestRoundTrip:
    def test_dict_round_trip(self):
        original = _figure()
        restored = figure_from_dict(figure_to_dict(original))
        assert restored.figure_id == original.figure_id
        assert restored.x_values == original.x_values
        assert restored.series["EXACT"] == original.series["EXACT"]
        assert math.isnan(restored.series["GKG"][2])
        assert restored.notes == original.notes

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "figs.json"
        save_figures([_figure(), _figure()], path)
        restored = load_figures(path)
        assert len(restored) == 2
        assert restored[0].render() == _figure().render()

    def test_nan_becomes_null_in_json(self, tmp_path):
        path = tmp_path / "figs.json"
        save_figures([_figure()], path)
        assert "null" in path.read_text()
        assert "NaN" not in path.read_text()


class TestValidation:
    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentError):
            load_figures(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text('{"format": "something-else", "figures": []}')
        with pytest.raises(ExperimentError):
            load_figures(path)

    def test_malformed_payload(self):
        with pytest.raises(ExperimentError):
            figure_from_dict({"figure_id": "x"})

    def test_series_length_mismatch_rejected(self):
        payload = figure_to_dict(_figure())
        payload["series"]["GKG"] = [1.0]
        with pytest.raises(ExperimentError):
            figure_from_dict(payload)
