"""Smoke tests for every figure entry point (tiny sizes, shape checks)."""

import math

import pytest

from repro.experiments import figures

# Tiny settings so the whole module stays fast; the real reproductions run
# from benchmarks/ with larger parameters.
TINY = dict(scale=0.02, queries_per_set=2)


class TestTable1:
    def test_rows_and_render(self):
        text, stats = figures.table1_datasets(scale=0.02)
        assert "Table 1" in text
        assert [s.name for s in stats] == ["NY-like", "LA-like", "TW-like"]
        for s in stats:
            assert s.n_objects > 0
            assert s.total_words >= s.n_objects


class TestFig7:
    def test_structure(self):
        runtime, ratio = figures.fig7_vary_epsilon(
            eps_values=(0.01, 0.25), **TINY
        )
        assert set(runtime.series) == {"SKECa", "SKECa+"}
        assert len(runtime.x_values) == 2
        # Accuracy can only degrade (weakly) as epsilon grows.
        for algo in ("SKECa", "SKECa+"):
            ratios = ratio.series[algo]
            assert all(r >= 1.0 - 1e-9 for r in ratios if not math.isnan(r))


class TestFig8:
    def test_structure(self):
        results = figures.fig8_vary_keywords(
            dataset_names=("NY",),
            ms=(2, 3),
            algorithms=("GKG", "SKECa+", "EXACT"),
            timeout=6.0,
            **TINY,
        )
        assert len(results) == 2
        runtime, ratio = results
        assert set(runtime.series) == {"GKG", "SKECa+", "EXACT"}
        exact_ratios = [r for r in ratio.series["EXACT"] if not math.isnan(r)]
        assert all(abs(r - 1.0) < 1e-6 for r in exact_ratios)


class TestFig9:
    def test_skec_at_least_as_accurate(self):
        runtime, ratio = figures.fig9_skec_vs_skecaplus(ms=(2, 3), **TINY)
        assert set(runtime.series) == {"SKEC", "SKECa+"}


class TestFig10:
    def test_structure(self):
        results = figures.fig10_vary_diameter(
            dataset_names=("LA",),
            bounds=(0.1, 0.3),
            timeout=6.0,
            **TINY,
        )
        assert len(results) == 4
        success = results[3]
        for algo, values in success.series.items():
            assert all(0.0 <= v <= 1.0 for v in values)


class TestFig11:
    def test_success_rate_monotone_in_timeout(self):
        runtime, success = figures.fig11_vary_timeout(
            timeouts=(0.05, 8.0), **TINY
        )
        for algo, values in success.series.items():
            assert values[0] <= values[1] + 1e-9


class TestFig12:
    def test_structure(self):
        results = figures.fig12_vary_frequency(
            pool_fractions=(0.5, 1.0), timeout=6.0, **TINY
        )
        assert len(results) == 4


class TestFig13:
    def test_sizes_grow(self):
        runtime, ratio = figures.fig13_scalability(
            scales=(0.01, 0.02),
            queries_per_set=2,
            algorithms=("GKG", "SKECa+"),
            timeout=6.0,
        )
        assert runtime.x_values[0] < runtime.x_values[1]


class TestFig14:
    def test_covers_ny_and_tw(self):
        results = figures.fig14_vary_epsilon_ny_tw(
            eps_values=(0.01,), **TINY
        )
        ids = [f.figure_id for f in results]
        assert any("NY" in i for i in ids)
        assert any("TW" in i for i in ids)


class TestDatasetByName:
    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            figures.dataset_by_name("berlin")

    def test_case_insensitive(self):
        ds = figures.dataset_by_name("ny", scale=0.01)
        assert ds.name == "NY-like"


class TestExtDistributed:
    def test_scaling_series(self):
        figs = figures.ext_distributed_scaling(
            scale=0.02, queries_per_set=2, worker_counts=(1, 4)
        )
        makespan, shipped = figs
        assert makespan.x_values == [1, 4]
        assert all(v >= 0 for v in makespan.series["distributed"])
        # More workers never ship fewer bytes (halos replicate).
        assert shipped.series["distributed"][1] >= shipped.series["distributed"][0]
