"""Tests for the runner's reference computation corner cases."""

import pytest

from repro.experiments.runner import ExperimentRunner
from tests.conftest import feasible_query, make_random_dataset


class TestReferenceFailure:
    def test_timed_out_reference_yields_no_ratio(self):
        ds = make_random_dataset(1, n=50)
        q = feasible_query(ds, 1, 4)
        runner = ExperimentRunner(ds, reference_timeout=-1.0)
        (m,) = runner.run_suite(["GKG"], [q])
        assert m.success
        assert m.optimal_diameter is None
        assert m.ratio is None

    def test_alternate_reference_algorithm(self):
        ds = make_random_dataset(2, n=40)
        q = feasible_query(ds, 2, 3)
        runner = ExperimentRunner(ds, reference_algorithm="BRUTE")
        (m,) = runner.run_suite(["EXACT"], [q])
        assert m.ratio == pytest.approx(1.0)

    def test_reference_not_charged_to_algorithm(self):
        """The reference solve must not inflate the measured runtime."""
        ds = make_random_dataset(3, n=50)
        q = feasible_query(ds, 3, 4)
        runner = ExperimentRunner(ds)
        (with_ref,) = runner.run_suite(["GKG"], [q])
        (without_ref,) = runner.run_suite(["GKG"], [q], with_reference=False)
        # Same algorithm on a warm context: timings within one order.
        assert with_ref.elapsed_seconds < max(10 * without_ref.elapsed_seconds, 0.05)


class TestMeasurementFields:
    def test_query_keywords_recorded(self):
        ds = make_random_dataset(4, n=30)
        q = feasible_query(ds, 4, 3)
        runner = ExperimentRunner(ds)
        (m,) = runner.run_suite(["GKG"], [q], with_reference=False)
        assert tuple(m.query_keywords) == tuple(q)

    def test_accepts_mckquery_objects(self):
        from repro.core.query import MCKQuery

        ds = make_random_dataset(5, n=30)
        q = MCKQuery(feasible_query(ds, 5, 3))
        runner = ExperimentRunner(ds)
        (m,) = runner.run_suite(["GKG"], [q], with_reference=False)
        assert m.success
