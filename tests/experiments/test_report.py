"""Tests for the ASCII report rendering."""

import math

import pytest

from repro.experiments.report import FigureResult, render_rows, render_series_table


class TestFigureResult:
    def test_add_series(self):
        fig = FigureResult("F1", "title", "x", [1, 2, 3])
        fig.add_series("algo", [0.1, 0.2, 0.3])
        assert fig.series["algo"] == [0.1, 0.2, 0.3]

    def test_add_series_length_mismatch(self):
        fig = FigureResult("F1", "title", "x", [1, 2])
        with pytest.raises(ValueError):
            fig.add_series("algo", [0.1])

    def test_render_contains_everything(self):
        fig = FigureResult("F1", "My Title", "m", [2, 4])
        fig.add_series("GKG", [0.01, 0.02])
        fig.notes.append("a note")
        text = fig.render()
        assert "F1" in text
        assert "My Title" in text
        assert "GKG" in text
        assert "a note" in text

    def test_nan_rendered_as_dash(self):
        fig = FigureResult("F1", "t", "x", [1])
        fig.add_series("A", [math.nan])
        assert "-" in fig.render()

    def test_str_is_render(self):
        fig = FigureResult("F1", "t", "x", [1])
        assert str(fig) == fig.render()


class TestRenderRows:
    def test_aligned_columns(self):
        text = render_rows("T", ["name", "count"], [("abc", 1), ("de", 22)])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "name" in lines[1] and "count" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        text = render_rows("T", ["v"], [(0.000123,), (1234567.0,), (1.5,)])
        assert "0.000123" in text
        assert "1.23e+06" in text
        assert "1.5" in text
