"""Tests for the experiment runner (timeouts, references, dispatch)."""

import math

import pytest

from repro.datasets.queries import generate_queries
from repro.exceptions import QueryError
from repro.experiments.runner import ALL_ALGORITHMS, ExperimentRunner
from tests.conftest import feasible_query, make_random_dataset


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(make_random_dataset(1, n=50))


@pytest.fixture(scope="module")
def queries(runner):
    terms = runner.dataset.vocabulary.terms_by_frequency()
    return [[terms[0], terms[1], terms[2]], [terms[3], terms[4], terms[5]]]


class TestRunSuite:
    def test_all_measurements_present(self, runner, queries):
        ms = runner.run_suite(["GKG", "EXACT"], queries)
        assert len(ms) == 4
        assert {m.algorithm for m in ms} == {"GKG", "EXACT"}

    def test_reference_attached(self, runner, queries):
        ms = runner.run_suite(["GKG"], queries)
        for m in ms:
            assert m.optimal_diameter is not None
            assert m.ratio >= 1.0 - 1e-9

    def test_without_reference(self, runner, queries):
        ms = runner.run_suite(["GKG"], queries, with_reference=False)
        for m in ms:
            assert m.optimal_diameter is None

    def test_exact_ratio_is_one(self, runner, queries):
        ms = runner.run_suite(["EXACT"], queries)
        for m in ms:
            assert m.ratio == pytest.approx(1.0)

    def test_timeout_marks_failure(self, runner, queries):
        ms = runner.run_suite(
            ["EXACT"], queries, timeout=-1.0, with_reference=False
        )
        for m in ms:
            assert not m.success
            assert m.diameter == math.inf

    def test_per_algorithm_timeouts(self, runner, queries):
        ms = runner.run_suite(
            ["GKG", "EXACT"],
            queries,
            timeout={"EXACT": -1.0},
            with_reference=False,
        )
        by_algo = {}
        for m in ms:
            by_algo.setdefault(m.algorithm, []).append(m)
        assert all(m.success for m in by_algo["GKG"])
        assert all(not m.success for m in by_algo["EXACT"])


class TestDispatch:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_every_algorithm_runs(self, runner, queries, name):
        ms = runner.run_suite([name], queries[:1], with_reference=False)
        assert len(ms) == 1
        assert ms[0].success

    def test_unknown_name(self, runner, queries):
        with pytest.raises(QueryError):
            runner.run_suite(["nope"], queries)

    def test_name_normalization(self, runner, queries):
        ms = runner.run_suite(["skeca+"], queries[:1], with_reference=False)
        assert ms[0].algorithm == "skeca+"


class TestEpsilonPlumbs(object):
    def test_epsilon_affects_skeca(self):
        ds = make_random_dataset(2, n=60)
        q = feasible_query(ds, 2, 4)
        coarse = ExperimentRunner(ds, epsilon=0.25)
        fine = ExperimentRunner(ds, epsilon=0.0004)
        mc = coarse.run_suite(["SKECa+"], [q], with_reference=False)[0]
        mf = fine.run_suite(["SKECa+"], [q], with_reference=False)[0]
        # Finer epsilon can only improve (or match) the found diameter.
        assert mf.diameter <= mc.diameter + 1e-9
