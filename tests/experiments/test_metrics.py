"""Tests for measurement records and aggregation."""

import math

import pytest

from repro.experiments.metrics import AlgorithmSummary, QueryMeasurement, summarize


def _m(algo, elapsed, diameter, success=True, optimal=None):
    return QueryMeasurement(
        algorithm=algo,
        query_keywords=("a", "b"),
        elapsed_seconds=elapsed,
        diameter=diameter,
        success=success,
        optimal_diameter=optimal,
    )


class TestQueryMeasurement:
    def test_ratio(self):
        assert _m("X", 0.1, 5.0, optimal=4.0).ratio == pytest.approx(1.25)

    def test_ratio_none_without_reference(self):
        assert _m("X", 0.1, 5.0).ratio is None

    def test_ratio_none_on_failure(self):
        assert _m("X", 0.1, math.inf, success=False, optimal=1.0).ratio is None

    def test_ratio_zero_optimal(self):
        assert _m("X", 0.1, 0.0, optimal=0.0).ratio == 1.0
        assert _m("X", 0.1, 2.0, optimal=0.0).ratio == math.inf


class TestSummarize:
    def test_groups_by_algorithm(self):
        ms = [_m("A", 0.1, 1.0, optimal=1.0), _m("B", 0.2, 2.0, optimal=1.0)]
        summaries = {s.algorithm: s for s in summarize(ms)}
        assert set(summaries) == {"A", "B"}
        assert summaries["B"].mean_ratio == pytest.approx(2.0)

    def test_mean_runtime_over_successes_only(self):
        ms = [
            _m("A", 0.1, 1.0),
            _m("A", 0.3, 1.0),
            _m("A", 99.0, math.inf, success=False),
        ]
        (s,) = summarize(ms)
        assert s.mean_runtime == pytest.approx(0.2)
        assert s.n_succeeded == 2
        assert s.success_rate == pytest.approx(2 / 3)

    def test_all_failed(self):
        ms = [_m("A", 1.0, math.inf, success=False)]
        (s,) = summarize(ms)
        assert math.isnan(s.mean_runtime)
        assert s.mean_ratio is None
        assert s.success_rate == 0.0

    def test_max_ratio(self):
        ms = [
            _m("A", 0.1, 1.0, optimal=1.0),
            _m("A", 0.1, 3.0, optimal=1.5),
        ]
        (s,) = summarize(ms)
        assert s.max_ratio == pytest.approx(2.0)

    def test_infinite_ratio_excluded(self):
        ms = [
            _m("A", 0.1, 2.0, optimal=0.0),   # inf ratio
            _m("A", 0.1, 1.0, optimal=1.0),
        ]
        (s,) = summarize(ms)
        assert s.mean_ratio == pytest.approx(1.0)

    def test_empty_input(self):
        assert summarize([]) == []

    def test_success_rate_zero_queries(self):
        s = AlgorithmSummary("A", 0, 0, math.nan, None, None)
        assert s.success_rate == 0.0


class TestPercentile:
    def test_empty_is_nan(self):
        from repro.experiments.metrics import percentile

        assert math.isnan(percentile([], 50))

    def test_single_value(self):
        from repro.experiments.metrics import percentile

        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 100) == 7.0

    def test_median_interpolates(self):
        from repro.experiments.metrics import percentile

        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        from repro.experiments.metrics import percentile

        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_rejects_bad_q(self):
        from repro.experiments.metrics import percentile

        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_unsorted_input(self):
        from repro.experiments.metrics import percentile

        assert percentile([9.0, 1.0, 5.0, 3.0, 7.0], 50) == 5.0


class TestRuntimePercentilesInSummary:
    def test_percentiles_populated(self):
        ms = [_m("A", t, 1.0) for t in (0.1, 0.2, 0.3, 0.4, 10.0)]
        (s,) = summarize(ms)
        assert s.p50_runtime == pytest.approx(0.3)
        assert s.p95_runtime > s.p50_runtime

    def test_percentiles_nan_when_all_fail(self):
        ms = [_m("A", 1.0, math.inf, success=False)]
        (s,) = summarize(ms)
        assert math.isnan(s.p50_runtime)
