"""Tests for the angular-interval algebra behind circleScan."""

import math
import random

import pytest

from repro.geometry.sweep import (
    TWO_PI,
    angle_in_interval,
    build_events,
    coverage_interval,
)


def _circle_at(pole, diameter, theta):
    """Centre of the rotating circle at angle theta."""
    r = diameter / 2.0
    return (pole[0] + r * math.cos(theta), pole[1] + r * math.sin(theta))


def _inside(pole, diameter, theta, p):
    cx, cy = _circle_at(pole, diameter, theta)
    return math.hypot(p[0] - cx, p[1] - cy) <= diameter / 2.0 + 1e-9


class TestCoverageInterval:
    def test_none_when_too_far(self):
        assert coverage_interval((0, 0), 1.0, (2.0, 0.0)) is None

    def test_full_interval_at_pole(self):
        assert coverage_interval((0, 0), 1.0, (0, 0)) == (0.0, TWO_PI)

    def test_boundary_distance_single_angle(self):
        # At distance exactly D the interval degenerates to one angle.
        interval = coverage_interval((0, 0), 2.0, (2.0, 0.0))
        assert interval is not None
        enter, exit_ = interval
        assert enter == pytest.approx(exit_, abs=1e-6)

    def test_interval_matches_geometry(self):
        # For any theta inside the interval, the point must actually lie in
        # the rotated circle, and vice versa.
        pole = (1.0, -2.0)
        diameter = 4.0
        p = (2.5, -1.0)
        interval = coverage_interval(pole, diameter, p)
        assert interval is not None
        enter, exit_ = interval
        for k in range(64):
            theta = TWO_PI * k / 64
            expected = _inside(pole, diameter, theta, p)
            got = angle_in_interval(theta, enter, exit_)
            assert got == expected, f"theta={theta}"

    @pytest.mark.parametrize("seed", range(8))
    def test_random_points_boundary_consistency(self, seed):
        rng = random.Random(seed)
        pole = (rng.uniform(-5, 5), rng.uniform(-5, 5))
        diameter = rng.uniform(0.5, 6.0)
        angle = rng.uniform(0, TWO_PI)
        d = rng.uniform(0.01, diameter * 0.999)
        p = (pole[0] + d * math.cos(angle), pole[1] + d * math.sin(angle))
        interval = coverage_interval(pole, diameter, p)
        assert interval is not None
        enter, exit_ = interval
        # At the interval endpoints, the point lies on the circle boundary.
        for theta in (enter, exit_):
            cx, cy = _circle_at(pole, diameter, theta)
            assert math.hypot(p[0] - cx, p[1] - cy) == pytest.approx(
                diameter / 2.0, rel=1e-6
            )


class TestAngleInInterval:
    def test_plain_interval(self):
        assert angle_in_interval(1.0, 0.5, 1.5)
        assert not angle_in_interval(2.0, 0.5, 1.5)

    def test_wrapping_interval(self):
        assert angle_in_interval(0.1, 6.0, 0.5)
        assert angle_in_interval(6.2, 6.0, 0.5)
        assert not angle_in_interval(3.0, 6.0, 0.5)

    def test_full_interval(self):
        assert angle_in_interval(4.0, 0.0, TWO_PI)


class TestBuildEvents:
    def test_full_interval_always_inside(self):
        events, inside = build_events([(0.0, TWO_PI, "x")])
        assert events == []
        assert inside == ["x"]

    def test_wrapping_initially_inside(self):
        events, inside = build_events([(6.0, 0.5, "w")])
        assert inside == ["w"]
        assert len(events) == 2

    def test_sorted_by_angle(self):
        intervals = [(2.0, 3.0, "a"), (0.5, 1.0, "b"), (1.5, 2.5, "c")]
        events, inside = build_events(intervals)
        assert inside == []
        angles = [e.angle for e in events]
        assert angles == sorted(angles)

    def test_exit_before_enter_on_tie(self):
        events, _ = build_events([(1.0, 2.0, "a"), (2.0, 3.0, "b")])
        tied = [e for e in events if e.angle == 2.0]
        assert [e.is_enter for e in tied] == [False, True]
