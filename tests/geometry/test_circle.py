"""Tests for repro.geometry.circle."""

import math

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry.circle import Circle, circle_from_three, circle_from_two


class TestCircle:
    def test_diameter(self):
        assert Circle(0, 0, 2.5).diameter == 5.0

    def test_contains_inside_and_boundary(self):
        c = Circle(0, 0, 1.0)
        assert c.contains((0.5, 0.5))
        assert c.contains((1.0, 0.0))  # boundary counts (closed disc)
        assert not c.contains((1.001, 0.0))

    def test_contains_epsilon_slack(self):
        c = Circle(0, 0, 1.0)
        assert c.contains((1.0 + 1e-12, 0.0))

    def test_contains_many_matches_scalar(self):
        c = Circle(1.0, -1.0, 2.0)
        pts = np.array([[0.0, 0.0], [5.0, 5.0], [3.0, -1.0], [1.0, 1.0]])
        mask = c.contains_many(pts)
        assert list(mask) == [c.contains(p) for p in pts]

    def test_on_boundary(self):
        c = Circle(0, 0, 1.0)
        assert c.on_boundary((math.cos(0.7), math.sin(0.7)))
        assert not c.on_boundary((0.5, 0.0))

    def test_scaled(self):
        c = Circle(3, 4, 2.0).scaled(1.5)
        assert (c.cx, c.cy, c.r) == (3, 4, 3.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Circle(0, 0, 1).r = 2  # type: ignore[misc]


class TestCircleFromTwo:
    def test_diameter_is_segment(self):
        c = circle_from_two((0, 0), (4, 0))
        assert (c.cx, c.cy) == (2, 0)
        assert c.r == 2.0

    def test_boundary_passes_both(self):
        c = circle_from_two((1, 2), (5, -3))
        assert c.on_boundary((1, 2))
        assert c.on_boundary((5, -3))

    def test_coincident_points(self):
        c = circle_from_two((7, 7), (7, 7))
        assert c.r == 0.0


class TestCircleFromThree:
    def test_unit_circle(self):
        c = circle_from_three((1, 0), (0, 1), (-1, 0))
        assert c.cx == pytest.approx(0.0, abs=1e-12)
        assert c.cy == pytest.approx(0.0, abs=1e-12)
        assert c.r == pytest.approx(1.0)

    def test_boundary_passes_all_three(self):
        pts = [(0.3, 1.7), (-2.0, 0.4), (1.1, -0.9)]
        c = circle_from_three(*pts)
        for p in pts:
            assert c.on_boundary(p)

    def test_right_triangle_hypotenuse_is_diameter(self):
        # Thales: the circumcircle of a right triangle is centred on the
        # hypotenuse midpoint.
        c = circle_from_three((0, 0), (4, 0), (0, 3))
        assert (c.cx, c.cy) == pytest.approx((2.0, 1.5))
        assert c.r == pytest.approx(2.5)

    def test_collinear_raises(self):
        with pytest.raises(GeometryError):
            circle_from_three((0, 0), (1, 1), (2, 2))

    def test_duplicate_points_raise(self):
        with pytest.raises(GeometryError):
            circle_from_three((0, 0), (0, 0), (1, 1))
