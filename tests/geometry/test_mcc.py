"""Tests for the minimum covering circle (Welzl) against the naive solver."""

import math
import random

import pytest

from repro.geometry.circle import Circle
from repro.geometry.mcc import minimum_covering_circle, minimum_covering_circle_naive
from repro.geometry.point import dist


class TestBasics:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            minimum_covering_circle([])

    def test_single_point(self):
        c = minimum_covering_circle([(3, 4)])
        assert (c.cx, c.cy, c.r) == (3, 4, 0.0)

    def test_two_points(self):
        c = minimum_covering_circle([(0, 0), (2, 0)])
        assert (c.cx, c.cy) == pytest.approx((1.0, 0.0))
        assert c.r == pytest.approx(1.0)

    def test_duplicated_points(self):
        c = minimum_covering_circle([(1, 1)] * 5 + [(3, 1)] * 3)
        assert c.r == pytest.approx(1.0)

    def test_equilateral_triangle(self):
        # Circumradius of a unit equilateral triangle is 1/sqrt(3).
        pts = [(0, 0), (1, 0), (0.5, math.sqrt(3) / 2)]
        c = minimum_covering_circle(pts)
        assert c.r == pytest.approx(1 / math.sqrt(3))

    def test_obtuse_triangle_uses_two_points(self):
        # For an obtuse triangle, the MCC is determined by the longest side.
        pts = [(0, 0), (10, 0), (5, 0.1)]
        c = minimum_covering_circle(pts)
        assert c.r == pytest.approx(5.0, abs=1e-6)

    def test_square(self):
        pts = [(0, 0), (2, 0), (2, 2), (0, 2)]
        c = minimum_covering_circle(pts)
        assert (c.cx, c.cy) == pytest.approx((1.0, 1.0))
        assert c.r == pytest.approx(math.sqrt(2))


def _check_is_mcc(points, circle: Circle):
    # (1) encloses everything;
    for p in points:
        assert dist(circle.center, p) <= circle.r + 1e-7
    # (2) at least two points on the boundary (unless degenerate).
    distinct = set(points)
    if len(distinct) >= 2:
        on_boundary = sum(
            1 for p in distinct if abs(dist(circle.center, p) - circle.r) < 1e-6
        )
        assert on_boundary >= 2


class TestAgainstNaive:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_sets_match_naive(self, seed):
        rng = random.Random(seed)
        pts = [(rng.uniform(-50, 50), rng.uniform(-50, 50)) for _ in range(rng.randint(3, 14))]
        fast = minimum_covering_circle(pts)
        slow = minimum_covering_circle_naive(pts)
        assert fast.r == pytest.approx(slow.r, rel=1e-7, abs=1e-7)
        _check_is_mcc(pts, fast)

    def test_collinear_points(self):
        pts = [(float(i), 2.0 * i) for i in range(7)]
        fast = minimum_covering_circle(pts)
        slow = minimum_covering_circle_naive(pts)
        assert fast.r == pytest.approx(slow.r, rel=1e-9)

    def test_points_on_circle(self):
        # All points exactly on a known circle: MCC radius equals it.
        pts = [
            (5 + 3 * math.cos(t), -2 + 3 * math.sin(t))
            for t in [0.1, 0.9, 2.0, 3.0, 4.4, 5.5]
        ]
        c = minimum_covering_circle(pts)
        assert c.r == pytest.approx(3.0, rel=1e-9)
        assert (c.cx, c.cy) == pytest.approx((5.0, -2.0), abs=1e-7)

    def test_deterministic_across_calls(self):
        pts = [(1, 1), (4, 5), (-2, 3), (0, -6), (7, 2)]
        c1 = minimum_covering_circle(pts)
        c2 = minimum_covering_circle(list(reversed(pts)))
        assert c1.r == pytest.approx(c2.r, rel=1e-12)
