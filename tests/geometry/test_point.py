"""Tests for repro.geometry.point."""

import math

import numpy as np
import pytest

from repro.geometry.point import (
    Point,
    coords_array,
    dist,
    dist_many,
    dist_sq,
    dist_sq_many,
    midpoint,
    polar_angle,
)


class TestDist:
    def test_unit_distance(self):
        assert dist((0, 0), (1, 0)) == 1.0

    def test_pythagorean_triple(self):
        assert dist((0, 0), (3, 4)) == 5.0

    def test_symmetric(self):
        assert dist((2, 7), (-1, 3)) == dist((-1, 3), (2, 7))

    def test_zero_for_same_point(self):
        assert dist((5.5, -2.5), (5.5, -2.5)) == 0.0

    def test_matches_dist_sq(self):
        a, b = (1.5, 2.5), (-3.0, 4.0)
        assert dist(a, b) == pytest.approx(math.sqrt(dist_sq(a, b)))

    def test_huge_coordinates_no_overflow(self):
        # hypot avoids intermediate overflow where the naive formula fails.
        a = (1e200, 0.0)
        b = (0.0, 1e200)
        assert math.isfinite(dist(a, b))


class TestBatchKernels:
    def test_dist_many_matches_scalar(self):
        origin = (3.0, -2.0)
        pts = np.array([[0.0, 0.0], [3.0, -2.0], [10.0, 5.0]])
        expected = [dist(origin, p) for p in pts]
        assert dist_many(origin, pts) == pytest.approx(expected)

    def test_dist_sq_many_matches_scalar(self):
        origin = (1.0, 1.0)
        pts = np.array([[4.0, 5.0], [1.0, 1.0]])
        assert dist_sq_many(origin, pts) == pytest.approx([25.0, 0.0])

    def test_empty_input(self):
        out = dist_many((0, 0), np.empty((0, 2)))
        assert out.shape == (0,)


class TestPoint:
    def test_tuple_compatibility(self):
        p = Point(1.0, 2.0)
        assert p == (1.0, 2.0)
        assert p[0] == 1.0 and p[1] == 2.0

    def test_add_sub(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - (1, 1) == Point(2, 3)

    def test_scaled(self):
        assert Point(2, -4).scaled(0.5) == Point(1, -2)

    def test_distance_to(self):
        assert Point(0, 0).distance_to((0, 9)) == 9.0


class TestMidpointAndAngle:
    def test_midpoint(self):
        assert midpoint((0, 0), (4, 6)) == Point(2, 3)

    def test_polar_angle_quadrants(self):
        pole = (0.0, 0.0)
        assert polar_angle(pole, (1, 0)) == pytest.approx(0.0)
        assert polar_angle(pole, (0, 1)) == pytest.approx(math.pi / 2)
        assert polar_angle(pole, (-1, 0)) == pytest.approx(math.pi)
        assert polar_angle(pole, (0, -1)) == pytest.approx(3 * math.pi / 2)

    def test_polar_angle_range(self):
        # Always within [0, 2*pi).
        for ang_deg in range(0, 360, 17):
            rad = math.radians(ang_deg)
            p = (math.cos(rad), math.sin(rad))
            got = polar_angle((0, 0), p)
            assert 0.0 <= got < 2 * math.pi
            assert got == pytest.approx(rad, abs=1e-12)


class TestCoordsArray:
    def test_packs_points(self):
        arr = coords_array([(1, 2), (3, 4)])
        assert arr.shape == (2, 2)
        assert arr.dtype == np.float64

    def test_empty(self):
        assert coords_array([]).shape == (0, 2)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            coords_array([(1, 2, 3)])
