"""Tests for group diameter (Definition 1): brute force vs calipers."""

import math
import random

import pytest

from repro.geometry.diameter import (
    diameter_bruteforce,
    diameter_calipers,
    group_diameter,
)


class TestGroupDiameter:
    def test_empty_and_singleton(self):
        assert group_diameter([]) == 0.0
        assert group_diameter([(3, 3)]) == 0.0

    def test_pair(self):
        assert group_diameter([(0, 0), (3, 4)]) == pytest.approx(5.0)

    def test_square(self):
        pts = [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert group_diameter(pts) == pytest.approx(math.sqrt(2))

    def test_interior_points_ignored(self):
        pts = [(0, 0), (10, 0), (5, 1), (5, 2), (4, -1)]
        assert group_diameter(pts) == pytest.approx(10.0)

    def test_duplicates(self):
        assert group_diameter([(1, 1), (1, 1), (1, 1)]) == 0.0


class TestCalipersMatchesBruteForce:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_clouds(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 80)
        pts = [(rng.uniform(-100, 100), rng.uniform(-100, 100)) for _ in range(n)]
        assert diameter_calipers(pts) == pytest.approx(
            diameter_bruteforce(pts), rel=1e-12
        )

    def test_collinear(self):
        pts = [(float(i), 3.0) for i in range(40)]
        assert diameter_calipers(pts) == pytest.approx(39.0)

    def test_circle_points(self):
        pts = [
            (math.cos(2 * math.pi * i / 37), math.sin(2 * math.pi * i / 37))
            for i in range(37)
        ]
        brute = diameter_bruteforce(pts)
        assert diameter_calipers(pts) == pytest.approx(brute, rel=1e-12)
        assert brute == pytest.approx(2.0, abs=0.02)

    def test_large_set_dispatches_to_calipers(self):
        rng = random.Random(123)
        pts = [(rng.gauss(0, 10), rng.gauss(0, 10)) for _ in range(500)]
        assert group_diameter(pts) == pytest.approx(diameter_bruteforce(pts))
