"""Tests for the Elzinga–Hearn MCC against the Welzl implementation."""

import math
import random

import pytest

from repro.geometry.elzinga_hearn import minimum_covering_circle_eh
from repro.geometry.mcc import minimum_covering_circle
from repro.geometry.point import dist


class TestBasics:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            minimum_covering_circle_eh([])

    def test_single_point(self):
        c = minimum_covering_circle_eh([(2, 9)])
        assert (c.cx, c.cy, c.r) == (2, 9, 0.0)

    def test_identical_points(self):
        c = minimum_covering_circle_eh([(1, 1)] * 7)
        assert c.r == 0.0

    def test_two_points(self):
        c = minimum_covering_circle_eh([(0, 0), (6, 8)])
        assert c.r == pytest.approx(5.0)

    def test_equilateral_triangle(self):
        pts = [(0, 0), (1, 0), (0.5, math.sqrt(3) / 2)]
        c = minimum_covering_circle_eh(pts)
        assert c.r == pytest.approx(1 / math.sqrt(3))

    def test_collinear(self):
        pts = [(float(i), float(2 * i)) for i in range(9)]
        c = minimum_covering_circle_eh(pts)
        assert c.r == pytest.approx(minimum_covering_circle(pts).r, rel=1e-7)


class TestAgreementWithWelzl:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_clouds(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 40)
        pts = [(rng.uniform(-100, 100), rng.uniform(-100, 100)) for _ in range(n)]
        eh = minimum_covering_circle_eh(pts)
        welzl = minimum_covering_circle(pts)
        assert eh.r == pytest.approx(welzl.r, rel=1e-6, abs=1e-6)
        for p in pts:
            assert dist(eh.center, p) <= eh.r + 1e-6

    def test_points_on_circle(self):
        pts = [
            (3 * math.cos(t) - 1, 3 * math.sin(t) + 2)
            for t in [0.2, 1.1, 2.3, 3.6, 4.9, 5.8]
        ]
        c = minimum_covering_circle_eh(pts)
        assert c.r == pytest.approx(3.0, rel=1e-7)
