"""Tests for the monotone-chain convex hull."""

import random

import pytest

from repro.geometry.hull import convex_hull, cross


class TestCross:
    def test_left_turn_positive(self):
        assert cross((0, 0), (1, 0), (1, 1)) > 0

    def test_right_turn_negative(self):
        assert cross((0, 0), (1, 0), (1, -1)) < 0

    def test_collinear_zero(self):
        assert cross((0, 0), (1, 1), (2, 2)) == 0


class TestConvexHull:
    def test_single_point(self):
        assert convex_hull([(1, 2)]) == [(1, 2)]

    def test_two_points(self):
        assert convex_hull([(3, 3), (1, 2)]) == [(1, 2), (3, 3)]

    def test_square_with_interior(self):
        pts = [(0, 0), (4, 0), (4, 4), (0, 4), (2, 2), (1, 3)]
        hull = set(convex_hull(pts))
        assert hull == {(0, 0), (4, 0), (4, 4), (0, 4)}

    def test_collinear_input(self):
        pts = [(float(i), float(i)) for i in range(5)]
        hull = convex_hull(pts)
        assert set(hull) == {(0, 0), (4, 4)}

    def test_collinear_edges_dropped(self):
        # Midpoints of square edges must not appear in the hull.
        pts = [(0, 0), (2, 0), (4, 0), (4, 4), (0, 4)]
        assert (2, 0) not in convex_hull(pts)

    def test_counterclockwise_orientation(self):
        hull = convex_hull([(0, 0), (4, 0), (4, 4), (0, 4)])
        n = len(hull)
        for i in range(n):
            assert cross(hull[i], hull[(i + 1) % n], hull[(i + 2) % n]) > 0

    @pytest.mark.parametrize("seed", range(5))
    def test_all_points_inside_hull(self, seed):
        rng = random.Random(seed)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(30)]
        hull = convex_hull(pts)
        n = len(hull)
        for p in pts:
            # point-in-convex-polygon: on the left of every edge.
            for i in range(n):
                assert cross(hull[i], hull[(i + 1) % n], p) >= -1e-9

    def test_duplicates_removed(self):
        hull = convex_hull([(0, 0), (0, 0), (1, 0), (1, 0), (0, 1)])
        assert len(hull) == 3
