"""Tests of the top-level package surface and the exception hierarchy."""

import pytest

import repro
from repro.exceptions import (
    AlgorithmTimeout,
    DatasetError,
    ExperimentError,
    GeometryError,
    InfeasibleQueryError,
    QueryError,
    ReproError,
)


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_key_entry_points(self):
        assert callable(repro.exact)
        assert callable(repro.skeca_plus)
        assert isinstance(repro.ALGORITHMS, tuple)
        assert "EXACT" in repro.ALGORITHMS

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.datasets
        import repro.distributed
        import repro.experiments
        import repro.extensions
        import repro.hardness
        import repro.viz

        assert callable(repro.extensions.top_k_mck)
        assert callable(repro.viz.render_result)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            GeometryError,
            QueryError,
            DatasetError,
            ExperimentError,
            AlgorithmTimeout,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_infeasible_is_query_error(self):
        assert issubclass(InfeasibleQueryError, QueryError)

    def test_infeasible_message_names_keywords(self):
        err = InfeasibleQueryError(["ghost", "phantom"])
        assert "ghost" in str(err)
        assert err.missing_keywords == ("ghost", "phantom")

    def test_infeasible_without_keywords(self):
        err = InfeasibleQueryError()
        assert "covered" in str(err)

    def test_timeout_carries_context(self):
        err = AlgorithmTimeout("EXACT", 1.5)
        assert err.algorithm == "EXACT"
        assert err.budget_seconds == 1.5
        assert "EXACT" in str(err)

    def test_single_except_clause_catches_everything(self):
        for exc in (GeometryError("x"), InfeasibleQueryError(), AlgorithmTimeout("A", 1)):
            try:
                raise exc
            except ReproError:
                pass
