"""Tests for the grid partitioner."""

import pytest

from repro.core.objects import Dataset
from repro.distributed.partition import GridPartitioner
from repro.exceptions import ExperimentError
from tests.conftest import make_random_dataset


@pytest.fixture
def ds():
    return make_random_dataset(1, n=120)


class TestGrid:
    def test_worker_count_square(self, ds):
        assert GridPartitioner(ds, 4).n_workers == 4
        assert GridPartitioner(ds, 9).n_workers == 9
        assert GridPartitioner(ds, 5).n_workers == 4  # floor(sqrt(5))^2

    def test_rejects_zero_workers(self, ds):
        with pytest.raises(ExperimentError):
            GridPartitioner(ds, 0)

    def test_rejects_empty_dataset(self):
        ds = Dataset(name="empty")
        ds.finalize()
        with pytest.raises(ExperimentError):
            GridPartitioner(ds, 4)

    def test_rejects_negative_halo(self, ds):
        with pytest.raises(ExperimentError):
            GridPartitioner(ds, 4).partitions(-1.0)


class TestCoreAssignment:
    def test_every_object_in_exactly_one_core(self, ds):
        parts = GridPartitioner(ds, 9).partitions(halo=0.0)
        seen = []
        for p in parts:
            seen.extend(p.core_ids)
        assert sorted(seen) == list(range(len(ds)))

    def test_core_objects_inside_core_rect(self, ds):
        parts = GridPartitioner(ds, 4).partitions(halo=0.0)
        for p in parts:
            x1, y1, x2, y2 = p.core
            for oid in p.core_ids:
                x, y = ds.location_of(oid)
                assert x1 - 1e-9 <= x <= x2 + 1e-9
                assert y1 - 1e-9 <= y <= y2 + 1e-9

    def test_zero_halo_no_replication(self, ds):
        parts = GridPartitioner(ds, 4).partitions(halo=0.0)
        assert all(not p.halo_ids for p in parts)


class TestHalo:
    def test_halo_covers_nearby_objects(self, ds):
        """Every object within `halo` of a worker's core rectangle must be
        in that worker's view — the correctness condition of the protocol."""
        halo = 20.0
        parts = GridPartitioner(ds, 9).partitions(halo=halo)
        for p in parts:
            x1, y1, x2, y2 = p.core
            view = set(p.all_ids)
            for oid in range(len(ds)):
                x, y = ds.location_of(oid)
                dx = max(x1 - x, 0.0, x - x2)
                dy = max(y1 - y, 0.0, y - y2)
                if (dx * dx + dy * dy) ** 0.5 <= halo - 1e-9:
                    assert oid in view, (p.worker_id, oid)

    def test_larger_halo_more_replication(self, ds):
        grid = GridPartitioner(ds, 9)
        small = sum(len(p.halo_ids) for p in grid.partitions(10.0))
        large = sum(len(p.halo_ids) for p in grid.partitions(40.0))
        assert large >= small

    def test_huge_halo_replicates_everywhere(self, ds):
        parts = GridPartitioner(ds, 4).partitions(halo=1e6)
        for p in parts:
            assert len(p) == len(ds)


class TestWorkerForBoundaries:
    """Point routing must agree with bulk partitioning everywhere --
    including points exactly on interior cell edges and extent corners
    (the live sharding layer routes mutations through ``worker_for`` and
    splits regions along these exact float boundaries)."""

    def _boundary_dataset(self):
        # Extent [0,100]^2 with a 2x2 grid: the interior edges sit at
        # exactly 50.0 on each axis.
        pts = [
            (0.0, 0.0), (100.0, 100.0),          # extent corners (min/max)
            (100.0, 0.0), (0.0, 100.0),          # the other corners
            (50.0, 50.0),                        # grid centre (both edges)
            (50.0, 0.0), (0.0, 50.0),            # interior edge endpoints
            (50.0, 100.0), (100.0, 50.0),
            (49.999999, 50.0), (50.000001, 50.0),  # straddling the edge
            (25.0, 75.0), (75.0, 25.0),          # cell interiors
        ]
        ds = Dataset(name="boundaries")
        for i, (x, y) in enumerate(pts):
            ds.add(x, y, ["t"])
        ds.finalize()
        return ds

    def test_point_routing_matches_bulk_partitioning(self):
        ds = self._boundary_dataset()
        grid = GridPartitioner(ds, 4)
        owner_by_bulk = {}
        for part in grid.partitions(0.0):
            for oid in part.core_ids:
                owner_by_bulk[oid] = part.worker_id
        assert len(owner_by_bulk) == len(ds)  # every object exactly once
        coords = ds.coords
        for oid in range(len(ds)):
            x, y = float(coords[oid, 0]), float(coords[oid, 1])
            assert grid.worker_for(x, y) == owner_by_bulk[oid], (oid, x, y)

    def test_interior_edges_belong_to_the_higher_cell(self):
        ds = self._boundary_dataset()
        grid = GridPartitioner(ds, 4)
        # x == 50 is the first column of the east cells, y == 50 the first
        # row of the north cells; the extent max edge clamps back inside.
        assert grid.cell_of(50.0, 0.0) == (1, 0)
        assert grid.cell_of(0.0, 50.0) == (0, 1)
        assert grid.cell_of(50.0, 50.0) == (1, 1)
        assert grid.cell_of(100.0, 100.0) == (1, 1)
        assert grid.cell_of(0.0, 0.0) == (0, 0)
        assert grid.cell_of(49.999999, 50.0) == (0, 1)

    def test_extent_corner_objects_round_trip_every_worker_count(self):
        ds = self._boundary_dataset()
        for n_workers in (1, 4, 9, 16):
            grid = GridPartitioner(ds, n_workers)
            owner_by_bulk = {}
            for part in grid.partitions(0.0):
                for oid in part.core_ids:
                    owner_by_bulk[oid] = part.worker_id
            coords = ds.coords
            for oid in range(len(ds)):
                x, y = float(coords[oid, 0]), float(coords[oid, 1])
                assert grid.worker_for(x, y) == owner_by_bulk[oid]
