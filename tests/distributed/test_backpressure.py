"""Coordinator backpressure: bounded per-worker outstanding-task queues."""

from __future__ import annotations

import threading

import pytest

from repro.distributed.coordinator import DistributedMCKEngine
from repro.distributed.worker import Worker
from repro.exceptions import QueryRejected
from repro.serving.stats import MetricsRegistry

WAIT = 30.0


@pytest.fixture
def dataset(random_dataset_factory):
    return random_dataset_factory(17, n=40)


@pytest.fixture
def query(dataset, feasible_query_factory):
    return feasible_query_factory(dataset, seed=17, m=3)


class TestSlotAccounting:
    def test_acquire_release_and_pending_accessor(self, dataset):
        engine = DistributedMCKEngine(
            dataset,
            n_workers=2,
            worker_queue_capacity=1,
            metrics=MetricsRegistry(),
        )
        assert engine.pending_tasks(0) == 0
        engine._acquire_worker_slot(0, "bound")
        assert engine.pending_tasks(0) == 1
        assert engine.pending_tasks(1) == 0  # slots are per worker
        with pytest.raises(QueryRejected) as excinfo:
            engine._acquire_worker_slot(0, "bound")
        assert excinfo.value.reason == "worker_backpressure"
        rejected = engine.metrics.admission_rejected_counter.value(
            reason="worker_backpressure"
        )
        assert rejected == 1.0
        engine._release_worker_slot(0)
        assert engine.pending_tasks(0) == 0
        engine._acquire_worker_slot(0, "bound")  # the freed slot is reusable

    def test_depth_gauge_tracks_per_worker_queue(self, dataset):
        registry = MetricsRegistry()
        engine = DistributedMCKEngine(
            dataset, n_workers=2, worker_queue_capacity=4, metrics=registry
        )
        engine._acquire_worker_slot(1, "exact")
        assert registry.queue_depth_gauge.value(queue="worker-1") == 1.0
        engine._release_worker_slot(1)
        assert registry.queue_depth_gauge.value(queue="worker-1") == 0.0

    def test_capacity_validation(self, dataset):
        with pytest.raises(ValueError):
            DistributedMCKEngine(dataset, n_workers=2, worker_queue_capacity=0)


class TestQueryBehaviour:
    def test_sequential_queries_fit_capacity_one(self, dataset, query):
        # The coordinator submits to each worker one task at a time, so a
        # single-caller workload never trips a capacity-1 bound.
        engine = DistributedMCKEngine(
            dataset,
            n_workers=2,
            worker_queue_capacity=1,
            metrics=MetricsRegistry(),
        )
        result = engine.query(query)
        assert result.group is not None
        assert all(
            engine.pending_tasks(i) == 0 for i in range(engine.n_workers)
        )

    def test_concurrent_queries_shed_with_typed_rejection(
        self, dataset, query, monkeypatch
    ):
        engine = DistributedMCKEngine(
            dataset,
            n_workers=2,
            worker_queue_capacity=1,
            metrics=MetricsRegistry(),
        )
        release = threading.Event()
        first_inside = threading.Event()
        original_answer = Worker.answer

        def slow_answer(self, *args, **kwargs):
            first_inside.set()
            assert release.wait(WAIT)
            return original_answer(self, *args, **kwargs)

        monkeypatch.setattr(Worker, "answer", slow_answer)
        outcome = {}

        def background_query():
            outcome["result"] = engine.query(query)

        thread = threading.Thread(target=background_query)
        thread.start()
        try:
            assert first_inside.wait(WAIT)
            # Worker 0's single slot is held by the background query; a
            # concurrent query is refused with the typed rejection instead
            # of queueing without bound.
            with pytest.raises(QueryRejected) as excinfo:
                engine.query(query)
            assert excinfo.value.reason == "worker_backpressure"
            assert "worker" in str(excinfo.value)
        finally:
            release.set()
            thread.join(timeout=WAIT)
        assert not thread.is_alive()
        assert outcome["result"].group is not None
        rejected = engine.metrics.admission_rejected_counter.value(
            reason="worker_backpressure"
        )
        assert rejected >= 1.0
