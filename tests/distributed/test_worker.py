"""Unit tests for the simulated worker."""

import pytest

from repro.core.objects import Dataset
from repro.distributed.partition import GridPartitioner, Partition
from repro.distributed.worker import Worker
from tests.conftest import make_random_dataset


@pytest.fixture
def ds():
    return make_random_dataset(3, n=60)


class TestWorkerConstruction:
    def test_holds_partition_objects(self, ds):
        (part, *_rest) = GridPartitioner(ds, 4).partitions(halo=20.0)
        worker = Worker(part, ds)
        assert len(worker) == len(part)
        assert worker.local_dataset is not None
        assert len(worker.local_dataset) == len(part)

    def test_empty_partition(self, ds):
        empty = Partition(worker_id=9, core=(0, 0, 0, 0))
        worker = Worker(empty, ds)
        assert len(worker) == 0
        answer = worker.answer(["a"], algorithm="GKG")
        assert answer.group is None
        assert answer.diameter == float("inf")


class TestAnswer:
    def test_answer_in_global_ids(self, ds):
        parts = GridPartitioner(ds, 1).partitions(halo=0.0)
        worker = Worker(parts[0], ds)  # owns everything
        terms = ds.vocabulary.terms_by_frequency()[:2]
        answer = worker.answer(terms, algorithm="EXACT")
        assert answer.group is not None
        for oid in answer.group.object_ids:
            # Global ids must resolve in the parent dataset and cover terms.
            assert 0 <= oid < len(ds)
        covered = set()
        for oid in answer.group.object_ids:
            covered |= ds[oid].keywords
        assert set(terms) <= covered

    def test_infeasible_locally(self, ds):
        parts = GridPartitioner(ds, 4).partitions(halo=0.0)
        worker = Worker(parts[0], ds)
        answer = worker.answer(["no-such-keyword"], algorithm="GKG")
        assert answer.group is None

    def test_compute_time_recorded(self, ds):
        parts = GridPartitioner(ds, 1).partitions(halo=0.0)
        worker = Worker(parts[0], ds)
        terms = ds.vocabulary.terms_by_frequency()[:2]
        answer = worker.answer(terms, algorithm="GKG")
        assert answer.compute_seconds >= 0.0

    def test_algorithm_tag_in_group(self, ds):
        parts = GridPartitioner(ds, 1).partitions(halo=0.0)
        worker = Worker(parts[0], ds)
        terms = ds.vocabulary.terms_by_frequency()[:2]
        answer = worker.answer(terms, algorithm="GKG")
        assert answer.group.algorithm.endswith(f"@w{worker.worker_id}")
