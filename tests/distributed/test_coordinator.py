"""Tests for the distributed mCK protocol."""

import random

import pytest

from repro.core.engine import MCKEngine
from repro.core.objects import Dataset
from repro.distributed import DistributedMCKEngine
from tests.conftest import feasible_query, make_random_dataset


@pytest.fixture(scope="module")
def single_keyword_dataset():
    """Single-keyword objects: every group spans several objects."""
    rng = random.Random(5)
    vocab = list("abcdefgh")
    records = [
        (rng.uniform(0, 100), rng.uniform(0, 100), [rng.choice(vocab)])
        for _ in range(150)
    ]
    return Dataset.from_records(records)


class TestExactness:
    @pytest.mark.parametrize("n_workers", [1, 4, 9])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_centralized(self, single_keyword_dataset, n_workers, seed):
        ds = single_keyword_dataset
        rng = random.Random(seed)
        query = rng.sample("abcdefgh", rng.randint(2, 4))
        central = MCKEngine(ds).query(query, algorithm="EXACT")
        result = DistributedMCKEngine(ds, n_workers=n_workers).query(query)
        assert result.group.diameter == pytest.approx(
            central.diameter, abs=1e-9
        )

    def test_random_multi_keyword_data(self):
        ds = make_random_dataset(9, n=100)
        query = feasible_query(ds, 9, 3)
        central = MCKEngine(ds).query(query, algorithm="EXACT")
        result = DistributedMCKEngine(ds, n_workers=4).query(query)
        assert result.group.diameter == pytest.approx(central.diameter, abs=1e-9)


class TestProtocolShape:
    def test_single_object_answer_one_round(self):
        ds = Dataset.from_records(
            [(10, 10, ["a", "b"]), (90, 90, ["a"]), (95, 95, ["b"])]
        )
        result = DistributedMCKEngine(ds, n_workers=4).query(["a", "b"])
        assert result.rounds == 1
        assert result.group.diameter == 0.0

    def test_two_rounds_for_spanning_groups(self, single_keyword_dataset):
        result = DistributedMCKEngine(single_keyword_dataset, n_workers=4).query(
            ["a", "b"]
        )
        assert result.rounds in (1, 2)
        assert result.messages > 0
        assert result.bytes_shipped > 0

    def test_makespan_at_most_total(self, single_keyword_dataset):
        result = DistributedMCKEngine(single_keyword_dataset, n_workers=9).query(
            ["a", "b", "c"]
        )
        assert result.makespan_seconds <= result.total_compute_seconds + 1e-9

    def test_fallback_when_no_local_cover(self):
        """Two far corners each hold one keyword: no single partition
        covers the query, forcing the centralized fallback — which must
        still be exact."""
        ds = Dataset.from_records(
            [(0.0, 0.0, ["left"]), (100.0, 100.0, ["right"])]
        )
        result = DistributedMCKEngine(ds, n_workers=4).query(["left", "right"])
        assert result.fell_back_to_central
        assert result.group.diameter == pytest.approx((2 * 100**2) ** 0.5)

    def test_worker_answers_recorded(self, single_keyword_dataset):
        result = DistributedMCKEngine(single_keyword_dataset, n_workers=4).query(
            ["a", "b"]
        )
        assert len(result.worker_answers) >= 4


class TestScalingBehaviour:
    def test_more_workers_less_makespan_or_close(self, single_keyword_dataset):
        """Parallel speed-up is workload dependent, but the makespan with 9
        workers should never be far above the single-worker cost."""
        one = DistributedMCKEngine(single_keyword_dataset, n_workers=1).query(
            ["a", "b", "c"]
        )
        nine = DistributedMCKEngine(single_keyword_dataset, n_workers=9).query(
            ["a", "b", "c"]
        )
        assert nine.makespan_seconds <= one.makespan_seconds * 3 + 0.05
