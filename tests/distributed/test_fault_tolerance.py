"""Coordinator crash detection, respawn-and-resubmit, and abandonment."""

import pytest

from repro.distributed.coordinator import DistributedMCKEngine
from repro.exceptions import WorkerCrashed
from repro.serving.stats import MetricsRegistry
from repro.testing import faults


@pytest.fixture
def grid_dataset(random_dataset_factory):
    # One keyword per object: no single object covers the query, so the
    # protocol always needs its second (exact) round.
    return random_dataset_factory(11, n=60, vocab="abcd", max_terms=1)


@pytest.fixture
def engine(grid_dataset):
    return DistributedMCKEngine(
        grid_dataset,
        n_workers=4,
        metrics=MetricsRegistry(),
        retry_backoff_seconds=0.0,
    )


QUERY = ["a", "b", "c"]


def crash(worker_id: int = -1):
    return lambda: WorkerCrashed(worker_id, "injected crash")


class TestRespawnAndResubmit:
    def test_single_crash_is_transparent(self, engine):
        baseline = engine.query(QUERY)
        with faults.injected(
            "distributed.worker.answer", error=crash(), times=1
        ):
            result = engine.query(QUERY)
        assert result.group.diameter == pytest.approx(baseline.group.diameter)
        assert result.worker_crashes == 1
        assert result.worker_retries == 1

    def test_crash_on_nth_task(self, engine):
        baseline = engine.query(QUERY)
        # Crash the third worker call of the query (crash-on-nth-task).
        with faults.injected(
            "distributed.worker.answer", error=crash(), after=2, times=1
        ):
            result = engine.query(QUERY)
        assert result.group.diameter == pytest.approx(baseline.group.diameter)
        assert result.worker_crashes == 1

    def test_crash_in_exact_round(self, engine):
        baseline = engine.query(QUERY)
        n = engine.n_workers
        # Skip all of round 1; crash the first round-2 call once.
        with faults.injected(
            "distributed.worker.answer", error=crash(), after=n, times=1
        ):
            result = engine.query(QUERY)
        assert result.group.diameter == pytest.approx(baseline.group.diameter)
        assert (
            engine.metrics.counter("mck_worker_crashes_total").value(
                round="exact"
            )
            == 1.0
        )

    def test_retry_counters_recorded(self, engine):
        with faults.injected(
            "distributed.worker.answer", error=crash(), times=1
        ):
            engine.query(QUERY)
        assert (
            engine.metrics.counter("mck_worker_crashes_total").value(
                round="bound"
            )
            == 1.0
        )
        assert (
            engine.metrics.counter("mck_worker_retries_total").value(
                round="bound"
            )
            == 1.0
        )


class TestAbandonment:
    def test_persistent_crasher_abandoned_query_completes(self, engine):
        baseline = engine.query(QUERY)
        with faults.injected(
            "distributed.worker.answer",
            error=crash(0),
            times=None,
            match=lambda worker_id, **_: worker_id == 0,
        ):
            result = engine.query(QUERY)
        # Worker 0 died every attempt in both rounds: (1 + retries) crashes
        # per round, `max_worker_retries` respawns per round.
        per_round = engine.max_worker_retries + 1
        assert result.worker_crashes == 2 * per_round
        assert result.worker_retries == 2 * engine.max_worker_retries
        assert result.group is not None
        # Survivors still bound the answer: no worse than 2x the paper's
        # target would require, and never infeasible.
        assert result.group.diameter >= baseline.group.diameter - 1e-9

    def test_all_workers_crashing_falls_back_to_central(self, engine):
        baseline = engine.query(QUERY)
        with faults.injected(
            "distributed.worker.answer", error=crash(), times=None
        ):
            result = engine.query(QUERY)
        # Every bound-round worker abandoned -> no local bound -> the
        # coordinator solves centrally and still returns the optimum.
        assert result.fell_back_to_central
        assert result.group.diameter == pytest.approx(baseline.group.diameter)

    def test_zero_retry_budget(self, grid_dataset):
        engine = DistributedMCKEngine(
            grid_dataset,
            n_workers=4,
            max_worker_retries=0,
            metrics=MetricsRegistry(),
            retry_backoff_seconds=0.0,
        )
        with faults.injected(
            "distributed.worker.answer", error=crash(), times=1
        ):
            result = engine.query(QUERY)
        assert result.worker_crashes == 1
        assert result.worker_retries == 0
        assert result.group is not None


class TestBackoff:
    def test_backoff_is_capped_exponential(self, grid_dataset):
        sleeps = []
        engine = DistributedMCKEngine(
            grid_dataset,
            n_workers=2,
            max_worker_retries=4,
            retry_backoff_seconds=0.1,
            retry_backoff_cap=0.3,
            sleep=sleeps.append,
            metrics=MetricsRegistry(),
        )
        with faults.injected(
            "distributed.worker.answer",
            error=crash(0),
            times=4,
            match=lambda worker_id, **_: worker_id == 0,
        ):
            engine.query(QUERY)
        assert sleeps[:4] == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.3),
            pytest.approx(0.3),
        ]
