"""Tests for the ASGK / ASGKa Dia-CoSKQ adaptations."""

import pytest

from repro.baselines.asgk import asgk, asgka, dia_coskq_exact, dia_coskq_greedy
from repro.baselines.bruteforce import brute_force_optimal
from repro.core.objects import Dataset
from repro.core.query import compile_query
from tests.conftest import feasible_query, make_random_dataset


class TestAsgkExactness:
    @pytest.mark.parametrize("seed", range(12))
    def test_asgk_matches_optimum(self, seed):
        """The exact adaptation is optimal overall (the optimal group
        contains a t_inf holder, and the inner solver is exact)."""
        ds = make_random_dataset(seed, n=30)
        query = feasible_query(ds, seed, 4)
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx)
        got = asgk(ctx)
        assert got.covers(ds, query)
        assert got.diameter == pytest.approx(opt.diameter, abs=1e-9)


class TestAsgkaApproximation:
    @pytest.mark.parametrize("seed", range(12))
    def test_asgka_feasible_and_bounded(self, seed):
        ds = make_random_dataset(seed + 30, n=30)
        query = feasible_query(ds, seed, 4)
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx)
        got = asgka(ctx)
        assert got.covers(ds, query)
        assert got.diameter >= opt.diameter - 1e-9
        # Greedy nearest-per-keyword around t_inf holders is a
        # 2-approximation by the same argument as Theorem 2.
        assert got.diameter <= 2.0 * opt.diameter + 1e-9

    def test_single_object_cover(self):
        ds = Dataset.from_records([(0, 0, ["a", "b"]), (5, 0, ["a"])])
        ctx = compile_query(ds, ["a", "b"])
        assert asgka(ctx).diameter == 0.0
        assert asgk(ctx).diameter == 0.0


class TestDiaCoskqSolvers:
    @pytest.fixture
    def ctx(self):
        ds = Dataset.from_records(
            [
                (0, 0, ["q"]),      # row of query point
                (1, 0, ["a"]),
                (0, 2, ["b"]),
                (10, 10, ["a", "b"]),
            ]
        )
        return compile_query(ds, ["q", "a", "b"])

    def test_exact_minimises_including_query_point(self, ctx):
        query_row = ctx.row_of(0)
        required = ctx.full_mask & ~ctx.masks[query_row]
        rows, cost = dia_coskq_exact(ctx, query_row, required)
        assert rows is not None
        got_oids = sorted(ctx.relevant_ids[r] for r in rows)
        assert got_oids == [1, 2]
        # Cost = max pairwise over {query, 1, 2} = dist(1, 2) = sqrt(5).
        assert cost == pytest.approx(5**0.5)

    def test_exact_empty_requirement(self, ctx):
        rows, cost = dia_coskq_exact(ctx, 0, 0)
        assert rows == [] and cost == 0.0

    def test_greedy_feasible(self, ctx):
        query_row = ctx.row_of(0)
        required = ctx.full_mask & ~ctx.masks[query_row]
        rows, cost = dia_coskq_greedy(ctx, query_row, required)
        assert rows is not None
        union = 0
        for r in rows:
            union |= ctx.masks[r]
        assert union & required == required

    def test_greedy_cost_at_least_exact(self, ctx):
        query_row = ctx.row_of(0)
        required = ctx.full_mask & ~ctx.masks[query_row]
        _rows_e, cost_e = dia_coskq_exact(ctx, query_row, required)
        _rows_g, cost_g = dia_coskq_greedy(ctx, query_row, required)
        assert cost_g >= cost_e - 1e-9
