"""Tests for the VirbR exact baseline."""

import pytest

from repro.baselines.bruteforce import brute_force_optimal
from repro.baselines.virbr import virbr
from repro.core.common import Deadline
from repro.core.objects import Dataset
from repro.core.query import compile_query
from repro.exceptions import AlgorithmTimeout
from tests.conftest import feasible_query, make_random_dataset


class TestOptimality:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_bruteforce(self, seed):
        ds = make_random_dataset(seed, n=35)
        query = feasible_query(ds, seed, 4)
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx)
        got = virbr(ctx)
        assert got.covers(ds, query)
        assert got.diameter == pytest.approx(opt.diameter, abs=1e-9)

    def test_deep_tree(self):
        """Force multiple tree levels by shrinking the fanout indirectly:
        more objects than one node holds."""
        ds = make_random_dataset(50, n=150, vocab="abc")
        query = feasible_query(ds, 50, 3)
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx)
        got = virbr(ctx)
        assert got.diameter == pytest.approx(opt.diameter, abs=1e-9)


class TestRedundantNodeCase:
    def test_needs_redundant_node_combination(self):
        """A node whose bitmap covers both keywords but whose objects are
        far apart, next to a node holding the close partner: dropping
        'redundant' members would miss the optimum."""
        records = []
        # Cluster A: an 'a'-holder and a 'b'-holder 1 apart (the answer).
        records.append((0.0, 0.0, ["a"]))
        records.append((1.0, 0.0, ["b"]))
        # Cluster B far away: single object with both keywords (diameter 0
        # would win; remove that by splitting keywords widely).
        records.append((500.0, 500.0, ["a"]))
        records.append((800.0, 800.0, ["b"]))
        ds = Dataset.from_records(records)
        ctx = compile_query(ds, ["a", "b"])
        got = virbr(ctx)
        assert got.diameter == pytest.approx(1.0)


class TestShortcuts:
    def test_single_object_cover(self):
        ds = Dataset.from_records([(0, 0, ["a", "b"]), (9, 9, ["a"])])
        ctx = compile_query(ds, ["a", "b"])
        got = virbr(ctx)
        assert got.object_ids == (0,)
        assert got.diameter == 0.0

    def test_stats_recorded(self):
        ds = make_random_dataset(7, n=30)
        ctx = compile_query(ds, feasible_query(ds, 7, 3))
        got = virbr(ctx)
        assert got.stats["groups_evaluated"] >= 1


class TestDeadline:
    def test_timeout(self):
        ds = make_random_dataset(8, n=60)
        ctx = compile_query(ds, feasible_query(ds, 8, 5))
        with pytest.raises(AlgorithmTimeout):
            virbr(ctx, Deadline("VirbR", -1.0))
