"""Tests for the brute-force optimal solver (the test suite's ground truth
itself needs checking on instances small enough to verify by hand)."""

import itertools
import math

import pytest

from repro.baselines.bruteforce import brute_force_optimal
from repro.core.objects import Dataset
from repro.core.query import compile_query
from tests.conftest import feasible_query, make_random_dataset


def _optimal_by_enumeration(ds, query):
    """Fully independent optimum: try every subset of objects."""
    best = math.inf
    best_set = None
    objs = list(ds)
    for size in range(1, len(objs) + 1):
        for combo in itertools.combinations(objs, size):
            covered = frozenset().union(*(o.keywords for o in combo))
            if not set(query) <= covered:
                continue
            diam = max(
                (
                    math.hypot(a.x - b.x, a.y - b.y)
                    for a, b in itertools.combinations(combo, 2)
                ),
                default=0.0,
            )
            if diam < best:
                best = diam
                best_set = combo
    assert best_set is not None
    return best


class TestAgainstIndependentEnumeration:
    @pytest.mark.parametrize("seed", range(8))
    def test_small_instances(self, seed):
        ds = make_random_dataset(seed, n=10, vocab="abcd")
        query = feasible_query(ds, seed, 3)
        ctx = compile_query(ds, query)
        got = brute_force_optimal(ctx)
        want = _optimal_by_enumeration(ds, query)
        assert got.diameter == pytest.approx(want, abs=1e-9)


class TestHandCrafted:
    def test_obvious_pair(self):
        ds = Dataset.from_records(
            [(0, 0, ["a"]), (1, 0, ["b"]), (100, 0, ["a"]), (101, 0, ["b"])]
        )
        ctx = compile_query(ds, ["a", "b"])
        group = brute_force_optimal(ctx)
        assert group.diameter == pytest.approx(1.0)

    def test_single_object(self):
        ds = Dataset.from_records([(5, 5, ["a", "b"]), (0, 0, ["a"])])
        ctx = compile_query(ds, ["a", "b"])
        group = brute_force_optimal(ctx)
        assert group.object_ids == (0,)
        assert group.diameter == 0.0

    def test_three_way_group(self):
        ds = Dataset.from_records(
            [
                (0, 0, ["a"]),
                (1, 0, ["b"]),
                (0.5, 0.8, ["c"]),
                (100, 100, ["a", "b"]),
                (50, 50, ["a"]),
                (53, 50, ["b"]),
                (50, 53, ["c"]),
            ]
        )
        ctx = compile_query(ds, ["a", "b", "c"])
        group = brute_force_optimal(ctx)
        assert set(group.object_ids) == {0, 1, 2}

    def test_result_is_feasible(self):
        ds = make_random_dataset(3, n=20)
        query = feasible_query(ds, 3, 4)
        ctx = compile_query(ds, query)
        group = brute_force_optimal(ctx)
        assert group.covers(ds, query)
