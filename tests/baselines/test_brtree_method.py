"""Tests for the original full-tree bR*-tree method of [21]."""

import pytest

from repro.baselines.brtree_method import brtree_method
from repro.baselines.bruteforce import brute_force_optimal
from repro.baselines.virbr import virbr
from repro.core.common import Deadline
from repro.core.objects import Dataset
from repro.core.query import compile_query
from repro.exceptions import AlgorithmTimeout
from tests.conftest import feasible_query, make_random_dataset


class TestOptimality:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_bruteforce(self, seed):
        ds = make_random_dataset(seed, n=30)
        query = feasible_query(ds, seed, 3)
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx)
        got = brtree_method(ctx)
        assert got.covers(ds, query)
        assert got.diameter == pytest.approx(opt.diameter, abs=1e-9)

    def test_agrees_with_virbr(self):
        ds = make_random_dataset(42, n=40)
        query = feasible_query(ds, 42, 4)
        ctx = compile_query(ds, query)
        assert brtree_method(ctx).diameter == pytest.approx(
            virbr(ctx).diameter, abs=1e-9
        )


class TestFullTreeSpecifics:
    def test_irrelevant_objects_never_selected(self):
        """The full tree contains objects with no query keywords; the
        result must never include them."""
        ds = Dataset.from_records(
            [
                (0, 0, ["a"]),
                (1, 0, ["b"]),
                (0.5, 0.5, ["noise"]),
                (0.4, 0.1, ["junk"]),
            ]
        )
        ctx = compile_query(ds, ["a", "b"])
        got = brtree_method(ctx)
        assert set(got.object_ids) == {0, 1}

    def test_single_object_cover(self):
        ds = Dataset.from_records([(0, 0, ["a", "b"]), (9, 9, ["c"])])
        ctx = compile_query(ds, ["a", "b"])
        got = brtree_method(ctx)
        assert got.object_ids == (0,)
        assert got.diameter == 0.0

    def test_stats_recorded(self):
        ds = make_random_dataset(3, n=25)
        ctx = compile_query(ds, feasible_query(ds, 3, 3))
        got = brtree_method(ctx)
        assert got.stats["groups_evaluated"] >= 1


class TestDeadline:
    def test_timeout(self):
        ds = make_random_dataset(5, n=60)
        ctx = compile_query(ds, feasible_query(ds, 5, 5))
        with pytest.raises(AlgorithmTimeout):
            brtree_method(ctx, Deadline("bR", -1.0))
