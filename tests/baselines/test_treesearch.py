"""Unit tests of the shared tree-combination search engine.

These pin the subtle node-combination semantics with hand-built trees —
in particular the regression where a combination must keep growing past
first bitmap coverage (a node's bitmap may promise a keyword whose only
*close* holder lives in a sibling node).
"""

import pytest

from repro.baselines._treesearch import TreeCombinationSearch
from repro.core.common import Deadline
from repro.index.rstar import LeafEntry, Node


def _leaf(entries):
    node = Node(0)
    for item, x, y in entries:
        node.add(LeafEntry(item, x, y))
    return node


def _root(children):
    root = Node(1)
    for child in children:
        root.add(child)
    return root


def _search(root, item_masks, full_mask):
    node_masks = {}

    def node_mask(node):
        key = id(node)
        if key not in node_masks:
            mask = 0
            if node.is_leaf:
                for e in node.entries:
                    mask |= item_masks[e.item]
            else:
                for child in node.entries:
                    mask |= node_mask(child)
            node_masks[key] = mask
        return node_masks[key]

    search = TreeCombinationSearch(
        root=root,
        node_mask=node_mask,
        item_mask=lambda item: item_masks[item],
        full_mask=full_mask,
        deadline=Deadline.unlimited("test"),
    )
    search.run()
    return search


class TestCoverageIsNotTermination:
    def test_optimal_spans_covering_node_and_sibling(self):
        """Regression: L1's bitmap covers {a, b} alone, but the close 'b'
        holder lives in L2; the combination {L1, L2} must be explored."""
        # L1: a@(0,0), b@(50,0)  -> within-L1 best diameter 50.
        # L2: b@(1,0)            -> cross pair {a@(0,0), b@(1,0)} diam 1.
        l1 = _leaf([("a1", 0.0, 0.0), ("b_far", 50.0, 0.0)])
        l2 = _leaf([("b_near", 1.0, 0.0)])
        root = _root([l1, l2])
        masks = {"a1": 0b01, "b_far": 0b10, "b_near": 0b10}
        search = _search(root, masks, 0b11)
        assert search.best_diameter == pytest.approx(1.0)
        assert sorted(search.best_items) == ["a1", "b_near"]

    def test_three_way_span(self):
        """Both keywords promised by the first node; optimal uses objects
        from the second and third."""
        l1 = _leaf([("a_far", 0.0, 100.0), ("b_far", 100.0, 100.0)])
        l2 = _leaf([("a_near", 0.0, 0.0)])
        l3 = _leaf([("b_near", 2.0, 0.0)])
        root = _root([l1, l2, l3])
        masks = {"a_far": 0b01, "b_far": 0b10, "a_near": 0b01, "b_near": 0b10}
        search = _search(root, masks, 0b11)
        assert search.best_diameter == pytest.approx(2.0)


class TestBasicSearch:
    def test_single_leaf_root(self):
        root = _leaf([("x", 0.0, 0.0), ("y", 3.0, 4.0)])
        search = _search(root, {"x": 0b01, "y": 0b10}, 0b11)
        assert search.best_diameter == pytest.approx(5.0)

    def test_uncoverable_pool(self):
        root = _leaf([("x", 0.0, 0.0)])
        search = _search(root, {"x": 0b01}, 0b11)
        assert search.best_diameter == float("inf")
        assert search.best_items == []

    def test_distance_pruning_keeps_optimum(self):
        """Far-apart nodes are pruned only when they cannot beat the
        incumbent; the optimal pair must survive."""
        l1 = _leaf([("a1", 0.0, 0.0)])
        l2 = _leaf([("b1", 1.0, 0.0)])
        l3 = _leaf([("a2", 1000.0, 0.0), ("b2", 1001.0, 0.0)])
        root = _root([l1, l2, l3])
        masks = {"a1": 0b01, "b1": 0b10, "a2": 0b01, "b2": 0b10}
        search = _search(root, masks, 0b11)
        assert search.best_diameter == pytest.approx(1.0)

    def test_size_cap_allows_m_nodes(self):
        # Three keywords spread over three singleton leaves.
        l1 = _leaf([("a", 0.0, 0.0)])
        l2 = _leaf([("b", 1.0, 0.0)])
        l3 = _leaf([("c", 0.0, 1.0)])
        root = _root([l1, l2, l3])
        masks = {"a": 0b001, "b": 0b010, "c": 0b100}
        search = _search(root, masks, 0b111)
        assert search.best_diameter == pytest.approx(2**0.5)
