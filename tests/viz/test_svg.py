"""Tests for the SVG rendering helpers."""

import pytest

from repro.core.engine import MCKEngine
from repro.core.objects import Dataset
from repro.geometry.circle import Circle
from repro.viz.svg import SvgCanvas, render_result


@pytest.fixture
def ds():
    return Dataset.from_records(
        [
            (0.0, 0.0, ["a"]),
            (10.0, 0.0, ["b"]),
            (5.0, 8.0, ["c"]),
            (100.0, 100.0, ["noise"]),
        ]
    )


class TestSvgCanvas:
    def test_valid_document(self):
        canvas = SvgCanvas((0, 0, 10, 10))
        canvas.add_point(5, 5)
        svg = canvas.to_svg()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "<circle" in svg

    def test_y_axis_flipped(self):
        canvas = SvgCanvas((0, 0, 10, 10), width=100, height=100, margin=0)
        canvas.add_point(0, 0)
        canvas.add_point(0, 10)
        low, high = canvas._elements
        # World y=0 maps to the bottom (larger SVG y) of the viewport.
        assert 'cy="100.00"' in low
        assert 'cy="0.00"' in high

    def test_circle_scaled(self):
        canvas = SvgCanvas((0, 0, 10, 10), width=120, height=120, margin=10)
        canvas.add_circle(Circle(5, 5, 2))
        assert 'r="20.00"' in canvas._elements[0]  # scale = 100/10

    def test_label_escaped(self):
        canvas = SvgCanvas((0, 0, 1, 1))
        canvas.add_label(0.5, 0.5, "<b> & stuff")
        assert "&lt;b&gt; &amp; stuff" in canvas._elements[0]

    def test_segment(self):
        canvas = SvgCanvas((0, 0, 1, 1))
        canvas.add_segment((0, 0), (1, 1))
        assert "<line" in canvas._elements[0]

    def test_save(self, tmp_path):
        canvas = SvgCanvas((0, 0, 1, 1))
        canvas.add_point(0.5, 0.5)
        path = tmp_path / "out.svg"
        canvas.save(path)
        assert path.read_text().startswith("<svg")

    def test_degenerate_bounds(self):
        canvas = SvgCanvas((5, 5, 5, 5))
        canvas.add_point(5, 5)
        assert "<circle" in canvas.to_svg()


class TestRenderResult:
    def test_renders_group_and_circle(self, ds):
        engine = MCKEngine(ds)
        group = engine.query(["a", "b", "c"], algorithm="EXACT")
        svg = render_result(ds, group, query_keywords=["a", "b", "c"])
        assert svg.count("#d93025") == len(group) + 1  # group dots + circle
        assert "#dadce0" in svg  # the noise object

    def test_relevant_objects_highlighted(self, ds):
        engine = MCKEngine(ds)
        group = engine.query(["a", "b"], algorithm="EXACT")
        svg = render_result(ds, group, query_keywords=["a", "b", "c"])
        assert "#1a73e8" in svg  # the 'c' holder is relevant but not chosen

    def test_tooltips_present(self, ds):
        engine = MCKEngine(ds)
        group = engine.query(["a", "b"], algorithm="EXACT")
        svg = render_result(ds, group, query_keywords=["a", "b"])
        assert "<title>" in svg
