"""Property-based tests for the extensions and the data substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import MCKEngine
from repro.core.objects import Dataset
from repro.datasets.utm import latlon_to_utm
from repro.distributed import DistributedMCKEngine
from repro.extensions import top_k_mck

TERMS = ["a", "b", "c", "d"]

coordinate = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
record = st.tuples(
    coordinate,
    coordinate,
    st.lists(st.sampled_from(TERMS), min_size=1, max_size=2, unique=True),
)


@st.composite
def instance(draw):
    records = draw(st.lists(record, min_size=6, max_size=25))
    present = sorted({t for _x, _y, kws in records for t in kws})
    if len(present) < 2:
        records.append((0.0, 0.0, [t for t in TERMS if t not in present][:1]))
        present = sorted({t for _x, _y, kws in records for t in kws})
    m = draw(st.integers(2, min(3, len(present))))
    query = draw(st.lists(st.sampled_from(present), min_size=m, max_size=m, unique=True))
    return Dataset.from_records(records), query


class TestDistributedProperties:
    @given(instance(), st.sampled_from([1, 4, 9]))
    @settings(max_examples=25, deadline=None)
    def test_distributed_equals_centralized(self, inst, n_workers):
        ds, query = inst
        central = MCKEngine(ds).query(query, algorithm="EXACT")
        result = DistributedMCKEngine(ds, n_workers=n_workers).query(query)
        assert math.isclose(
            result.group.diameter, central.diameter, rel_tol=1e-9, abs_tol=1e-9
        )

    @given(instance())
    @settings(max_examples=20, deadline=None)
    def test_accounting_sane(self, inst):
        ds, query = inst
        result = DistributedMCKEngine(ds, n_workers=4).query(query)
        assert result.messages >= 4
        assert result.bytes_shipped > 0
        assert 0.0 <= result.makespan_seconds <= result.total_compute_seconds + 1e-9


class TestTopKProperties:
    @given(instance(), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_topk_invariants(self, inst, k):
        ds, query = inst
        groups = top_k_mck(ds, query, k=k)
        assert len(groups) <= k
        # Diameters are non-decreasing and groups pairwise disjoint.
        for a, b in zip(groups, groups[1:]):
            assert a.diameter <= b.diameter + 1e-9
        seen = set()
        for g in groups:
            assert g.covers(ds, query)
            assert not (seen & set(g.object_ids))
            seen.update(g.object_ids)

    @given(instance())
    @settings(max_examples=20, deadline=None)
    def test_top1_equals_exact(self, inst):
        ds, query = inst
        groups = top_k_mck(ds, query, k=1)
        central = MCKEngine(ds).query(query, algorithm="EXACT")
        assert len(groups) == 1
        assert math.isclose(
            groups[0].diameter, central.diameter, rel_tol=1e-9, abs_tol=1e-9
        )


class TestUtmProperties:
    @given(
        st.floats(min_value=-70.0, max_value=70.0),
        st.floats(min_value=-179.0, max_value=179.0),
        st.floats(min_value=0.001, max_value=0.05),
        st.floats(min_value=0.0, max_value=2 * math.pi),
    )
    @settings(max_examples=60, deadline=None)
    def test_local_distances_preserved(self, lat, lon, delta_deg, bearing):
        """Small displacements (a few km) keep Euclidean-UTM distance within
        0.2% of the WGS-84 ellipsoidal ground distance.

        (A spherical haversine oracle is NOT accurate enough here: the
        sphere's mean radius misstates meridional arcs near the equator by
        ~0.5%, more than UTM's own distortion.)
        """
        lat2 = lat + delta_deg * math.cos(bearing)
        lon2 = lon + delta_deg * math.sin(bearing)
        if not (-70.0 <= lat2 <= 70.0):
            return
        south = lat < 0.0
        e1, n1, zone = latlon_to_utm(lat, lon, south=south)
        e2, n2, _ = latlon_to_utm(lat2, lon2, zone=zone, south=south)
        d_utm = math.hypot(e1 - e2, n1 - n2)
        d_ground = _ellipsoidal_ground_distance(lat, lon, lat2, lon2)
        if d_ground < 1.0:
            return
        assert math.isclose(d_utm, d_ground, rel_tol=0.002)


def _ellipsoidal_ground_distance(lat1, lon1, lat2, lon2):
    """Local WGS-84 metric at the midpoint: exact to first order for
    displacements of a few kilometres."""
    a = 6378137.0
    e2 = 0.00669437999014
    phi = math.radians((lat1 + lat2) / 2.0)
    sin_phi = math.sin(phi)
    w = math.sqrt(1.0 - e2 * sin_phi * sin_phi)
    meridional = a * (1.0 - e2) / (w * w * w)
    prime_vertical = a / w
    d_phi = math.radians(lat2 - lat1)
    d_lam = math.radians(lon2 - lon1)
    return math.hypot(meridional * d_phi, prime_vertical * math.cos(phi) * d_lam)
