"""Property-based tests for the index substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.grid import UniformGrid
from repro.index.mbr import mbr_of_points, min_dist, max_dist
from repro.index.rstar import RStarTree

import numpy as np

# Clamp magnitudes below 1e-9 to zero: the library's squared-distance
# predicates legitimately underflow on denormal-range coordinates, which
# cannot occur in metre-scale geo data.
coordinate = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False).map(
    lambda v: 0.0 if abs(v) < 1e-9 else v
)
point = st.tuples(coordinate, coordinate)


class TestRStarProperties:
    @given(st.lists(point, min_size=0, max_size=120), st.integers(4, 16))
    @settings(max_examples=40, deadline=None)
    def test_bulk_load_preserves_items(self, pts, fanout):
        records = [(i, x, y) for i, (x, y) in enumerate(pts)]
        tree = RStarTree.bulk_load(records, max_entries=fanout)
        assert sorted(e.item for e in tree.iter_leaf_entries()) == list(
            range(len(pts))
        )
        if pts:
            tree.check_invariants()

    @given(st.lists(point, min_size=1, max_size=60), point, st.floats(0, 500).map(lambda v: 0.0 if v < 1e-9 else v))
    @settings(max_examples=50, deadline=None)
    def test_range_circle_exact(self, pts, centre, radius):
        records = [(i, x, y) for i, (x, y) in enumerate(pts)]
        tree = RStarTree.bulk_load(records, max_entries=8)
        got = {e.item for e in tree.range_circle(centre[0], centre[1], radius)}
        expected = {
            i
            for i, (x, y) in enumerate(pts)
            if math.hypot(x - centre[0], y - centre[1]) <= radius
        }
        assert got == expected

    @given(st.lists(point, min_size=1, max_size=60), point)
    @settings(max_examples=50, deadline=None)
    def test_nearest_is_nearest(self, pts, query):
        records = [(i, x, y) for i, (x, y) in enumerate(pts)]
        tree = RStarTree.bulk_load(records, max_entries=8)
        got = tree.nearest(query[0], query[1])
        best = min(math.hypot(x - query[0], y - query[1]) for x, y in pts)
        assert got is not None
        assert math.isclose(
            math.hypot(got.x - query[0], got.y - query[1]),
            best,
            rel_tol=1e-12,
            abs_tol=1e-9,
        )

    @given(st.lists(point, min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_incremental_insert_invariants(self, pts):
        tree = RStarTree(max_entries=4)
        for i, (x, y) in enumerate(pts):
            tree.insert(i, x, y)
        tree.check_invariants()
        assert len(tree) == len(pts)


class TestMBRProperties:
    @given(
        st.lists(point, min_size=1, max_size=20),
        st.lists(point, min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_min_max_dist_bound_point_pairs(self, pts_a, pts_b):
        a = mbr_of_points(pts_a)
        b = mbr_of_points(pts_b)
        lo = min_dist(a, b)
        hi = max_dist(a, b)
        for p in pts_a:
            for q in pts_b:
                d = math.hypot(p[0] - q[0], p[1] - q[1])
                assert lo - 1e-9 <= d <= hi + 1e-9


class TestGridProperties:
    @given(st.lists(point, min_size=0, max_size=100), point, st.floats(0, 300).map(lambda v: 0.0 if v < 1e-9 else v))
    @settings(max_examples=50, deadline=None)
    def test_disc_query_exact(self, pts, centre, radius):
        coords = np.array(pts, dtype=float).reshape(len(pts), 2)
        grid = UniformGrid(coords)
        got = set(grid.rows_within(centre[0], centre[1], radius).tolist())
        expected = {
            i
            for i, (x, y) in enumerate(pts)
            if math.hypot(x - centre[0], y - centre[1])
            <= radius * (1 + 1e-12) + 1e-18
        }
        assert got == expected
