"""Property-based tests of Procedure circleScan against a rotation oracle."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circlescan import circle_scan, circle_scan_candidates
from repro.core.objects import Dataset
from repro.core.query import compile_query

TERMS = ["a", "b", "c"]

coordinate = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)
record = st.tuples(
    coordinate,
    coordinate,
    st.lists(st.sampled_from(TERMS), min_size=1, max_size=2, unique=True),
)


@st.composite
def scan_instance(draw):
    records = draw(st.lists(record, min_size=3, max_size=14))
    present = sorted({t for _x, _y, kws in records for t in kws})
    if len(present) < 2:
        records.append((0.0, 0.0, [t for t in TERMS if t not in present][:1]))
        present = sorted({t for _x, _y, kws in records for t in kws})
    query = present[: draw(st.integers(2, len(present)))]
    ds = Dataset.from_records(records)
    ctx = compile_query(ds, query)
    pole = draw(st.integers(0, len(ctx.relevant_ids) - 1))
    diameter = draw(st.floats(min_value=0.05, max_value=40.0))
    return ctx, pole, diameter


def _oracle(ctx, pole, diameter, samples=720):
    """Dense rotation sampling: does some position cover the query?

    Sampling misses events narrower than the step, so the property tests
    only assert agreement away from knife-edge configurations.
    """
    px, py = ctx.location_of_row(pole)
    r = diameter / 2.0
    full = ctx.full_mask
    coords = ctx.coords
    masks = ctx.masks
    for k in range(samples):
        theta = 2 * math.pi * k / samples
        cx, cy = px + r * math.cos(theta), py + r * math.sin(theta)
        union = 0
        for row in range(len(masks)):
            if math.hypot(coords[row, 0] - cx, coords[row, 1] - cy) <= r + 1e-9:
                union |= masks[row]
                if union == full:
                    return True
    return False


class TestScanAgainstOracle:
    @given(scan_instance())
    @settings(max_examples=60, deadline=None)
    def test_scan_success_implies_oracle_or_boundary(self, inst):
        ctx, pole, diameter = inst
        result = circle_scan(ctx, pole, diameter)
        oracle = _oracle(ctx, pole, diameter)
        if result is not None:
            # The scan found a covering position; verify it directly.
            rows, theta = result
            assert ctx.covers(rows)
            px, py = ctx.location_of_row(pole)
            r = diameter / 2.0
            cx, cy = px + r * math.cos(theta), py + r * math.sin(theta)
            for row in rows:
                x, y = ctx.location_of_row(row)
                assert math.hypot(x - cx, y - cy) <= r + 1e-6
        else:
            # The scan failed; the oracle may only succeed within float
            # noise of a boundary, i.e. with a slightly larger diameter.
            assert not oracle or circle_scan(ctx, pole, diameter * (1 + 1e-6))


class TestScanMonotonicity:
    @given(scan_instance())
    @settings(max_examples=60, deadline=None)
    def test_property1_monotone(self, inst):
        """Property 1: success at D implies success at 2D."""
        ctx, pole, diameter = inst
        if circle_scan(ctx, pole, diameter) is not None:
            assert circle_scan(ctx, pole, diameter * 2.0) is not None


class TestCandidates:
    @given(scan_instance())
    @settings(max_examples=60, deadline=None)
    def test_candidates_consistent_with_scan(self, inst):
        ctx, pole, diameter = inst
        hit = circle_scan(ctx, pole, diameter)
        candidates = circle_scan_candidates(ctx, pole, diameter)
        if hit is None:
            assert candidates == []
        else:
            assert candidates
            hit_set = set(hit[0])
            assert any(hit_set <= set(c) for c in candidates)

    @given(scan_instance())
    @settings(max_examples=40, deadline=None)
    def test_every_candidate_covers(self, inst):
        ctx, pole, diameter = inst
        for cand in circle_scan_candidates(ctx, pole, diameter):
            assert ctx.covers(cand)
