"""Property: a degraded (anytime) answer is always feasible and honest.

Whatever poll the deadline expires at, a degraded answer must (1) cover
every query keyword and (2) respect the approximation ratio its quality
tag certifies, measured against the brute-force optimum.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import brute_force_optimal
from repro.core.common import (
    QUALITY_APPROX,
    QUALITY_EXACT,
    QUALITY_GREEDY,
    QUALITY_PARTIAL,
    quality_ratio_bound,
)
from repro.core.engine import MCKEngine
from repro.core.query import compile_query
from repro.core.skeca import DEFAULT_EPSILON
from repro.exceptions import AlgorithmTimeout
from repro.testing import faults

from .test_prop_algorithms import instance

ALL_QUALITIES = (QUALITY_EXACT, QUALITY_APPROX, QUALITY_GREEDY, QUALITY_PARTIAL)


@given(
    instance(),
    st.sampled_from(["GKG", "SKECa", "SKECa+", "EXACT"]),
    st.integers(min_value=1, max_value=12),
)
@settings(max_examples=60, deadline=None)
def test_degraded_answer_feasible_and_within_tagged_bound(
    inst, algorithm, expire_after
):
    ds, query = inst
    engine = MCKEngine(ds)
    faults.reset()  # hypothesis reuses one test-function invocation
    try:
        with faults.injected(
            "core.deadline.clock", skew=1e12, after=expire_after, times=None
        ):
            try:
                group = engine.query(
                    query,
                    algorithm=algorithm,
                    timeout=3600.0,
                    degrade_on_timeout=True,
                )
            except AlgorithmTimeout as err:
                # Expired before anything feasible was offered; the raise
                # itself must then carry no incumbent.
                assert err.incumbent is None
                assume(False)  # nothing further to check on this example
    finally:
        faults.reset()

    assert group.covers(ds, query), "degraded answer must stay feasible"
    assert group.quality in ALL_QUALITIES

    if group.degraded:
        opt = brute_force_optimal(compile_query(ds, query)).diameter
        bound = quality_ratio_bound(group.quality, DEFAULT_EPSILON)
        if math.isinf(bound):
            return  # 'partial' certifies feasibility only
        if opt <= 0.0:
            assert group.diameter <= 1e-9
        else:
            assert group.diameter <= bound * opt + 1e-6, (
                f"{algorithm} degraded answer {group.diameter:.6g} breaks "
                f"its {group.quality} bound ({bound:.4f} x {opt:.6g})"
            )
