"""Properties of the sharded live store.

For ANY interleaving of inserts, deletes and queries, and ANY shard
count, :class:`~repro.live.sharded.ShardedLiveStore` must behave like a
plain model plus its documented routing rules:

1. **Content equivalence** — the union of per-shard live sets equals a
   brute-force model of the surviving records.
2. **Routing invariants** — every oid lives inside its birth shard's
   disjoint stride range ``[shard * stride, (shard + 1) * stride)``, and
   the engine that holds it is the one owning the point's grid cell at
   bootstrap/insert time.
3. **Query equivalence** — an EXACT query returns exactly the best
   per-shard feasible group: its diameter equals the minimum over shards
   of the shard-local brute-force optimum (the store's documented
   semantics), ties broken by (diameter, sorted oids); infeasibility
   fires iff no shard can cover the keywords.
"""

from __future__ import annotations

import math
from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleQueryError
from repro.live.sharded import ShardedLiveStore

#: Bootstrap records fixing the grid extent (and seeding every corner so
#: partitioning has a non-degenerate extent for any shard count).
BOOT = [
    (0.0, 0.0, ["a"]),
    (20.0, 20.0, ["b"]),
    (20.0, 0.0, ["c"]),
    (0.0, 20.0, ["a", "c"]),
]

_keywords = st.lists(
    st.sampled_from("abcd"), min_size=1, max_size=2, unique=True
)

_op = st.one_of(
    st.tuples(
        st.just("insert"),
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        _keywords,
    ),
    st.tuples(st.just("delete"), st.integers(min_value=0, max_value=50)),
    st.tuples(st.just("query"), _keywords),
)


def _dist(p, q):
    return math.hypot(p[0] - q[0], p[1] - q[1])


def _brute_best(objects, keywords):
    """Shard-local brute force: min-diameter feasible group of <= m objects.

    Returns ``(diameter, sorted oids)`` or None when infeasible.
    ``objects`` is ``{oid: (x, y, frozenset(kws))}``.
    """
    keywords = list(dict.fromkeys(keywords))
    m = len(keywords)
    oids = sorted(objects)
    best = None
    for size in range(1, m + 1):
        for combo in combinations(oids, size):
            covered = set()
            for oid in combo:
                covered |= objects[oid][2]
            if not set(keywords) <= covered:
                continue
            pts = [objects[oid][:2] for oid in combo]
            diam = max(
                (_dist(p, q) for p, q in combinations(pts, 2)), default=0.0
            )
            key = (diam, tuple(combo))
            if best is None or key < best:
                best = key
    return best


class TestShardedStoreMatchesBruteForceTwin:
    @settings(max_examples=40, deadline=None)
    @given(
        n_shards=st.integers(min_value=1, max_value=5),
        ops=st.lists(_op, max_size=14),
    )
    def test_any_interleaving_any_shard_count(self, n_shards, ops):
        store = ShardedLiveStore(BOOT, n_shards=n_shards, auto_compact=False)
        #: The brute-force twin: oid -> (x, y, frozenset(keywords)).
        model = {}
        inserted = []  # oids in insert order, for delete targeting
        try:
            for shard, engine in enumerate(store.shards):
                for oid, x, y, kws in engine.dataset.records():
                    model[oid] = (x, y, frozenset(kws))
            for op in ops:
                if op[0] == "insert":
                    _, x, y, kws = op
                    oid = store.insert(x, y, kws)
                    model[oid] = (x, y, frozenset(kws))
                    inserted.append(oid)
                elif op[0] == "delete":
                    if not inserted:
                        continue
                    oid = inserted.pop(op[1] % len(inserted))
                    store.delete(oid)
                    del model[oid]
                else:
                    _, keywords = op
                    by_shard = {}
                    for oid, rec in model.items():
                        by_shard.setdefault(oid // store.oid_stride, {})[
                            oid
                        ] = rec
                    bests = [
                        b
                        for b in (
                            _brute_best(objs, keywords)
                            for objs in by_shard.values()
                        )
                        if b is not None
                    ]
                    if not bests:
                        try:
                            store.query(keywords, algorithm="EXACT")
                            assert False, "expected InfeasibleQueryError"
                        except InfeasibleQueryError:
                            continue
                    want_diam, _want_oids = min(bests)
                    got = store.query(keywords, algorithm="EXACT")
                    assert abs(got.diameter - want_diam) < 1e-9
                    covered = set()
                    for oid in got.object_ids:
                        covered |= model[oid][2]
                    assert set(keywords) <= covered

            # Content equivalence + routing invariants at the end.
            live = {}
            for shard, engine in enumerate(store.shards):
                lo = shard * store.oid_stride
                hi = (shard + 1) * store.oid_stride
                for oid, x, y, kws in engine.dataset.records():
                    assert lo <= oid < hi, (oid, shard)
                    assert store.shard_of(oid) == shard
                    live[oid] = (x, y, frozenset(kws))
            assert live == model
        finally:
            store.close()
