"""Property-based tests for the geometry substrate (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.geometry.circle import circle_from_three, circle_from_two
from repro.geometry.diameter import (
    diameter_batch,
    diameter_bruteforce,
    diameter_calipers,
)
from repro.geometry.hull import convex_hull, cross
from repro.geometry.mcc import minimum_covering_circle
from repro.geometry.point import dist
from repro.geometry.sweep import TWO_PI, angle_in_interval, coverage_interval

coordinate = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)
point = st.tuples(coordinate, coordinate)
points = st.lists(point, min_size=1, max_size=40)


class TestMCCProperties:
    @given(points)
    @settings(max_examples=80, deadline=None)
    def test_encloses_all_points(self, pts):
        circle = minimum_covering_circle(pts)
        for p in pts:
            assert dist(circle.center, p) <= circle.r + 1e-6 + 1e-9 * abs(circle.r)

    @given(st.lists(point, min_size=2, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_theorem4_lower_bound(self, pts):
        """√3/2 · ø(MCC) <= δ(G) <= ø(MCC) (Theorem 4)."""
        circle = minimum_covering_circle(pts)
        diam = diameter_bruteforce(pts)
        assert diam <= circle.diameter + 1e-6
        assert diam >= (math.sqrt(3) / 2) * circle.diameter - 1e-6

    @given(points, point)
    @settings(max_examples=50, deadline=None)
    def test_adding_point_never_shrinks(self, pts, extra):
        before = minimum_covering_circle(pts).r
        after = minimum_covering_circle(pts + [extra]).r
        assert after >= before - 1e-7 - 1e-9 * before


class TestDiameterProperties:
    @given(st.lists(point, min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_calipers_equals_bruteforce(self, pts):
        a = diameter_bruteforce(pts)
        b = diameter_calipers(pts)
        assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)

    @given(st.lists(point, min_size=2, max_size=30), st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_scaling_scales_diameter(self, pts, factor):
        base = diameter_bruteforce(pts)
        scaled = diameter_bruteforce([(x * factor, y * factor) for x, y in pts])
        assert math.isclose(scaled, base * factor, rel_tol=1e-9, abs_tol=1e-6)


# Adversarial point sets: the cases that break naive hull/caliper walks.
# Each strategy produces duplicates, exact collinearity, cocircularity or
# near-degenerate clusters — inputs where the farthest pair is ambiguous
# or the hull collapses.
_small = st.integers(min_value=-50, max_value=50)
_lattice_point = st.tuples(
    _small.map(float), _small.map(float)
)  # exact-arithmetic coordinates: duplicates and collinear runs are common


def _collinear_sets(draw):
    base = draw(st.tuples(coordinate, coordinate))
    dx = draw(st.floats(-100, 100, allow_nan=False))
    dy = draw(st.floats(-100, 100, allow_nan=False))
    ts = draw(st.lists(st.integers(-20, 20), min_size=2, max_size=25))
    return [(base[0] + t * dx, base[1] + t * dy) for t in ts]


def _cocircular_sets(draw):
    cx = draw(st.floats(-1e3, 1e3, allow_nan=False))
    cy = draw(st.floats(-1e3, 1e3, allow_nan=False))
    r = draw(st.floats(1e-3, 1e3, allow_nan=False))
    ks = draw(st.lists(st.integers(0, 359), min_size=2, max_size=25))
    return [
        (cx + r * math.cos(math.tau * k / 360.0), cy + r * math.sin(math.tau * k / 360.0))
        for k in ks
    ]


adversarial_points = st.one_of(
    st.lists(_lattice_point, min_size=1, max_size=30),
    st.composite(_collinear_sets)(),
    st.composite(_cocircular_sets)(),
    # Tight cluster with one far outlier: near-tied farthest pairs.
    st.lists(point, min_size=1, max_size=20).map(
        lambda pts: pts + [(p[0] + 1e-9, p[1] - 1e-9) for p in pts[:3]]
    ),
)


class TestDiameterAdversarial:
    @given(adversarial_points)
    @settings(max_examples=150, deadline=None)
    def test_calipers_equals_bruteforce_adversarial(self, pts):
        a = diameter_bruteforce(pts)
        b = diameter_calipers(pts)
        assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)

    @given(adversarial_points)
    @settings(max_examples=150, deadline=None)
    def test_batch_kernel_is_bit_identical_to_bruteforce(self, pts):
        """The columnar kernel computes the same squared-distance maxima
        as the scalar loop ((a-b)^2 is symmetric, max order-free), so its
        result must be bit-identical, not merely close."""
        a = diameter_bruteforce(pts)
        b = diameter_batch(np.asarray(pts, dtype=np.float64))
        assert a == b


class TestHullProperties:
    @given(st.lists(point, min_size=3, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_hull_contains_all_points(self, pts):
        hull = convex_hull(pts)
        if len(hull) < 3:
            return  # collinear degenerate case
        n = len(hull)
        for p in pts:
            for i in range(n):
                assert cross(hull[i], hull[(i + 1) % n], p) >= -1e-6

    @given(st.lists(point, min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_hull_vertices_subset_of_input(self, pts):
        input_set = {(float(x), float(y)) for x, y in pts}
        for v in convex_hull(pts):
            assert v in input_set


class TestCircleConstructions:
    @given(point, point)
    @settings(max_examples=60, deadline=None)
    def test_two_point_circle_diameter(self, a, b):
        c = circle_from_two(a, b)
        assert math.isclose(c.diameter, dist(a, b), rel_tol=1e-9, abs_tol=1e-12)

    @given(point, point, point)
    @settings(max_examples=80, deadline=None)
    def test_three_point_circle_equidistant(self, a, b, c):
        from repro.exceptions import GeometryError

        try:
            circle = circle_from_three(a, b, c)
        except GeometryError:
            return
        # Skip numerically ill-conditioned near-collinear triples.
        if circle.r > 1e7:
            return
        for p in (a, b, c):
            assert math.isclose(
                dist(circle.center, p), circle.r, rel_tol=1e-5, abs_tol=1e-6
            )


class TestSweepProperties:
    @given(
        point,
        st.floats(0.1, 100.0),
        st.floats(0.0, TWO_PI),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_interval_boundary_consistency(self, pole, diameter, angle, frac):
        """A point inside its coverage interval is geometrically inside
        the rotated circle, and vice versa."""
        d = frac * diameter
        p = (pole[0] + d * math.cos(angle), pole[1] + d * math.sin(angle))
        interval = coverage_interval(pole, diameter, p)
        assert interval is not None
        enter, exit_ = interval
        r = diameter / 2.0
        for k in range(8):
            theta = TWO_PI * k / 8
            cx = pole[0] + r * math.cos(theta)
            cy = pole[1] + r * math.sin(theta)
            geometric = math.hypot(p[0] - cx, p[1] - cy) <= r + 1e-9
            algebraic = angle_in_interval(theta, enter, exit_)
            # Allow disagreement only within float noise of the boundary.
            if geometric != algebraic:
                boundary_gap = abs(math.hypot(p[0] - cx, p[1] - cy) - r)
                assert boundary_gap < 1e-6 * max(1.0, diameter)
