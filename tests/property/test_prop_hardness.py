"""Property-based tests for the NP-hardness machinery."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardness.reduction import decide_3sat_via_mck, reduce_3sat_to_mck
from repro.hardness.threesat import ThreeSatFormula, dpll_satisfiable


@st.composite
def planted_satisfiable_formula(draw):
    """A 3-SAT formula guaranteed satisfiable: clauses are generated to be
    satisfied by a hidden planted assignment."""
    n_vars = draw(st.integers(3, 7))
    assignment = {v: draw(st.booleans()) for v in range(1, n_vars + 1)}
    n_clauses = draw(st.integers(1, 12))
    seed = draw(st.integers(0, 10_000))
    rng = random.Random(seed)
    clauses = []
    for _ in range(n_clauses):
        variables = rng.sample(range(1, n_vars + 1), 3)
        # Make at least the first literal true under the planted assignment.
        first = variables[0] if assignment[variables[0]] else -variables[0]
        rest = [v if rng.random() < 0.5 else -v for v in variables[1:]]
        clauses.append((first, *rest))
    return ThreeSatFormula(n_vars, tuple(clauses)), assignment


@st.composite
def random_formula(draw):
    n_vars = draw(st.integers(3, 6))
    n_clauses = draw(st.integers(1, 14))
    clauses = []
    for _ in range(n_clauses):
        variables = draw(
            st.lists(
                st.integers(1, n_vars), min_size=3, max_size=3, unique=True
            )
        )
        signs = draw(st.lists(st.booleans(), min_size=3, max_size=3))
        clauses.append(
            tuple(v if s else -v for v, s in zip(variables, signs))
        )
    return ThreeSatFormula(n_vars, tuple(clauses))


class TestPlantedInstances:
    @given(planted_satisfiable_formula())
    @settings(max_examples=25, deadline=None)
    def test_mck_finds_satisfiable(self, planted):
        formula, assignment = planted
        assert formula.evaluate(assignment), "planting broken"
        sat, model = decide_3sat_via_mck(formula)
        assert sat
        assert formula.evaluate(model)


class TestRandomInstances:
    @given(random_formula())
    @settings(max_examples=25, deadline=None)
    def test_mck_agrees_with_dpll(self, formula):
        sat_dpll, _ = dpll_satisfiable(formula)
        sat_mck, model = decide_3sat_via_mck(formula)
        assert sat_mck == sat_dpll
        if sat_mck:
            assert formula.evaluate(model)


class TestReductionGeometry:
    @given(random_formula())
    @settings(max_examples=25, deadline=None)
    def test_separation_margin(self, formula):
        """The decision threshold separates strictly: every cross pair is
        within the threshold, every antipodal pair strictly beyond it."""
        reduction = reduce_3sat_to_mck(formula)
        ds = reduction.dataset
        n = len(ds)
        for i in range(n):
            for j in range(i + 1, n):
                li = reduction.literal_of_object[i]
                lj = reduction.literal_of_object[j]
                d = math.hypot(
                    ds[i].x - ds[j].x, ds[i].y - ds[j].y
                )
                if abs(li) == abs(lj):
                    assert d > reduction.threshold + 1e-9
                else:
                    assert d <= reduction.threshold + 1e-9
