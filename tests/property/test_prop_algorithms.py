"""Property-based tests of the mCK algorithms on generated instances."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import brute_force_optimal
from repro.core.common import SQRT3_FACTOR
from repro.core.exact import exact
from repro.core.gkg import gkg
from repro.core.objects import Dataset
from repro.core.query import compile_query
from repro.core.skeca import skeca
from repro.core.skecaplus import skeca_plus

TERMS = ["a", "b", "c", "d", "e"]

coordinate = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)

record = st.tuples(
    coordinate,
    coordinate,
    st.lists(st.sampled_from(TERMS), min_size=1, max_size=3, unique=True),
)


@st.composite
def instance(draw):
    """A dataset plus a feasible query over it."""
    records = draw(st.lists(record, min_size=4, max_size=22))
    present = sorted({t for _x, _y, kws in records for t in kws})
    if len(present) < 2:
        # Force feasibility with a second keyword.
        records.append((0.0, 0.0, [t for t in TERMS if t not in present][:1]))
        present = sorted({t for _x, _y, kws in records for t in kws})
    m = draw(st.integers(min_value=2, max_value=min(4, len(present))))
    query = draw(
        st.lists(st.sampled_from(present), min_size=m, max_size=m, unique=True)
    )
    ds = Dataset.from_records(records)
    return ds, query


class TestExactIsOptimal:
    @given(instance())
    @settings(max_examples=50, deadline=None)
    def test_exact_matches_bruteforce(self, inst):
        ds, query = inst
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx)
        got = exact(ctx)
        assert math.isclose(got.diameter, opt.diameter, rel_tol=1e-9, abs_tol=1e-9)
        assert got.covers(ds, query)


class TestApproximationInvariants:
    @given(instance())
    @settings(max_examples=50, deadline=None)
    def test_gkg_bound(self, inst):
        ds, query = inst
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx).diameter
        group = gkg(ctx)
        assert group.covers(ds, query)
        assert group.diameter <= 2.0 * opt + 1e-9

    @given(instance(), st.sampled_from([0.01, 0.1, 0.25]))
    @settings(max_examples=50, deadline=None)
    def test_skeca_plus_bound(self, inst, epsilon):
        ds, query = inst
        ctx = compile_query(ds, query)
        opt = brute_force_optimal(ctx).diameter
        group = skeca_plus(ctx, epsilon=epsilon)
        assert group.covers(ds, query)
        assert group.diameter <= (SQRT3_FACTOR + epsilon) * opt + 1e-9

    @given(instance())
    @settings(max_examples=30, deadline=None)
    def test_skeca_and_plus_close(self, inst):
        ds, query = inst
        ctx = compile_query(ds, query)
        a = skeca(ctx, 0.01)
        b = skeca_plus(ctx, 0.01)
        alpha = max(a.stats.get("alpha", 0.0), b.stats.get("alpha", 0.0), 1e-9)
        if a.enclosing_circle is not None and b.enclosing_circle is not None:
            assert (
                abs(a.enclosing_circle.diameter - b.enclosing_circle.diameter)
                <= alpha + 1e-9
            )


class TestStructuralInvariants:
    @given(instance())
    @settings(max_examples=40, deadline=None)
    def test_group_size_at_most_m(self, inst):
        """Every returned minimal group needs at most m objects — EXACT
        and brute force prune redundant members."""
        ds, query = inst
        ctx = compile_query(ds, query)
        group = exact(ctx)
        assert 1 <= len(group) <= len(query)

    @given(instance())
    @settings(max_examples=40, deadline=None)
    def test_diameter_matches_reported(self, inst):
        """The reported diameter equals the recomputed diameter of the
        returned object set."""
        ds, query = inst
        ctx = compile_query(ds, query)
        for group in (gkg(ctx), skeca_plus(ctx), exact(ctx)):
            from repro.geometry.diameter import group_diameter

            actual = group_diameter(ds.location_of(o) for o in group.object_ids)
            assert math.isclose(
                group.diameter, actual, rel_tol=1e-9, abs_tol=1e-9
            ), group.algorithm
