"""Crash/failover properties of the replication subsystem.

For ANY interleaving of inserts, deletes, replica syncs, bootstrap
checkpoints and **primary kills at arbitrary points**, a replication
group must:

1. never lose an acknowledged write (flush-before-ack + promotion of the
   most caught-up replica + draining the dead primary's shipped log);
2. end up answering all five algorithms identically to a never-crashed
   single-engine twin holding the same surviving records;
3. reopen from disk (epoch fencing history + bootstrap segments + WAL
   tails) into exactly the same live set.
"""

from __future__ import annotations

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.live import LiveMCKEngine
from repro.replication import ReplicationGroup

SEED = [
    (0, 0.0, 0.0, ["a"]),
    (1, 8.0, 8.0, ["b"]),
    (2, 16.0, 0.0, ["c", "a"]),
    (3, 0.0, 16.0, ["b", "c"]),
]

ALGORITHMS = ["GKG", "SKEC", "SKECa", "SKECa+", "EXACT"]

_keywords = st.lists(
    st.sampled_from("abcd"), min_size=1, max_size=2, unique=True
)

_op = st.one_of(
    st.tuples(
        st.just("insert"),
        st.floats(min_value=0.0, max_value=16.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=16.0, allow_nan=False),
        _keywords,
    ),
    st.tuples(st.just("delete"), st.integers(min_value=0, max_value=50)),
    st.tuples(st.just("sync")),
    st.tuples(st.just("checkpoint")),
    st.tuples(st.just("crash")),
)


class TestFailoverParity:
    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(_op, max_size=12))
    def test_any_interleaving_of_mutations_and_kills(self, ops):
        with tempfile.TemporaryDirectory() as tmp:
            group = ReplicationGroup(
                SEED, dir=tmp, n_replicas=1, respawn_backoff=0.0
            )
            model = {oid: (x, y, frozenset(kw)) for oid, x, y, kw in SEED}
            inserted = []
            try:
                for op in ops:
                    if op[0] == "insert":
                        _, x, y, kws = op
                        oid = group.insert(x, y, kws)  # acked => durable
                        model[oid] = (x, y, frozenset(kws))
                        inserted.append(oid)
                    elif op[0] == "delete":
                        if not inserted:
                            continue
                        oid = inserted.pop(op[1] % len(inserted))
                        group.delete(oid)
                        del model[oid]
                    elif op[0] == "sync":
                        group.sync_replicas()
                    elif op[0] == "checkpoint":
                        group.checkpoint_bootstrap()
                    else:  # crash: SIGKILL the primary, then fail over
                        group.crash_primary()
                        group.promote()

                # 1+2: the surviving group answers like a never-crashed twin.
                live = {
                    oid: (x, y, frozenset(kw))
                    for oid, x, y, kw in group.primary_engine.dataset.records()
                }
                assert live == model
                twin = LiveMCKEngine.from_records(
                    [(x, y, kw) for x, y, kw in model.values()]
                )
                try:
                    for algorithm in ALGORITHMS:
                        for keywords in (["a", "b"], ["a", "b", "c"], ["d"]):
                            try:
                                want = twin.query(keywords, algorithm=algorithm)
                            except Exception as err:
                                try:
                                    group.query(
                                        keywords,
                                        algorithm=algorithm,
                                        prefer="primary",
                                    )
                                    raise AssertionError(
                                        f"twin raised {err!r}, group answered"
                                    )
                                except type(err):
                                    continue
                            got = group.query(
                                keywords, algorithm=algorithm, prefer="primary"
                            )
                            assert abs(got.diameter - want.diameter) < 1e-9, (
                                algorithm,
                                keywords,
                            )
                finally:
                    twin.close()
            finally:
                group.close()

            # 3: a cold reopen reconstructs the same live set.
            with ReplicationGroup([], dir=tmp, n_replicas=0) as again:
                reopened = {
                    oid: (x, y, frozenset(kw))
                    for oid, x, y, kw in again.primary_engine.dataset.records()
                }
                assert reopened == model
