"""Metamorphic property tests: answers must respect the Euclidean group.

The mCK problem is defined purely by pairwise Euclidean distances, so for
any isometry T (translation, rotation, reflection) the optimal diameter
is unchanged, and for a scaling by s it scales by exactly s.  These tests
apply random transforms to whole instances and compare.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact
from repro.core.gkg import gkg
from repro.core.objects import Dataset
from repro.core.query import compile_query
from repro.core.skecaplus import skeca_plus

TERMS = ["a", "b", "c", "d"]

coordinate = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
record = st.tuples(
    coordinate,
    coordinate,
    st.lists(st.sampled_from(TERMS), min_size=1, max_size=2, unique=True),
)


@st.composite
def instance(draw):
    records = draw(st.lists(record, min_size=5, max_size=18))
    present = sorted({t for _x, _y, kws in records for t in kws})
    if len(present) < 2:
        records.append((0.0, 0.0, [t for t in TERMS if t not in present][:1]))
        present = sorted({t for _x, _y, kws in records for t in kws})
    m = draw(st.integers(2, min(3, len(present))))
    query = draw(st.lists(st.sampled_from(present), min_size=m, max_size=m, unique=True))
    return records, query


def _transform(records, tx, ty, angle, scale):
    cos_a, sin_a = math.cos(angle), math.sin(angle)
    out = []
    for x, y, kws in records:
        rx = scale * (x * cos_a - y * sin_a) + tx
        ry = scale * (x * sin_a + y * cos_a) + ty
        out.append((rx, ry, kws))
    return out


class TestIsometryInvariance:
    @given(
        instance(),
        st.floats(-1e4, 1e4),
        st.floats(-1e4, 1e4),
        st.floats(0.0, 2 * math.pi),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_diameter_invariant(self, inst, tx, ty, angle):
        records, query = inst
        base = exact(compile_query(Dataset.from_records(records), query))
        moved = exact(
            compile_query(
                Dataset.from_records(_transform(records, tx, ty, angle, 1.0)),
                query,
            )
        )
        assert math.isclose(
            base.diameter, moved.diameter, rel_tol=1e-6, abs_tol=1e-6
        )

    @given(instance(), st.floats(0.0, 2 * math.pi))
    @settings(max_examples=30, deadline=None)
    def test_skeca_plus_bound_invariant(self, inst, angle):
        """SKECa+ may pick different near-optimal groups after rotation,
        but both stay within the guarantee of the (invariant) optimum."""
        records, query = inst
        ctx_a = compile_query(Dataset.from_records(records), query)
        ctx_b = compile_query(
            Dataset.from_records(_transform(records, 0, 0, angle, 1.0)), query
        )
        opt = exact(ctx_a).diameter
        bound = (2 / math.sqrt(3) + 0.01) * opt + 1e-6
        assert skeca_plus(ctx_a).diameter <= bound
        assert skeca_plus(ctx_b).diameter <= bound


class TestScalingEquivariance:
    @given(instance(), st.floats(0.01, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_exact_diameter_scales(self, inst, scale):
        records, query = inst
        base = exact(compile_query(Dataset.from_records(records), query))
        scaled = exact(
            compile_query(
                Dataset.from_records(_transform(records, 0, 0, 0.0, scale)),
                query,
            )
        )
        assert math.isclose(
            scaled.diameter, base.diameter * scale, rel_tol=1e-6, abs_tol=1e-9
        )

    @given(instance(), st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_gkg_group_scales_identically(self, inst, scale):
        """GKG is deterministic: scaling must not change the chosen ids."""
        records, query = inst
        a = gkg(compile_query(Dataset.from_records(records), query))
        b = gkg(
            compile_query(
                Dataset.from_records(_transform(records, 0, 0, 0.0, scale)),
                query,
            )
        )
        assert a.object_ids == b.object_ids
        assert math.isclose(
            b.diameter, a.diameter * scale, rel_tol=1e-6, abs_tol=1e-9
        )


class TestObjectOrderInvariance:
    @given(instance())
    @settings(max_examples=30, deadline=None)
    def test_exact_invariant_under_record_permutation(self, inst):
        records, query = inst
        base = exact(compile_query(Dataset.from_records(records), query))
        reordered = exact(
            compile_query(Dataset.from_records(list(reversed(records))), query)
        )
        assert math.isclose(
            base.diameter, reordered.diameter, rel_tol=1e-9, abs_tol=1e-9
        )
