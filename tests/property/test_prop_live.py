"""Properties of the live store.

1. **Mutation/compaction equivalence.**  Any random interleaving of
   inserts, deletes, and compactions leaves the store exactly equal to a
   brute-force rebuild over the final object set: same live oids, same
   geometry, same per-keyword posting lists, and the same EXACT answer.
   Compaction placement is part of the randomness, so folding a delta at
   any point must be observationally invisible.

2. **WAL durability.**  Closing and reopening the engine over its WAL
   reproduces the identical live set (initial base + full replay is the
   durability contract).

3. **WAL crash recovery.**  Cutting the log at *any* byte offset yields a
   clean prefix of the appended records on replay — never garbage, never
   a record that was not written.

4. **Checkpoint/crash/restore equivalence.**  Any interleaving of
   mutations, compactions, checkpoints, clean restarts, and simulated
   kills at every checkpoint fault site recovers to a state equal to the
   plain-dict model — and the recovered engine answers all five
   algorithms identically to a never-crashed twin driven through the
   same mutations.
"""

from __future__ import annotations

import math
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset, MCKEngine
from repro.live import LiveMCKEngine
from repro.live.wal import WriteAheadLog, read_wal
from repro.testing import faults
from repro.testing.faults import SimulatedCrash

BASE_RECORDS = [
    (0.0, 0.0, ["a"]),
    (5.0, 5.0, ["b"]),
    (10.0, 0.0, ["c", "a"]),
    (0.0, 10.0, ["b", "c"]),
]

_keywords = st.lists(
    st.sampled_from("abcde"), min_size=1, max_size=2, unique=True
)

_op = st.one_of(
    st.tuples(
        st.just("insert"),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
        _keywords,
    ),
    st.tuples(st.just("delete"), st.integers(min_value=0, max_value=10**6)),
    st.tuples(st.just("compact")),
)

_ops = st.lists(_op, max_size=15)


def _apply(engine: LiveMCKEngine, ops) -> dict:
    """Drive the engine and a plain-dict model through the same ops."""
    model = {
        i: (float(x), float(y), frozenset(kw))
        for i, (x, y, kw) in enumerate(BASE_RECORDS)
    }
    for op in ops:
        if op[0] == "insert":
            _tag, x, y, kw = op
            oid = engine.insert(float(x), float(y), kw)
            model[oid] = (float(x), float(y), frozenset(kw))
        elif op[0] == "delete":
            if not model:
                continue
            live = sorted(model)
            victim = live[op[1] % len(live)]
            engine.delete(victim)
            del model[victim]
        else:
            engine.compact()
    return model


@settings(deadline=None, max_examples=20)
@given(ops=_ops)
def test_interleaved_mutations_equal_bruteforce_rebuild(ops):
    with LiveMCKEngine.from_records(BASE_RECORDS, auto_compact=False) as engine:
        model = _apply(engine, ops)
        view = engine.dataset

        # Identical live set and geometry.
        assert view.live_oids() == sorted(model)
        for oid, (x, y, kw) in model.items():
            obj = view[oid]
            assert (obj.x, obj.y) == (x, y)
            assert obj.keywords == kw

        # Identical posting lists per keyword.
        index = view.index()
        live_terms = set().union(*(kw for _x, _y, kw in model.values())) \
            if model else set()
        for term in sorted(live_terms) + ["never-used"]:
            want = sorted(
                oid for oid, (_x, _y, kw) in model.items() if term in kw
            )
            assert index.keyword_holders(term) == want

        # Identical EXACT answer against a from-scratch static rebuild.
        terms = sorted(live_terms)
        if len(terms) >= 2:
            rebuilt = Dataset.from_records(
                [(x, y, sorted(kw)) for _oid, (x, y, kw) in sorted(model.items())],
                name="rebuilt",
            )
            want = MCKEngine(rebuilt).query(terms[:2], algorithm="EXACT")
            got = engine.query(terms[:2], algorithm="EXACT")
            assert math.isclose(
                got.diameter, want.diameter, rel_tol=1e-9, abs_tol=1e-12
            )


@settings(deadline=None, max_examples=20)
@given(ops=_ops)
def test_wal_replay_reproduces_live_set(ops, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("wal") / "prop.wal")
    with LiveMCKEngine.from_records(
        BASE_RECORDS, wal_path=path, auto_compact=False
    ) as engine:
        model = _apply(engine, ops)
    with LiveMCKEngine.from_records(
        BASE_RECORDS, wal_path=path, auto_compact=False
    ) as engine:
        view = engine.dataset
        assert view.live_oids() == sorted(model)
        for oid, (x, y, kw) in model.items():
            obj = view[oid]
            assert (obj.x, obj.y) == (x, y)
            assert obj.keywords == kw


_CRASH_SITES = (
    "live.checkpoint.segment_write",
    "live.checkpoint.manifest_rename",
    "live.checkpoint.wal_truncate",
)

_ckpt_op = st.one_of(
    st.tuples(
        st.just("insert"),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
        _keywords,
    ),
    st.tuples(st.just("delete"), st.integers(min_value=0, max_value=10**6)),
    st.tuples(st.just("compact")),
    st.tuples(st.just("checkpoint")),
    st.tuples(st.just("restart")),
    st.tuples(st.just("crash"), st.sampled_from(_CRASH_SITES)),
)


def _reopen(data_dir):
    engine = LiveMCKEngine.open(
        data_dir, name="live", wal_sync_every=1, auto_compact=False
    )
    assert engine.recovery_report.complete
    return engine


@settings(deadline=None, max_examples=15)
@given(ops=st.lists(_ckpt_op, max_size=12))
def test_checkpoint_crash_restore_equals_bruteforce(ops, tmp_path_factory):
    faults.reset()  # hypothesis reuses one test-function invocation
    data_dir = str(tmp_path_factory.mktemp("ckpt"))
    engine = LiveMCKEngine.from_records(
        BASE_RECORDS,
        name="live",
        data_dir=data_dir,
        wal_sync_every=1,
        auto_compact=False,
    )
    # The never-crashed twin sees the same mutations, never the crashes.
    twin = LiveMCKEngine.from_records(
        BASE_RECORDS, name="twin", auto_compact=False
    )
    model = {
        i: (float(x), float(y), frozenset(kw))
        for i, (x, y, kw) in enumerate(BASE_RECORDS)
    }
    try:
        for op in ops:
            kind = op[0]
            if kind == "insert":
                _tag, x, y, kw = op
                oid = engine.insert(float(x), float(y), kw)
                assert twin.insert(float(x), float(y), kw) == oid
                model[oid] = (float(x), float(y), frozenset(kw))
            elif kind == "delete":
                if not model:
                    continue
                live = sorted(model)
                victim = live[op[1] % len(live)]
                engine.delete(victim)
                twin.delete(victim)
                del model[victim]
            elif kind == "compact":
                engine.compact()
            elif kind == "checkpoint":
                engine.checkpoint()
            elif kind == "restart":
                engine.close()
                engine = _reopen(data_dir)
            else:  # simulated kill mid-checkpoint at a chosen fault site
                with faults.injected(op[1], error=SimulatedCrash):
                    try:
                        engine.checkpoint()
                    except SimulatedCrash:
                        pass
                # Abandon the dirty engine without close() (the process
                # is "dead") and restart from whatever disk holds.
                engine = _reopen(data_dir)

        # One final kill-and-restart: whatever the interleaving left on
        # disk must recover to exactly the model.
        engine = _reopen(data_dir)
        view = engine.dataset
        assert view.live_oids() == sorted(model)
        for oid, (x, y, kw) in model.items():
            obj = view[oid]
            assert (obj.x, obj.y) == (x, y)
            assert obj.keywords == kw

        # Recovered engine answers every algorithm like the twin.
        live_terms = (
            set().union(*(kw for _x, _y, kw in model.values()))
            if model
            else set()
        )
        terms = sorted(live_terms)
        if len(terms) >= 2:
            query = terms[:3]
            for algo in ("GKG", "SKEC", "SKECa", "SKECa+", "EXACT"):
                got = engine.query(query, algorithm=algo)
                want = twin.query(query, algorithm=algo)
                assert sorted(got.object_ids) == sorted(want.object_ids), algo
                assert got.diameter == want.diameter, algo
    finally:
        engine.close()
        twin.close()


@settings(deadline=None, max_examples=30)
@given(
    records=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=0, max_value=50),
            _keywords,
        ),
        min_size=1,
        max_size=10,
    ),
    cut=st.integers(min_value=0, max_value=10_000),
)
def test_wal_cut_anywhere_yields_clean_prefix(records, cut, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("wal") / "cut.wal")
    with WriteAheadLog(path, sync_every=0) as wal:
        for i, (x, y, kw) in enumerate(records):
            wal.append_insert(i, float(x), float(y), kw)
    whole, _bytes, torn = read_wal(path)
    assert torn is None and len(whole) == len(records)

    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(min(cut, size))
    replayed, valid_bytes, _torn = read_wal(path)
    # A cut log replays to an exact prefix of what was appended.
    assert replayed == whole[: len(replayed)]
    assert valid_bytes <= min(cut, size)
    # Reopening truncates the tail and allows clean appends.
    with WriteAheadLog(path, sync_every=0) as wal:
        assert wal.recovered == replayed
        wal.append_delete(0) if replayed else wal.append_insert(
            99, 0.0, 0.0, ["z"]
        )
    again, _bytes2, torn2 = read_wal(path)
    assert torn2 is None
    assert len(again) == len(replayed) + 1
