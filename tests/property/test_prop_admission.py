"""Property: admission counters balance at quiescence.

Every submitted request must be accounted for exactly once: it is either
rejected (synchronously, or shed from the queue through its future) or it
executes and then either completes or fails.  Across random capacities,
policies, worker counts, and task mixes:

* ``submitted == accepted + rejected``
* ``accepted  == completed + failed``

No request is silently dropped, double-counted, or left hanging.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryRejected
from repro.serving.admission import SHED_POLICIES, AdmissionController

WAIT = 10.0


class _TaskFailure(Exception):
    pass


@settings(deadline=None, max_examples=20)
@given(
    capacity=st.integers(min_value=1, max_value=4),
    policy=st.sampled_from(SHED_POLICIES),
    workers=st.integers(min_value=1, max_value=3),
    tasks=st.lists(st.booleans(), min_size=1, max_size=30),
)
def test_admission_conservation(capacity, policy, workers, tasks):
    gate = threading.Event()

    def succeed():
        assert gate.wait(WAIT)
        return True

    def explode():
        assert gate.wait(WAIT)
        raise _TaskFailure()

    ctrl = AdmissionController(
        max_workers=workers, capacity=capacity, policy=policy
    )
    futures = []
    try:
        # Submit everything while the gate is shut so the tiny queue
        # actually fills and the shedding policy gets exercised.
        for should_fail in tasks:
            try:
                futures.append(ctrl.submit(explode if should_fail else succeed))
            except QueryRejected:
                pass
        gate.set()
        for future in futures:
            try:
                future.result(timeout=WAIT)
            except (QueryRejected, _TaskFailure):
                pass
        ctrl.close()
        counters = ctrl.counters()
        assert counters["submitted"] == len(tasks)
        assert counters["submitted"] == counters["accepted"] + counters["rejected"]
        assert counters["accepted"] == counters["completed"] + counters["failed"]
        assert ctrl.queue_depth == 0
        assert ctrl.inflight == 0
    finally:
        gate.set()
        ctrl.close()
