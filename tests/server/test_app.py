"""The HTTP application: routes, overload translation, readiness."""

import http.client
import json
import threading
import time

import pytest

from repro.observability.flight import FlightRecorder
from repro.serving import MetricsRegistry, QueryService
from repro.server import MCKServer
from repro.testing import faults
from tests.conftest import feasible_query, make_random_dataset

QUERY = ["shrine", "shop", "restaurant", "hotel"]


class Client:
    """Thin http.client wrapper; one connection, keep-alive."""

    def __init__(self, handle, timeout=30):
        self.conn = http.client.HTTPConnection(
            handle.host, handle.port, timeout=timeout
        )

    def call(self, method, path, body=None):
        payload = None if body is None else json.dumps(body).encode()
        self.conn.request(method, path, body=payload)
        response = self.conn.getresponse()
        raw = response.read()
        headers = dict(response.getheaders())
        try:
            document = json.loads(raw)
        except ValueError:
            document = raw.decode("utf-8", "replace")
        return response.status, document, headers

    def close(self):
        self.conn.close()


@pytest.fixture(scope="module")
def served():
    """One server over the kyoto scenario for the whole module."""
    from repro import Dataset

    records = [
        (10.0, 10.0, ["shrine"]),
        (11.0, 10.5, ["shop"]),
        (10.5, 11.0, ["restaurant"]),
        (11.2, 11.2, ["hotel"]),
        (50.0, 50.0, ["shrine"]),
        (52.0, 50.0, ["shop"]),
        (90.0, 10.0, ["restaurant"]),
        (10.0, 90.0, ["hotel"]),
    ]
    dataset = Dataset.from_records(records, name="kyoto-http")
    service = QueryService(
        dataset, max_workers=2, metrics=MetricsRegistry(), cache_size=0,
        flight=FlightRecorder(),
    )
    server = MCKServer(service, owns_service=True)
    handle = server.run_in_thread()
    yield handle, server, service
    handle.stop()


@pytest.fixture
def client(served):
    handle, _server, _service = served
    c = Client(handle)
    yield c
    c.close()


class TestBasicRoutes:
    def test_healthz(self, client):
        status, body, _ = client.call("GET", "/healthz")
        assert status == 200 and body == {"status": "ok"}

    def test_readyz_when_idle(self, client):
        status, body, _ = client.call("GET", "/readyz")
        assert status == 200
        assert body["ready"] is True
        assert body["queue_depth"] == 0
        assert body["ready_threshold"] <= body["capacity"]

    def test_unknown_route_404(self, client):
        status, body, _ = client.call("GET", "/nope")
        assert status == 404 and "error" in body

    def test_wrong_method_405(self, client):
        status, _, _ = client.call("GET", "/query")
        assert status == 405
        status, _, _ = client.call("POST", "/metrics")
        assert status == 405

    def test_metrics_exposition(self, client):
        status, text, headers = client.call("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "mck_http_requests_total" in text
        assert "mck_server_ready" in text

    def test_flightz(self, client):
        status, body, _ = client.call("GET", "/flightz")
        assert status == 200
        assert "stats" in body and "traces" in body


class TestQueryEndpoint:
    def test_query_answers_and_matches_engine(self, served, client):
        _handle, _server, service = served
        status, body, _ = client.call(
            "POST", "/query", {"keywords": QUERY, "algorithm": "EXACT"}
        )
        assert status == 200
        assert body["status"] == "ok"
        direct = service.engine.query(QUERY, algorithm="EXACT")
        assert body["diameter"] == pytest.approx(direct.diameter)
        assert sorted(body["object_ids"]) == sorted(direct.object_ids)
        assert body["correlation_id"]
        # Object details ride along for wire-only clients.
        assert {o["oid"] for o in body["objects"]} == set(body["object_ids"])
        assert all("keywords" in o for o in body["objects"])

    def test_missing_keywords_400(self, client):
        status, body, _ = client.call("POST", "/query", {"algorithm": "EXACT"})
        assert status == 400

    def test_invalid_json_400(self, served, client):
        client.conn.request(
            "POST", "/query", body=b"{nope",
        )
        response = client.conn.getresponse()
        assert response.status == 400
        response.read()

    def test_unknown_algorithm_400(self, client):
        status, body, _ = client.call(
            "POST", "/query", {"keywords": QUERY, "algorithm": "MAGIC"}
        )
        assert status == 400

    def test_infeasible_query_422(self, client):
        status, body, _ = client.call(
            "POST", "/query", {"keywords": ["no-such-keyword", "shrine"]}
        )
        assert status == 422
        assert body["status"] == "error"

    def test_degraded_answer_tagged(self, client):
        with faults.injected(
            "core.deadline.clock", skew=1e9, after=2, times=None
        ):
            status, body, _ = client.call(
                "POST",
                "/query",
                {"keywords": QUERY, "algorithm": "EXACT", "timeout": 60.0},
            )
        assert status == 200
        assert body["status"] == "degraded"
        assert body["degraded"] is True
        assert body["quality"]  # certified quality tag rides the wire

    def test_explain_passthrough(self, client):
        status, body, _ = client.call(
            "POST",
            "/query",
            {"keywords": QUERY, "algorithm": "EXACT", "explain": True},
        )
        assert status == 200
        explain = body["explain"]
        assert explain["outcome"]["status"] in ("ok", "degraded")
        assert explain["phases"]

    def test_rejection_is_429_with_retry_after(self, client):
        fault = faults.arm_spec("admission-reject:times=1")
        try:
            status, body, headers = client.call(
                "POST", "/query", {"keywords": QUERY}
            )
        finally:
            faults.disarm(fault)
        assert status == 429
        assert body["reason"] == "injected"
        retry_after = headers["Retry-After"]
        assert retry_after.isdigit() and 1 <= int(retry_after) <= 30

    def test_http_request_counter_increments(self, served, client):
        _handle, server, service = served
        before = service.metrics.counter("mck_http_requests_total").value(
            route="/healthz", status="200"
        )
        client.call("GET", "/healthz")
        after = service.metrics.counter("mck_http_requests_total").value(
            route="/healthz", status="200"
        )
        assert after == before + 1


class TestTopkEndpoint:
    def test_topk_groups(self, client):
        status, body, _ = client.call(
            "GET", "/topk?keywords=shrine,shop&k=2&algorithm=EXACT"
        )
        assert status == 200
        assert 1 <= len(body["groups"]) <= 2
        assert body["groups"][0]["rank"] == 1
        assert body["groups"][0]["object_ids"]

    def test_topk_needs_keywords(self, client):
        status, _, _ = client.call("GET", "/topk?k=2")
        assert status == 400

    def test_topk_k_bounds(self, client):
        status, _, _ = client.call("GET", "/topk?keywords=shrine&k=9999")
        assert status == 400


class TestReadiness:
    def test_readyz_flips_before_admission_saturates(self):
        """Queue at 50% of a tiny capacity: unready while 429s are not
        yet being issued — the balancer sheds first.

        The queue is parked deterministically (gated no-op tasks through
        the service's own admission controller) instead of racing slow
        queries against a poll loop.
        """
        dataset = make_random_dataset(3, n=40)
        service = QueryService(
            dataset,
            max_workers=1,
            admission_capacity=4,
            cache_size=0,
            metrics=MetricsRegistry(),
        )
        server = MCKServer(service, ready_fraction=0.5, owns_service=True)
        handle = server.run_in_thread()
        probe = Client(handle)
        gate = threading.Event()
        parked = []
        try:
            # One task occupies the single worker; two more sit queued:
            # depth 2 == ceil(0.5 * 4) -> unready, queue NOT yet full.
            parked.append(service.admission.submit(gate.wait))
            time.sleep(0.05)  # let the worker pick up the first task
            parked.append(service.admission.submit(gate.wait))
            parked.append(service.admission.submit(gate.wait))

            status, body, _ = probe.call("GET", "/readyz")
            assert status == 503
            assert body["ready"] is False
            assert body["queue_depth"] >= body["ready_threshold"]
            # Strictly before saturation: new work is still admitted (no
            # QueryRejected), so the balancer sheds before 429s start.
            assert body["queue_depth"] < body["capacity"]
            parked.append(service.admission.submit(gate.wait))

            gate.set()
            for future in parked:
                future.result(timeout=10)
            status, body, _ = probe.call("GET", "/readyz")
            assert status == 200 and body["ready"] is True
        finally:
            gate.set()
            probe.close()
            handle.stop()

    def test_mutate_on_sealed_dataset_409(self, client):
        status, body, _ = client.call(
            "POST", "/mutate", {"inserts": [[1.0, 2.0, ["x"]]]}
        )
        assert status == 409


class TestLiveServer:
    def test_mutations_over_the_wire(self):
        from repro.live import LiveMCKEngine

        engine = LiveMCKEngine.from_records(
            [
                (0.0, 0.0, ["cafe"]),
                (1.0, 1.0, ["bar"]),
                (50.0, 50.0, ["cafe", "bar"]),
            ]
        )
        service = QueryService(engine, max_workers=2, metrics=MetricsRegistry())
        handle = MCKServer(service, owns_service=True).run_in_thread()
        client = Client(handle)
        try:
            status, body, _ = client.call(
                "POST",
                "/mutate",
                {"inserts": [[0.5, 0.5, ["tea"]]], "deletes": [2]},
            )
            assert status == 200
            (new_oid,) = body["oids"]
            assert body["epoch"] >= 1
            status, body, _ = client.call(
                "POST", "/query", {"keywords": ["cafe", "tea"]}
            )
            assert status == 200
            assert new_oid in body["object_ids"]
            status, body, _ = client.call(
                "POST", "/mutate", {"deletes": ["nope"]}
            )
            assert status == 400
            status, body, _ = client.call("POST", "/mutate", {})
            assert status == 400
        finally:
            client.close()
            handle.stop()
