"""Worker-process execution behind the HTTP tier.

The serving contract for a network deployment: CPU-bound hot loops run
in worker *processes* (off the GIL), crashes respawn through the retry
machinery, and observability (flight recorder, EXPLAIN) still works for
queries that executed on the far side of a process boundary.
"""

import json

import pytest

from repro.observability.flight import FlightRecorder
from repro.serving import MetricsRegistry, QueryService
from repro.server import MCKServer
from repro.testing import faults
from tests.server.test_app import Client

RECORDS = [
    (10.0, 10.0, ["shrine"]),
    (11.0, 10.5, ["shop"]),
    (10.5, 11.0, ["restaurant"]),
    (11.2, 11.2, ["hotel"]),
    (50.0, 50.0, ["shrine"]),
    (52.0, 50.0, ["shop"]),
    (90.0, 10.0, ["restaurant"]),
]
QUERY = ["shrine", "shop", "restaurant"]


@pytest.fixture(scope="module")
def pool_served():
    from repro import Dataset

    dataset = Dataset.from_records(RECORDS, name="pool-http")
    flight = FlightRecorder()
    service = QueryService(
        dataset,
        max_workers=2,
        cache_size=0,
        metrics=MetricsRegistry(),
        process_algorithms=("EXACT", "SKECa+"),
        flight=flight,
    )
    handle = MCKServer(service, owns_service=True).run_in_thread()
    yield handle, service, flight
    handle.stop()


class TestProcessPoolOverTheWire:
    @pytest.mark.parametrize("algorithm", ["EXACT", "SKECa+"])
    def test_pool_answer_matches_inline(self, pool_served, algorithm):
        handle, service, _flight = pool_served
        client = Client(handle, timeout=120)
        try:
            status, body, _ = client.call(
                "POST", "/query", {"keywords": QUERY, "algorithm": algorithm}
            )
        finally:
            client.close()
        assert status == 200 and body["status"] == "ok"
        direct = service.engine.query(QUERY, algorithm=algorithm)
        assert body["diameter"] == pytest.approx(direct.diameter)

    def test_explain_and_flight_cross_process_boundary(self, pool_served):
        handle, service, flight = pool_served
        client = Client(handle, timeout=120)
        try:
            status, body, _ = client.call(
                "POST",
                "/query",
                {"keywords": QUERY, "algorithm": "EXACT", "explain": True},
            )
        finally:
            client.close()
        assert status == 200
        trace_id = body["trace_id"]
        assert trace_id
        # EXPLAIN was assembled in the coordinator from spans the worker
        # process drained and shipped back.
        phases = body["explain"]["phases"]
        assert phases, "no phase breakdown for a pool-executed query"
        # The flight recorder completed the same trace.
        assert any(t["trace_id"] == trace_id for t in (
            trace.as_dict() for trace in flight.traces()
        )) or flight.completed > 0

    def test_pool_rejection_retries_and_counts(self, pool_served):
        handle, service, _flight = pool_served
        before = service.metrics.pool_retry_counter.value(algorithm="EXACT")
        client = Client(handle, timeout=120)
        fault = faults.arm_spec("pool-reject:times=1")
        try:
            status, body, _ = client.call(
                "POST", "/query", {"keywords": QUERY, "algorithm": "EXACT"}
            )
        finally:
            faults.disarm(fault)
            client.close()
        # The retry machinery absorbed the refusal; the client saw success.
        assert status == 200 and body["status"] == "ok"
        after = service.metrics.pool_retry_counter.value(algorithm="EXACT")
        assert after == before + 1

    def test_process_algorithms_rejects_live_engine(self):
        from repro.live import LiveMCKEngine

        engine = LiveMCKEngine.from_records(RECORDS)
        with pytest.raises(ValueError, match="live"):
            QueryService(engine, process_algorithms=("EXACT",))
