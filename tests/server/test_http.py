"""HTTP/1.1 framing layer: parsing, limits, rendering."""

import asyncio
import json

import pytest

from repro.server.http import (
    DEFAULT_MAX_BODY,
    HTTPError,
    read_request,
    render_response,
)


def parse(raw: bytes, **kwargs):
    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(_run())


class TestParsing:
    def test_simple_get(self):
        req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/healthz"
        assert req.body == b""
        assert req.keep_alive  # HTTP/1.1 default

    def test_query_string_and_param(self):
        req = parse(b"GET /topk?keywords=cafe,bar&k=2 HTTP/1.1\r\n\r\n")
        assert req.path == "/topk"
        assert req.query["keywords"] == ["cafe,bar"]
        assert req.param("k") == "2"
        assert req.param("missing", "7") == "7"

    def test_percent_decoded_path(self):
        req = parse(b"GET /a%20b HTTP/1.1\r\n\r\n")
        assert req.path == "/a b"

    def test_post_body_via_content_length(self):
        body = json.dumps({"keywords": ["a"]}).encode()
        raw = (
            b"POST /query HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s"
            % (len(body), body)
        )
        req = parse(raw)
        assert req.json() == {"keywords": ["a"]}

    def test_header_names_lowercased_and_joined(self):
        req = parse(b"GET / HTTP/1.1\r\nX-Tag: a\r\nx-tag: b\r\n\r\n")
        assert req.headers["x-tag"] == "a, b"

    def test_connection_close_disables_keep_alive(self):
        req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not req.keep_alive

    def test_http10_defaults_to_close(self):
        req = parse(b"GET / HTTP/1.0\r\n\r\n")
        assert not req.keep_alive

    def test_http10_explicit_keep_alive(self):
        req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert req.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None


class TestRejection:
    @pytest.mark.parametrize(
        "raw,status",
        [
            (b"GARBAGE\r\n\r\n", 400),                     # malformed line
            (b"GET / SPDY/3\r\n\r\n", 400),                # bad protocol
            (b"GET / HTTP/1.1\r\nnocolonhere\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400),
            (
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                411,
            ),
        ],
    )
    def test_malformed_requests(self, raw, status):
        with pytest.raises(HTTPError) as err:
            parse(raw)
        assert err.value.status == status

    def test_body_over_cap_is_413(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n"
        with pytest.raises(HTTPError) as err:
            parse(raw, max_body=10)
        assert err.value.status == 413

    def test_default_body_cap(self):
        raw = (
            b"POST / HTTP/1.1\r\nContent-Length: %d\r\n\r\n"
            % (DEFAULT_MAX_BODY + 1)
        )
        with pytest.raises(HTTPError) as err:
            parse(raw)
        assert err.value.status == 413

    def test_truncated_body_is_400(self):
        with pytest.raises(HTTPError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab")
        assert err.value.status == 400

    def test_invalid_json_body(self):
        req = parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{")
        with pytest.raises(HTTPError) as err:
            req.json()
        assert err.value.status == 400

    def test_non_object_json_body(self):
        req = parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]")
        with pytest.raises(HTTPError) as err:
            req.json()
        assert err.value.status == 400

    def test_empty_body_is_empty_object(self):
        req = parse(b"POST / HTTP/1.1\r\n\r\n")
        assert req.json() == {}


class TestRendering:
    def test_json_dict_body(self):
        raw = render_response(200, {"b": 1, "a": 2})
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert json.loads(payload) == {"a": 2, "b": 1}
        # Declared length matches the payload exactly (keep-alive safety).
        assert b"Content-Length: %d" % len(payload) in head

    def test_extra_headers_and_close(self):
        raw = render_response(
            429,
            {"error": "x"},
            headers=[("Retry-After", "3")],
            keep_alive=False,
        )
        assert b"HTTP/1.1 429 Too Many Requests" in raw
        assert b"Retry-After: 3" in raw
        assert b"Connection: close" in raw

    def test_text_body(self):
        raw = render_response(200, "hello", content_type="text/plain")
        assert raw.endswith(b"\r\n\r\nhello")

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            render_response(200, {"x": float("nan")})
