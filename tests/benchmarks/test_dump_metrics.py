"""dump_metrics appends snapshots instead of overwriting earlier dumps."""

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

from benchmarks._common import dump_metrics  # noqa: E402


class TestDumpMetrics:
    def test_appends_one_json_line_per_call(self, tmp_path):
        target = tmp_path / "metrics.json"
        assert dump_metrics(str(target)) == str(target)
        assert dump_metrics(str(target)) == str(target)

        lines = target.read_text().splitlines()
        assert len(lines) == 2, "second dump must not overwrite the first"
        for line in lines:
            snapshot = json.loads(line)
            assert isinstance(snapshot, dict)

    def test_prometheus_rendering_is_latest_snapshot(self, tmp_path):
        target = tmp_path / "metrics.json"
        dump_metrics(str(target))
        prom = tmp_path / "metrics.json.prom"
        assert prom.exists()
        first = prom.read_text()
        dump_metrics(str(target))
        # A snapshot format: rewritten, not accumulated.
        assert prom.read_text().count("# TYPE") == first.count("# TYPE")

    def test_no_target_is_a_no_op(self, tmp_path, monkeypatch):
        import benchmarks._common as common

        monkeypatch.setattr(common, "METRICS_PATH", None)
        assert common.dump_metrics() is None
