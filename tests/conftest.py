"""Shared fixtures: handcrafted and random datasets with known structure."""

from __future__ import annotations

import random

import pytest

from repro import Dataset, MCKEngine
from repro.testing import faults as _faults


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No armed fault ever outlives its test."""
    yield
    _faults.reset()


@pytest.fixture(scope="session")
def kyoto_dataset() -> Dataset:
    """The paper's Figure-1 scenario: shrine/shop/restaurant/hotel POIs.

    Objects 0-3 form a tight cluster (the intended answer); 4-9 are decoys
    spread out so every keyword also appears far away.
    """
    records = [
        (10.0, 10.0, ["shrine"]),       # 0 - cluster
        (11.0, 10.5, ["shop"]),         # 1 - cluster
        (10.5, 11.0, ["restaurant"]),   # 2 - cluster
        (11.2, 11.2, ["hotel"]),        # 3 - cluster
        (50.0, 50.0, ["shrine"]),       # 4
        (52.0, 50.0, ["shop"]),         # 5
        (90.0, 10.0, ["restaurant"]),   # 6
        (10.0, 90.0, ["hotel"]),        # 7
        (60.0, 60.0, ["shop", "cafe"]), # 8
        (0.0, 0.0, ["museum"]),         # 9
    ]
    return Dataset.from_records(records, name="kyoto")


@pytest.fixture(scope="session")
def kyoto_engine(kyoto_dataset) -> MCKEngine:
    return MCKEngine(kyoto_dataset)


@pytest.fixture(scope="session")
def kyoto_query():
    return ["shrine", "shop", "restaurant", "hotel"]


def make_random_dataset(
    seed: int,
    n: int = 40,
    vocab: str = "abcdefgh",
    extent: float = 100.0,
    max_terms: int = 3,
) -> Dataset:
    """Deterministic random dataset used by cross-validation tests."""
    rng = random.Random(seed)
    records = []
    for _ in range(n):
        kws = rng.sample(list(vocab), rng.randint(1, max_terms))
        records.append((rng.uniform(0, extent), rng.uniform(0, extent), kws))
    return Dataset.from_records(records, name=f"random-{seed}")


def feasible_query(dataset: Dataset, seed: int, m: int) -> list:
    """A feasible m-keyword query over ``dataset`` (terms that exist)."""
    rng = random.Random(seed * 7919 + 13)
    terms = dataset.vocabulary.terms_by_frequency()
    if len(terms) < m:
        m = len(terms)
    return rng.sample(terms, m)


@pytest.fixture
def random_dataset_factory():
    return make_random_dataset


@pytest.fixture
def feasible_query_factory():
    return feasible_query
