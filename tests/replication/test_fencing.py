"""The EPOCH fencing file: atomic round trips, corruption, monotonicity."""

from __future__ import annotations

import os

import pytest

from repro.exceptions import ReplicationError
from repro.replication.fencing import (
    EPOCH_NAME,
    EpochEntry,
    read_epoch_entries,
    wal_name,
    write_epoch_entries,
)


class TestRoundTrip:
    def test_missing_file_is_empty_history(self, tmp_path):
        assert read_epoch_entries(str(tmp_path)) == []

    def test_write_read_round_trip(self, tmp_path):
        entries = [
            EpochEntry(1, wal_name(1), 0),
            EpochEntry(2, wal_name(2), 731),
        ]
        write_epoch_entries(str(tmp_path), entries)
        assert read_epoch_entries(str(tmp_path)) == entries

    def test_rewrite_replaces_atomically(self, tmp_path):
        write_epoch_entries(str(tmp_path), [EpochEntry(1, wal_name(1), 0)])
        write_epoch_entries(
            str(tmp_path),
            [EpochEntry(1, wal_name(1), 0), EpochEntry(2, wal_name(2), 5)],
        )
        got = read_epoch_entries(str(tmp_path))
        assert [e.epoch for e in got] == [1, 2]
        assert not os.path.exists(str(tmp_path / (EPOCH_NAME + ".tmp")))

    def test_wal_name_is_zero_padded(self):
        assert wal_name(1) == "wal-e0001.log"
        assert wal_name(42) == "wal-e0042.log"


class TestCorruption:
    def _write_raw(self, tmp_path, payload: bytes) -> str:
        path = str(tmp_path / EPOCH_NAME)
        with open(path, "wb") as fh:
            fh.write(payload)
        return str(tmp_path)

    def test_torn_file_raises(self, tmp_path):
        write_epoch_entries(str(tmp_path), [EpochEntry(1, wal_name(1), 0)])
        with open(str(tmp_path / EPOCH_NAME), "rb") as fh:
            raw = fh.read()
        self._write_raw(tmp_path, raw[: len(raw) // 2])
        with pytest.raises(ReplicationError):
            read_epoch_entries(str(tmp_path))

    def test_crc_mismatch_raises(self, tmp_path):
        write_epoch_entries(str(tmp_path), [EpochEntry(1, wal_name(1), 0)])
        with open(str(tmp_path / EPOCH_NAME), "rb") as fh:
            raw = bytearray(fh.read())
        raw[-5] ^= 0xFF  # flip a byte inside the JSON body
        self._write_raw(tmp_path, bytes(raw))
        with pytest.raises(ReplicationError):
            read_epoch_entries(str(tmp_path))

    def test_garbage_raises(self, tmp_path):
        self._write_raw(tmp_path, b"not an epoch file\n")
        with pytest.raises(ReplicationError):
            read_epoch_entries(str(tmp_path))

    def test_non_monotonic_history_raises(self, tmp_path):
        write_epoch_entries(
            str(tmp_path),
            [EpochEntry(2, wal_name(2), 10), EpochEntry(1, wal_name(1), 0)],
        )
        with pytest.raises(ReplicationError):
            read_epoch_entries(str(tmp_path))
