"""ReplicatedShardRouter: scatter-gather, partial merges, live splits,
and the duck-typed serving surface."""

from __future__ import annotations

import random

import pytest

from repro.core.common import QUALITY_PARTIAL
from repro.exceptions import DatasetError, InfeasibleQueryError
from repro.live import LiveMCKEngine
from repro.replication import ReplicatedShardRouter

VOCAB = ["a", "b", "c", "d", "e"]


def _records(n=60, seed=1, extent=100.0):
    rng = random.Random(seed)
    recs = [
        (
            rng.uniform(0, extent),
            rng.uniform(0, extent),
            rng.sample(VOCAB, 2),
        )
        for _ in range(n)
    ]
    # Pin the extent corners so the grid covers the full square.
    recs.append((0.0, 0.0, ["a"]))
    recs.append((extent, extent, ["b"]))
    return recs


@pytest.fixture
def router():
    with ReplicatedShardRouter(
        _records(), n_shards=4, replicas_per_shard=1
    ) as r:
        yield r


class TestRouting:
    def test_points_route_to_disjoint_total_regions(self, router):
        rng = random.Random(7)
        for _ in range(200):
            x, y = rng.uniform(-10, 110), rng.uniform(-10, 110)
            gid = router.route(x, y)  # clamped, total
            assert router.groups[gid] is not None

    def test_insert_goes_to_owning_shard_and_delete_follows_oid(self, router):
        oid = router.insert(99.0, 99.0, ["e"])
        gid = router.shard_of(oid)
        assert gid == router.route(99.0, 99.0)
        router.delete(oid)
        with pytest.raises(DatasetError):
            router.shard_of(oid)

    def test_apply_batch_preserves_caller_order(self, router):
        oids = router.apply_batch(
            inserts=[(1.0, 1.0, ["a"]), (99.0, 99.0, ["b"]), (1.0, 99.0, ["c"])]
        )
        assert len(oids) == 3
        assert router.shard_of(oids[0]) == router.route(1.0, 1.0)
        assert router.shard_of(oids[1]) == router.route(99.0, 99.0)
        assert router.shard_of(oids[2]) == router.route(1.0, 99.0)


class TestScatterGather:
    def test_matches_single_engine_when_best_group_is_local(self):
        # A tight cluster inside one region: the optimal group is wholly
        # local to one shard, so scatter-gather must equal a single engine.
        recs = _records(40, seed=3)
        recs += [
            (10.0, 10.0, ["x"]),
            (10.5, 10.5, ["y"]),
            (11.0, 10.0, ["z"]),
        ]
        twin = LiveMCKEngine.from_records(recs)
        try:
            with ReplicatedShardRouter(recs, n_shards=4) as router:
                for algorithm in ["GKG", "SKECa+", "EXACT"]:
                    got = router.query(["x", "y", "z"], algorithm=algorithm)
                    want = twin.query(["x", "y", "z"], algorithm=algorithm)
                    assert got.diameter == pytest.approx(want.diameter)
                    assert sorted(got.object_ids) != []  # oids differ by stride
                    assert got.stats["shards_answered"] >= 1
        finally:
            twin.close()

    def test_merge_is_deterministic_across_runs(self, router):
        first = router.query(["a", "b"], algorithm="GKG")
        for _ in range(5):
            again = router.query(["a", "b"], algorithm="GKG")
            assert again.object_ids == first.object_ids
            assert again.diameter == first.diameter

    def test_all_shards_infeasible_raises_with_union_of_missing(self, router):
        with pytest.raises(InfeasibleQueryError) as err:
            router.query(["a", "nosuchword"], algorithm="GKG")
        assert "nosuchword" in err.value.missing_keywords

    def test_aggressive_deadline_degrades_to_partial(self, router):
        # The deadline is far too small for EXACT on every shard, but the
        # wait() harvest keeps whatever finished: the answer must come
        # back tagged partial instead of erroring (as long as any shard
        # answered) or raise AlgorithmTimeout (none answered) -- never a
        # crash, never a silent exact tag.
        from repro.exceptions import AlgorithmTimeout

        try:
            group = router.query(["a", "b"], algorithm="EXACT", timeout=1e-9)
        except AlgorithmTimeout:
            return
        assert group.quality == QUALITY_PARTIAL
        assert group.stats["shards_missed"] >= 1
        assert group.degraded

    def test_fanout_stats_present(self, router):
        group = router.query(["a", "b"], algorithm="GKG")
        assert group.stats["fanout_shards"] == 4.0
        assert group.stats["shards_answered"] >= 1.0

    def test_explain_reports_scatter_engine(self, router):
        group = router.query(["a", "b"], algorithm="GKG", explain=True)
        assert group.explain_report["execution"]["engine"] == "scatter"
        assert group.explain_report["outcome"]["status"] == "ok"


class TestSplit:
    def test_split_preserves_answers_and_moves_objects(self):
        recs = _records(80, seed=5)
        with ReplicatedShardRouter(recs, n_shards=4) as router:
            sizes = router.shard_sizes()
            hot = max(sizes, key=lambda g: sizes[g])
            before = router.query(["a", "b"], algorithm="GKG")
            total = len(router)
            report = router.split_shard(hot)
            assert report.moved_objects > 0
            assert len(router) == total
            assert len(router.groups[hot]) == sizes[hot] - report.moved_objects
            after = router.query(["a", "b"], algorithm="GKG")
            assert after.object_ids == before.object_ids
            assert after.diameter == pytest.approx(before.diameter)

    def test_split_shard_keeps_mutations_routable(self):
        with ReplicatedShardRouter(_records(60, seed=6), n_shards=1) as router:
            report = router.split_shard(0)
            # A moved oid's delete reaches the new owner.
            moved_oid = next(iter(router._moved_owner))
            assert router.shard_of(moved_oid) == report.new_shard
            router.delete(moved_oid)
            # New inserts in the moved region land on the new shard.
            mid_x = (report.move_region.x1 + report.move_region.x2) / 2
            mid_y = (report.move_region.y1 + report.move_region.y2) / 2
            oid = router.insert(mid_x, mid_y, ["e"])
            assert router.shard_of(oid) == report.new_shard

    def test_maybe_split_honors_threshold(self):
        with ReplicatedShardRouter(
            _records(40, seed=7), n_shards=4, split_threshold=10 ** 6
        ) as router:
            assert router.maybe_split() is None

    def test_split_with_replicas_ships_to_new_group(self):
        with ReplicatedShardRouter(
            _records(60, seed=8), n_shards=1, replicas_per_shard=1
        ) as router:
            report = router.split_shard(0)
            router.sync_replicas()
            new_group = router.groups[report.new_shard]
            assert len(new_group.replicas[0].engine) == len(new_group)


class TestServingSurface:
    def test_router_view_spans_shards(self, router):
        view = router.dataset
        assert len(view) == len(router)
        oid = router.insert(50.0, 50.0, ["a", "e"])
        view = router.dataset
        assert view[oid].oid == oid
        assert oid in view
        assert view.get(10 ** 15) is None
        with pytest.raises(KeyError):
            view[10 ** 15]
        assert "e" in view.vocabulary
        assert view.vocabulary.frequency("a") >= 1
        assert not hasattr(view, "columns")

    def test_query_service_integration(self, router):
        from repro.serving import QueryService
        from repro.serving.stats import MetricsRegistry

        registry = MetricsRegistry()
        with QueryService(router, metrics=registry, max_workers=2) as service:
            result = service.query(["a", "b"], algorithm="GKG", explain=True)
            assert result.ok
            assert result.explain["execution"]["engine"] == "scatter"
            oids = service.submit_mutation(
                inserts=[(42.0, 42.0, ["a", "b"])]
            ).result()
            assert router.shard_of(oids[0]) == router.route(42.0, 42.0)
            rendered = registry.to_prometheus()
            assert 'mck_fanout_shards_total{outcome="answered"}' in rendered

    def test_mutation_listeners_fire_across_shards(self, router):
        events = []
        router.add_mutation_listener(
            lambda op, oid, kws: events.append((op, oid))
        )
        a = router.insert(1.0, 1.0, ["a"])
        b = router.insert(99.0, 99.0, ["b"])
        assert ("insert", a) in events and ("insert", b) in events
        router.remove_mutation_listener(events.append)  # unknown: no-op

    def test_lag_metrics_published(self):
        from repro.serving.stats import MetricsRegistry

        registry = MetricsRegistry()
        with ReplicatedShardRouter(
            _records(30, seed=9),
            n_shards=2,
            replicas_per_shard=1,
            metrics=registry,
        ) as router:
            router.insert(1.0, 1.0, ["a"])
            router.sync_replicas()
            rendered = registry.to_prometheus()
            assert 'mck_replication_lag_records{replica="0",shard="0"}' in rendered
            assert 'mck_replication_lag_seconds{replica="0",shard="0"}' in rendered
            assert "mck_shard_objects" in rendered
