"""WalTailer: incremental reads, torn tails, rotation, disappearance."""

from __future__ import annotations

import os

from repro.live.wal import WriteAheadLog
from repro.replication.tailer import WalTailer


def _wal(tmp_path, name="w.log", **kwargs):
    return WriteAheadLog(str(tmp_path / name), sync_every=1, **kwargs)


class TestIncremental:
    def test_missing_file_is_empty(self, tmp_path):
        assert WalTailer(str(tmp_path / "absent.log")).poll() == []

    def test_poll_returns_only_new_records(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append_insert(0, 1.0, 2.0, ["a"])
        wal.flush()
        tailer = WalTailer(wal.path)
        first = tailer.poll()
        assert [r.seq for r in first] == [1]
        assert tailer.poll() == []  # nothing new
        wal.append_insert(1, 3.0, 4.0, ["b"])
        wal.append_delete(0)
        wal.flush()
        second = tailer.poll()
        assert [(r.seq, r.op) for r in second] == [(2, "insert"), (3, "delete")]
        wal.close()

    def test_record_payload_round_trips(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append_insert(7, 1.5, -2.5, ["cafe", "park"])
        wal.flush()
        (record,) = WalTailer(wal.path).poll()
        assert record.oid == 7
        assert (record.x, record.y) == (1.5, -2.5)
        assert set(record.keywords) == {"cafe", "park"}
        wal.close()


class TestTornTail:
    def test_partial_last_line_not_returned_then_completed(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append_insert(0, 1.0, 1.0, ["a"])
        wal.append_insert(1, 2.0, 2.0, ["b"])
        wal.flush()
        wal.close()
        path = str(tmp_path / "w.log")
        full = open(path, "rb").read()
        lines = full.splitlines(keepends=True)
        # Ship the first record plus half of the second.
        torn = lines[0] + lines[1][: len(lines[1]) // 2]
        copy = str(tmp_path / "shipped.log")
        with open(copy, "wb") as fh:
            fh.write(torn)
        tailer = WalTailer(copy)
        assert [r.seq for r in tailer.poll()] == [1]
        # The write completes; only the completed record is new.
        with open(copy, "wb") as fh:
            fh.write(full)
        assert [r.seq for r in tailer.poll()] == [2]

    def test_corrupt_line_stops_without_advancing(self, tmp_path):
        path = str(tmp_path / "bad.log")
        with open(path, "wb") as fh:
            fh.write(b"deadbeef {\"garbage\": true}\n")
        tailer = WalTailer(path)
        assert tailer.poll() == []
        assert tailer.offset == 0


class TestRotation:
    def test_truncate_through_restarts_from_top(self, tmp_path):
        wal = _wal(tmp_path)
        for i in range(4):
            wal.append_insert(i, float(i), float(i), ["a"])
        wal.flush()
        tailer = WalTailer(wal.path)
        assert len(tailer.poll()) == 4
        wal.truncate_through(2)  # rotation: new inode, smaller file
        wal.flush()
        again = tailer.poll()
        # The whole rewritten file comes back; consumers dedup by seq.
        assert [r.seq for r in again] == [3, 4]
        wal.close()

    def test_disappeared_file_reads_empty_and_resets(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append_insert(0, 0.0, 0.0, ["a"])
        wal.flush()
        tailer = WalTailer(wal.path)
        assert len(tailer.poll()) == 1
        wal.close()
        os.unlink(wal.path)
        assert tailer.poll() == []
        assert tailer.offset == 0
