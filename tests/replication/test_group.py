"""ReplicationGroup: shipping, durability, failover, fencing, bootstrap."""

from __future__ import annotations

import os

import pytest

from repro.exceptions import FencedWriteError, ReplicationError
from repro.live import LiveMCKEngine
from repro.replication import ReplicationGroup, read_epoch_entries
from repro.replication.fencing import wal_name

SEED = [
    (0, 0.0, 0.0, ["a"]),
    (1, 5.0, 5.0, ["b"]),
    (2, 10.0, 0.0, ["c", "a"]),
    (3, 0.0, 10.0, ["b", "c"]),
]

ALGORITHMS = ["GKG", "SKEC", "SKECa", "SKECa+", "EXACT"]


def _twin_from(group: ReplicationGroup) -> LiveMCKEngine:
    """A single-engine twin holding the group's current live set."""
    records = [
        (x, y, kw) for _oid, x, y, kw in group.primary_engine.dataset.records()
    ]
    return LiveMCKEngine.from_records(records)


class TestShipping:
    def test_replicas_catch_up_and_lag_goes_to_zero(self, tmp_path):
        with ReplicationGroup(SEED, dir=str(tmp_path), n_replicas=2) as group:
            group.insert(1.0, 1.0, ["d"])
            group.insert(2.0, 2.0, ["e"])
            group.delete(0)
            assert group.sync_replicas() == 2 * 3
            for _rid, records, seconds in group.lag_watermarks():
                assert records == 0
                assert seconds == 0.0
            for replica in group.replicas:
                assert len(replica.engine) == len(group)
                assert replica.applied_seq == group.acked_seq

    def test_replica_answers_match_primary(self, tmp_path):
        with ReplicationGroup(SEED, dir=str(tmp_path), n_replicas=1) as group:
            group.insert(3.0, 3.0, ["a", "b"])
            group.sync_replicas()
            replica = group.replicas[0]
            for algorithm in ALGORITHMS:
                p = group.primary_engine.query(["a", "b"], algorithm=algorithm)
                r = replica.engine.query(["a", "b"], algorithm=algorithm)
                assert p.object_ids == r.object_ids
                assert p.diameter == pytest.approx(r.diameter)

    def test_seed_records_reach_replicas_via_bootstrap(self, tmp_path):
        # Seed records never hit the WAL; replicas must see them anyway.
        with ReplicationGroup(SEED, dir=str(tmp_path), n_replicas=1) as group:
            assert len(group.replicas[0].engine) == len(SEED)


class TestDurability:
    def test_acked_write_survives_abandon(self, tmp_path):
        group = ReplicationGroup(
            SEED, dir=str(tmp_path), n_replicas=0, wal_sync_every=0
        )
        oid = group.insert(7.0, 7.0, ["d"])  # acked => flushed
        group.crash_primary()  # SIGKILL: no final group commit
        group.close()
        with ReplicationGroup([], dir=str(tmp_path), n_replicas=0) as again:
            assert oid in again.primary_engine.dataset
            assert len(again) == len(SEED) + 1

    def test_reopen_after_checkpoint_and_truncation(self, tmp_path):
        group = ReplicationGroup(SEED, dir=str(tmp_path), n_replicas=0)
        for i in range(8):
            group.insert(float(i), float(i), ["d"])
        group.checkpoint_bootstrap()
        group.insert(99.0, 99.0, ["e"])
        group.checkpoint_bootstrap()  # second segment; truncates the log
        group.close()
        with ReplicationGroup([], dir=str(tmp_path), n_replicas=1) as again:
            assert len(again) == len(SEED) + 9
            again.sync_replicas()
            assert len(again.replicas[0].engine) == len(again)


class TestFailover:
    def test_promote_elects_most_caught_up_replica(self, tmp_path):
        with ReplicationGroup(SEED, dir=str(tmp_path), n_replicas=2) as group:
            group.insert(1.0, 1.0, ["d"])
            group.sync_replicas()
            group.crash_primary()
            epoch = group.promote()
            assert epoch == 2
            assert not group.primary_dead()
            assert len(group) == len(SEED) + 1
            # Redundancy was backfilled.
            assert len(group.replicas) == 2

    def test_apply_after_crash_promotes_automatically(self, tmp_path):
        with ReplicationGroup(SEED, dir=str(tmp_path), n_replicas=1) as group:
            group.insert(1.0, 1.0, ["d"])
            group.sync_replicas()
            group.crash_primary()
            oid = group.insert(2.0, 2.0, ["e"])  # one retry, not an error
            assert group.epoch == 2
            assert oid in group.primary_engine.dataset

    def test_post_failover_answers_match_never_crashed_twin(self, tmp_path):
        with ReplicationGroup(SEED, dir=str(tmp_path), n_replicas=1) as group:
            group.insert(3.0, 4.0, ["a", "c"])
            group.sync_replicas()
            group.crash_primary()
            group.insert(6.0, 6.0, ["b", "d"])  # auto-failover write
            twin = _twin_from(group)
            try:
                for algorithm in ALGORITHMS:
                    for keywords in (["a", "b"], ["a", "b", "c"], ["b", "d"]):
                        got = group.query(
                            keywords, algorithm=algorithm, prefer="primary"
                        )
                        want = twin.query(keywords, algorithm=algorithm)
                        assert got.diameter == pytest.approx(want.diameter), (
                            algorithm,
                            keywords,
                        )
            finally:
                twin.close()

    def test_unsynced_tail_is_drained_into_promoted_replica(self, tmp_path):
        with ReplicationGroup(SEED, dir=str(tmp_path), n_replicas=1) as group:
            oid = group.insert(1.0, 1.0, ["d"])
            # Deliberately do NOT sync: the replica lags behind the kill.
            group.crash_primary()
            group.promote()
            assert oid in group.primary_engine.dataset

    def test_promote_without_replicas_raises(self, tmp_path):
        with ReplicationGroup(SEED, dir=str(tmp_path), n_replicas=0) as group:
            with pytest.raises(ReplicationError):
                group.promote()


class TestFencing:
    def test_stale_handle_is_rejected(self, tmp_path):
        with ReplicationGroup(SEED, dir=str(tmp_path), n_replicas=1) as group:
            zombie = group.primary_handle()
            group.sync_replicas()
            group.promote()  # proactive failover: old primary still alive
            with pytest.raises(FencedWriteError):
                zombie.insert(9.0, 9.0, ["z"])
            assert group.fenced_writes == 1

    def test_zombie_appends_are_durably_excluded(self, tmp_path):
        from repro.live.wal import WriteAheadLog

        group = ReplicationGroup(SEED, dir=str(tmp_path), n_replicas=1)
        group.insert(1.0, 1.0, ["d"])
        group.sync_replicas()
        group.promote()
        n_after_failover = len(group)
        # The zombie writes straight to its old epoch WAL, bypassing the
        # group (simulating a partitioned process that never heard about
        # the promotion).  Its record's seq falls beyond the branch cap.
        zombie_wal = WriteAheadLog(str(tmp_path / wal_name(1)), sync_every=1)
        zombie_wal.append_insert(12345, 50.0, 50.0, ["zombie"])
        zombie_wal.close()
        group.close()
        with ReplicationGroup([], dir=str(tmp_path), n_replicas=1) as again:
            assert 12345 not in again.primary_engine.dataset
            assert len(again) == n_after_failover
            again.sync_replicas()
            assert 12345 not in again.replicas[0].engine.dataset

    def test_epoch_history_grows_on_disk(self, tmp_path):
        with ReplicationGroup(SEED, dir=str(tmp_path), n_replicas=1) as group:
            group.insert(1.0, 1.0, ["d"])
            group.sync_replicas()
            group.promote()
            entries = read_epoch_entries(str(tmp_path))
            assert [e.epoch for e in entries] == [1, 2]
            assert entries[1].start_after == 1
            assert os.path.exists(str(tmp_path / wal_name(2)))


class TestGapRecovery:
    def test_lagging_replica_rebootstraps_after_truncation(self, tmp_path):
        with ReplicationGroup(SEED, dir=str(tmp_path), n_replicas=1) as group:
            replica = group.replicas[0]
            for i in range(6):
                group.insert(float(i), float(i), ["d"])
            # Two checkpoints truncate the shipped log past the replica's
            # cursor (it never polled).
            group.checkpoint_bootstrap()
            for i in range(6):
                group.insert(float(i), 20.0 + i, ["e"])
            group.checkpoint_bootstrap()
            assert replica.applied_seq == 0
            group.sync_replicas()  # gap -> rebootstrap -> retail, not an error
            assert replica.rebootstraps == 1
            assert len(replica.engine) == len(group)
            assert replica.applied_seq == group.acked_seq
