"""Write-ahead log: framing, replay, torn tails, crash recovery."""

import os

import pytest

from repro.exceptions import WALError
from repro.live.wal import WalRecord, WriteAheadLog, read_wal


def _wal(tmp_path, name="test.wal", **kwargs):
    return WriteAheadLog(str(tmp_path / name), **kwargs)


def _write_three(tmp_path, name="test.wal"):
    """Three records through a closed (fully flushed) log; returns the path."""
    path = str(tmp_path / name)
    with WriteAheadLog(path, sync_every=0) as wal:
        wal.append_insert(0, 1.0, 2.0, ["cafe", "bar"])
        wal.append_insert(1, 3.0, 4.0, ["shop"])
        wal.append_delete(0)
    return path


class TestRecord:
    def test_payload_roundtrip_insert(self):
        rec = WalRecord(seq=7, op="insert", oid=3, x=1.5, y=-2.5,
                        keywords=("a", "b"))
        assert WalRecord.from_payload(rec.payload()) == rec

    def test_payload_roundtrip_delete(self):
        rec = WalRecord(seq=2, op="delete", oid=9)
        back = WalRecord.from_payload(rec.payload())
        assert back == rec
        assert back.keywords == ()

    def test_unknown_op_rejected(self):
        with pytest.raises(WALError):
            WalRecord.from_payload({"seq": 1, "op": "truncate", "oid": 0})


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        path = _write_three(tmp_path)
        records, valid_bytes, torn = read_wal(path)
        assert torn is None
        assert valid_bytes == os.path.getsize(path)
        assert [r.op for r in records] == ["insert", "insert", "delete"]
        assert [r.seq for r in records] == [1, 2, 3]
        assert records[0].keywords == ("bar", "cafe") or records[0].keywords == (
            "cafe", "bar"
        )

    def test_missing_file_is_empty_untorn(self, tmp_path):
        records, valid_bytes, torn = read_wal(str(tmp_path / "absent.wal"))
        assert records == [] and valid_bytes == 0 and torn is None

    def test_records_written_excludes_recovered(self, tmp_path):
        path = _write_three(tmp_path)
        with WriteAheadLog(path, sync_every=0) as wal:
            assert len(wal.recovered) == 3
            assert wal.records_written == 0
            wal.append_delete(1)
            assert wal.records_written == 1
            assert wal.last_seq == 4

    def test_sequence_continues_across_reopen(self, tmp_path):
        path = _write_three(tmp_path)
        with WriteAheadLog(path, sync_every=0) as wal:
            rec = wal.append_insert(5, 0.0, 0.0, ["x"])
            assert rec.seq == 4
        records, _bytes, torn = read_wal(path)
        assert torn is None
        assert [r.seq for r in records] == [1, 2, 3, 4]

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = _wal(tmp_path, sync_every=0)
        wal.close()
        with pytest.raises(WALError):
            wal.append_insert(0, 0.0, 0.0, ["a"])
        wal.close()  # idempotent
        wal.flush()  # no-op after close


class TestTornTail:
    """Every torn-tail shape: replay stops at the last valid record."""

    def test_truncated_mid_record(self, tmp_path):
        path = _write_three(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 5)
        records, _bytes, torn = read_wal(path)
        assert len(records) == 2
        assert torn is not None

    def test_missing_trailing_newline(self, tmp_path):
        path = _write_three(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 1)
        records, _bytes, torn = read_wal(path)
        assert len(records) == 2
        assert "truncated" in torn

    def test_crc_mismatch(self, tmp_path):
        path = _write_three(tmp_path)
        data = open(path, "rb").read()
        lines = data.splitlines(keepends=True)
        # Flip one byte inside the last record's JSON body.
        corrupt = bytearray(lines[-1])
        corrupt[12] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(b"".join(lines[:-1]) + bytes(corrupt))
        records, _bytes, torn = read_wal(path)
        assert len(records) == 2
        assert torn == "CRC mismatch"

    def test_garbage_tail(self, tmp_path):
        path = _write_three(tmp_path)
        with open(path, "ab") as fh:
            fh.write(b"\x00\xffgarbage-not-a-record\n")
        records, _bytes, torn = read_wal(path)
        assert len(records) == 3
        assert torn is not None

    def test_valid_crc_bad_json_body(self, tmp_path):
        import zlib
        path = _write_three(tmp_path)
        body = b"{not json"
        crc = zlib.crc32(body) & 0xFFFFFFFF
        with open(path, "ab") as fh:
            fh.write(b"%08x %s\n" % (crc, body))
        records, _bytes, torn = read_wal(path)
        assert len(records) == 3
        assert torn == "undecodable record body"

    def test_sequence_gap_stops_replay(self, tmp_path):
        path = _write_three(tmp_path)
        # Append a record whose seq skips ahead (simulates a second writer).
        from repro.live.wal import _encode
        rogue = WalRecord(seq=9, op="delete", oid=1)
        with open(path, "ab") as fh:
            fh.write(_encode(rogue))
        records, _bytes, torn = read_wal(path)
        assert len(records) == 3
        assert "sequence gap" in torn

    def test_open_truncates_torn_tail(self, tmp_path):
        path = _write_three(tmp_path)
        whole = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(whole - 5)
        torn_size = os.path.getsize(path)
        wal = WriteAheadLog(path, sync_every=0)
        assert wal.torn_reason is not None
        assert len(wal.recovered) == 2
        assert os.path.getsize(path) < torn_size  # torn bytes gone
        # Appending after recovery produces a cleanly replayable log.
        wal.append_insert(7, 5.0, 5.0, ["fresh"])
        wal.close()
        records, _bytes, torn = read_wal(path)
        assert torn is None
        assert [r.seq for r in records] == [1, 2, 3]
        assert records[-1].oid == 7


class TestTornTailDurability:
    def test_torn_tail_truncate_fsyncs_file_and_directory(
        self, tmp_path, monkeypatch
    ):
        # Regression: the open-time truncate once skipped fsync entirely,
        # so a second crash right after recovery could resurrect the torn
        # bytes from the page cache and poison the *next* replay.  Count
        # every fsync: the truncate must sync the file AND its directory
        # before the log reopens for append.
        path = _write_three(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 5)

        real_fsync = os.fsync
        synced = {"files": 0, "dirs": 0}

        def counting_fsync(fd):
            import stat

            if stat.S_ISDIR(os.fstat(fd).st_mode):
                synced["dirs"] += 1
            else:
                synced["files"] += 1
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", counting_fsync)
        wal = WriteAheadLog(path, sync_every=0)
        assert wal.torn_reason is not None
        assert synced["files"] >= 1  # the truncated file itself
        assert synced["dirs"] >= 1  # its directory entry
        wal.close()


class TestTruncateThrough:
    def test_drops_covered_prefix_keeps_tail(self, tmp_path):
        path = _write_three(tmp_path)
        with WriteAheadLog(path, sync_every=0) as wal:
            kept = wal.truncate_through(2)
            assert kept == 1
            wal.append_insert(9, 9.0, 9.0, ["later"])
        records, _bytes, torn = read_wal(path)
        assert torn is None
        assert [r.seq for r in records] == [3, 4]

    def test_truncate_everything_then_append(self, tmp_path):
        path = _write_three(tmp_path)
        with WriteAheadLog(path, sync_every=0) as wal:
            assert wal.truncate_through(99) == 0
            assert os.path.getsize(path) == 0
            rec = wal.append_insert(9, 0.0, 0.0, ["x"])
            assert rec.seq == 4  # sequence never restarts
        records, _bytes, torn = read_wal(path)
        assert torn is None
        assert [r.seq for r in records] == [4]

    def test_closed_log_rejects_truncate(self, tmp_path):
        path = _write_three(tmp_path)
        wal = WriteAheadLog(path, sync_every=0)
        wal.close()
        with pytest.raises(WALError):
            wal.truncate_through(1)

    @pytest.mark.parametrize("stage", ["write_tmp", "rename", "fsync_dir"])
    def test_rotation_interrupted_at_every_stage_stays_replayable(
        self, tmp_path, stage
    ):
        # Kill-anywhere: whichever step of the rotation dies, what is on
        # disk replays cleanly to either the old complete log or the new
        # complete tail — never a torn hybrid.
        from repro.testing import faults
        from repro.testing.faults import SimulatedCrash

        path = _write_three(tmp_path)
        wal = WriteAheadLog(path, sync_every=0)
        full = [r.seq for r in read_wal(path)[0]]

        def _match(stage_ctx=stage):
            def check(stage, **_ctx):
                return stage == stage_ctx

            return check

        with faults.injected(
            "live.wal.rotate", error=SimulatedCrash, match=_match()
        ):
            with pytest.raises(SimulatedCrash):
                wal.truncate_through(2)
        # Abandon the handle (the process is "dead"); replay from disk.
        records, _bytes, torn = read_wal(path)
        assert torn is None
        seqs = [r.seq for r in records]
        assert seqs in (full, [3]), seqs
        # A fresh open appends at the original sequence either way.
        with WriteAheadLog(path, sync_every=0, start_seq=3) as wal2:
            rec = wal2.append_delete(1)
            assert rec.seq == 4
        # No stray temp file poisons the directory.
        leftover = tmp_path / "test.wal.rotate"
        if leftover.exists():
            # a crash before the rename legitimately leaves the tmp file;
            # a reopened log must simply ignore it
            assert read_wal(str(leftover))[2] is None


class TestStartSeq:
    def test_empty_rotated_log_continues_sequence(self, tmp_path):
        # After checkpointing, the covered prefix lives in a segment and
        # the log may be empty; appends must continue, not restart at 1.
        path = str(tmp_path / "rotated.wal")
        with WriteAheadLog(path, sync_every=0, start_seq=41) as wal:
            assert wal.last_seq == 41
            rec = wal.append_insert(7, 0.0, 0.0, ["a"])
            assert rec.seq == 42
        records, _bytes, torn = read_wal(path)
        assert torn is None
        assert [r.seq for r in records] == [42]

    def test_recovered_records_win_over_smaller_start_seq(self, tmp_path):
        path = _write_three(tmp_path)
        with WriteAheadLog(path, sync_every=0, start_seq=1) as wal:
            assert wal.last_seq == 3  # max(recovered, start_seq)

    def test_replay_anchors_on_first_record_not_one(self, tmp_path):
        # A rotated log legitimately starts mid-sequence.
        path = str(tmp_path / "tail.wal")
        with WriteAheadLog(path, sync_every=0, start_seq=10) as wal:
            wal.append_insert(1, 0.0, 0.0, ["a"])
            wal.append_delete(1)
        records, _bytes, torn = read_wal(path)
        assert torn is None
        assert [r.seq for r in records] == [11, 12]


class TestGroupCommit:
    def test_auto_flush_every_sync_every(self, tmp_path, monkeypatch):
        syncs = []
        monkeypatch.setattr(os, "fsync", lambda fd: syncs.append(fd))
        wal = _wal(tmp_path, sync_every=3)
        for i in range(7):
            wal.append_insert(i, 0.0, 0.0, ["a"])
        assert len(syncs) == 2  # after records 3 and 6
        wal.close()  # flush() on close fsyncs the remainder
        assert len(syncs) == 3

    def test_sync_every_zero_skips_only_per_append_fsync(
        self, tmp_path, monkeypatch
    ):
        # Regression: flush()/close() once skipped fsync entirely under
        # sync_every=0, making close() silently non-durable despite the
        # module's "always on flush/close" promise.  Batching governs the
        # automatic per-append cadence only.
        syncs = []
        monkeypatch.setattr(os, "fsync", lambda fd: syncs.append(fd))
        wal = _wal(tmp_path, sync_every=0)
        for i in range(10):
            wal.append_insert(i, 0.0, 0.0, ["a"])
        assert syncs == []  # no automatic group commit in this mode
        wal.flush()
        assert len(syncs) == 1  # explicit flush is always durable
        wal.close()
        assert len(syncs) == 2  # close() flushes (and fsyncs) once more
        wal.close()
        assert len(syncs) == 2  # idempotent: closed log never re-syncs
