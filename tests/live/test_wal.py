"""Write-ahead log: framing, replay, torn tails, crash recovery."""

import os

import pytest

from repro.exceptions import WALError
from repro.live.wal import WalRecord, WriteAheadLog, read_wal


def _wal(tmp_path, name="test.wal", **kwargs):
    return WriteAheadLog(str(tmp_path / name), **kwargs)


def _write_three(tmp_path, name="test.wal"):
    """Three records through a closed (fully flushed) log; returns the path."""
    path = str(tmp_path / name)
    with WriteAheadLog(path, sync_every=0) as wal:
        wal.append_insert(0, 1.0, 2.0, ["cafe", "bar"])
        wal.append_insert(1, 3.0, 4.0, ["shop"])
        wal.append_delete(0)
    return path


class TestRecord:
    def test_payload_roundtrip_insert(self):
        rec = WalRecord(seq=7, op="insert", oid=3, x=1.5, y=-2.5,
                        keywords=("a", "b"))
        assert WalRecord.from_payload(rec.payload()) == rec

    def test_payload_roundtrip_delete(self):
        rec = WalRecord(seq=2, op="delete", oid=9)
        back = WalRecord.from_payload(rec.payload())
        assert back == rec
        assert back.keywords == ()

    def test_unknown_op_rejected(self):
        with pytest.raises(WALError):
            WalRecord.from_payload({"seq": 1, "op": "truncate", "oid": 0})


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        path = _write_three(tmp_path)
        records, valid_bytes, torn = read_wal(path)
        assert torn is None
        assert valid_bytes == os.path.getsize(path)
        assert [r.op for r in records] == ["insert", "insert", "delete"]
        assert [r.seq for r in records] == [1, 2, 3]
        assert records[0].keywords == ("bar", "cafe") or records[0].keywords == (
            "cafe", "bar"
        )

    def test_missing_file_is_empty_untorn(self, tmp_path):
        records, valid_bytes, torn = read_wal(str(tmp_path / "absent.wal"))
        assert records == [] and valid_bytes == 0 and torn is None

    def test_records_written_excludes_recovered(self, tmp_path):
        path = _write_three(tmp_path)
        with WriteAheadLog(path, sync_every=0) as wal:
            assert len(wal.recovered) == 3
            assert wal.records_written == 0
            wal.append_delete(1)
            assert wal.records_written == 1
            assert wal.last_seq == 4

    def test_sequence_continues_across_reopen(self, tmp_path):
        path = _write_three(tmp_path)
        with WriteAheadLog(path, sync_every=0) as wal:
            rec = wal.append_insert(5, 0.0, 0.0, ["x"])
            assert rec.seq == 4
        records, _bytes, torn = read_wal(path)
        assert torn is None
        assert [r.seq for r in records] == [1, 2, 3, 4]

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = _wal(tmp_path, sync_every=0)
        wal.close()
        with pytest.raises(WALError):
            wal.append_insert(0, 0.0, 0.0, ["a"])
        wal.close()  # idempotent
        wal.flush()  # no-op after close


class TestTornTail:
    """Every torn-tail shape: replay stops at the last valid record."""

    def test_truncated_mid_record(self, tmp_path):
        path = _write_three(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 5)
        records, _bytes, torn = read_wal(path)
        assert len(records) == 2
        assert torn is not None

    def test_missing_trailing_newline(self, tmp_path):
        path = _write_three(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 1)
        records, _bytes, torn = read_wal(path)
        assert len(records) == 2
        assert "truncated" in torn

    def test_crc_mismatch(self, tmp_path):
        path = _write_three(tmp_path)
        data = open(path, "rb").read()
        lines = data.splitlines(keepends=True)
        # Flip one byte inside the last record's JSON body.
        corrupt = bytearray(lines[-1])
        corrupt[12] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(b"".join(lines[:-1]) + bytes(corrupt))
        records, _bytes, torn = read_wal(path)
        assert len(records) == 2
        assert torn == "CRC mismatch"

    def test_garbage_tail(self, tmp_path):
        path = _write_three(tmp_path)
        with open(path, "ab") as fh:
            fh.write(b"\x00\xffgarbage-not-a-record\n")
        records, _bytes, torn = read_wal(path)
        assert len(records) == 3
        assert torn is not None

    def test_valid_crc_bad_json_body(self, tmp_path):
        import zlib
        path = _write_three(tmp_path)
        body = b"{not json"
        crc = zlib.crc32(body) & 0xFFFFFFFF
        with open(path, "ab") as fh:
            fh.write(b"%08x %s\n" % (crc, body))
        records, _bytes, torn = read_wal(path)
        assert len(records) == 3
        assert torn == "undecodable record body"

    def test_sequence_gap_stops_replay(self, tmp_path):
        path = _write_three(tmp_path)
        # Append a record whose seq skips ahead (simulates a second writer).
        from repro.live.wal import _encode
        rogue = WalRecord(seq=9, op="delete", oid=1)
        with open(path, "ab") as fh:
            fh.write(_encode(rogue))
        records, _bytes, torn = read_wal(path)
        assert len(records) == 3
        assert "sequence gap" in torn

    def test_open_truncates_torn_tail(self, tmp_path):
        path = _write_three(tmp_path)
        whole = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(whole - 5)
        torn_size = os.path.getsize(path)
        wal = WriteAheadLog(path, sync_every=0)
        assert wal.torn_reason is not None
        assert len(wal.recovered) == 2
        assert os.path.getsize(path) < torn_size  # torn bytes gone
        # Appending after recovery produces a cleanly replayable log.
        wal.append_insert(7, 5.0, 5.0, ["fresh"])
        wal.close()
        records, _bytes, torn = read_wal(path)
        assert torn is None
        assert [r.seq for r in records] == [1, 2, 3]
        assert records[-1].oid == 7


class TestGroupCommit:
    def test_auto_flush_every_sync_every(self, tmp_path, monkeypatch):
        syncs = []
        monkeypatch.setattr(os, "fsync", lambda fd: syncs.append(fd))
        wal = _wal(tmp_path, sync_every=3)
        for i in range(7):
            wal.append_insert(i, 0.0, 0.0, ["a"])
        assert len(syncs) == 2  # after records 3 and 6
        wal.close()  # flush() on close fsyncs the remainder
        assert len(syncs) == 3

    def test_sync_every_zero_skips_only_per_append_fsync(
        self, tmp_path, monkeypatch
    ):
        # Regression: flush()/close() once skipped fsync entirely under
        # sync_every=0, making close() silently non-durable despite the
        # module's "always on flush/close" promise.  Batching governs the
        # automatic per-append cadence only.
        syncs = []
        monkeypatch.setattr(os, "fsync", lambda fd: syncs.append(fd))
        wal = _wal(tmp_path, sync_every=0)
        for i in range(10):
            wal.append_insert(i, 0.0, 0.0, ["a"])
        assert syncs == []  # no automatic group commit in this mode
        wal.flush()
        assert len(syncs) == 1  # explicit flush is always durable
        wal.close()
        assert len(syncs) == 2  # close() flushes (and fsyncs) once more
        wal.close()
        assert len(syncs) == 2  # idempotent: closed log never re-syncs
