"""Sharded live store: routing, disjoint oid ranges, batch reassembly."""

import pytest

from repro.exceptions import DatasetError, InfeasibleQueryError
from repro.live import ShardedLiveStore

# Four spatial clusters, one per quadrant of a [0,100]^2 extent, so a
# 4-shard (2x2) grid puts each cluster in its own shard.
RECORDS = [
    (10.0, 10.0, ["shrine"]),
    (12.0, 10.0, ["shop"]),
    (90.0, 10.0, ["restaurant"]),
    (88.0, 12.0, ["shop"]),
    (10.0, 90.0, ["hotel"]),
    (90.0, 90.0, ["cafe"]),
    (0.0, 0.0, ["museum"]),
    (100.0, 100.0, ["bar"]),
]

STRIDE = 1 << 20  # small stride keeps test oids readable


@pytest.fixture()
def store():
    s = ShardedLiveStore(RECORDS, n_shards=4, oid_stride=STRIDE)
    yield s
    s.close()


class TestRouting:
    def test_bootstrap_objects_land_in_owner_shards(self, store):
        assert len(store) == len(RECORDS)
        assert sum(store.shard_sizes()) == len(RECORDS)
        for x, y, _kw in RECORDS:
            shard = store.route(x, y)
            assert 0 <= shard < store.n_shards

    def test_insert_routes_by_location(self, store):
        sizes = store.shard_sizes()
        oid = store.insert(11.0, 11.0, ["temple"])
        shard = store.route(11.0, 11.0)
        assert store.shard_of(oid) == shard
        grown = store.shard_sizes()
        assert grown[shard] == sizes[shard] + 1
        assert sum(grown) == sum(sizes) + 1

    def test_oid_ranges_are_disjoint_per_shard(self, store):
        oids = [
            store.insert(x, y, ["probe"])
            for x, y in [(5.0, 5.0), (95.0, 5.0), (5.0, 95.0), (95.0, 95.0)]
        ]
        shards = [store.shard_of(oid) for oid in oids]
        assert len(set(shards)) == 4  # one insert per quadrant, per shard
        for oid in oids:
            assert store.shard_of(oid) == oid // STRIDE

    def test_delete_routes_to_owner(self, store):
        oid = store.insert(11.0, 11.0, ["temple"])
        store.delete(oid)
        with pytest.raises(DatasetError):
            store.shard_of(oid)
        with pytest.raises(DatasetError):
            store.delete(oid)

    def test_unknown_oid_raises(self, store):
        with pytest.raises(DatasetError):
            store.shard_of(10 * STRIDE + 7)


class TestBatch:
    def test_new_oids_come_back_in_insert_order(self, store):
        points = [(5.0, 5.0), (95.0, 95.0), (6.0, 6.0), (96.0, 5.0)]
        oids = store.apply_batch(
            inserts=[(x, y, ["probe"]) for x, y in points]
        )
        assert len(oids) == 4
        for oid, (x, y) in zip(oids, points):
            assert store.shard_of(oid) == store.route(x, y)

    def test_mixed_batch_updates_ownership(self, store):
        a = store.insert(5.0, 5.0, ["probe"])
        oids = store.apply_batch(
            inserts=[(95.0, 95.0, ["probe"])], deletes=[a]
        )
        assert len(oids) == 1
        with pytest.raises(DatasetError):
            store.shard_of(a)
        assert store.shard_of(oids[0]) == store.route(95.0, 95.0)

    def test_cross_shard_batch_touches_each_shard_once(self, store):
        before = store.epochs()
        store.apply_batch(
            inserts=[(5.0, 5.0, ["probe"]), (6.0, 6.0, ["probe"]),
                     (95.0, 95.0, ["probe"])]
        )
        after = store.epochs()
        bumps = [b - a for a, b in zip(before, after)]
        assert sorted(bumps) == [0, 0, 1, 1]  # two shards, one epoch each


class TestQuery:
    def test_single_shard_answer_is_exact(self, store):
        group = store.query(["shrine", "shop"], algorithm="EXACT")
        assert group.diameter == pytest.approx(2.0)

    def test_best_feasible_shard_wins(self, store):
        # "shop" exists in two shards; pair it with a keyword unique to
        # the north-west cluster and the tight pairing must win.
        store.insert(12.5, 10.5, ["restaurant"])
        group = store.query(["shop", "restaurant"], algorithm="EXACT")
        assert group.diameter < 3.0

    def test_infeasible_everywhere_raises(self, store):
        with pytest.raises(InfeasibleQueryError):
            store.query(["shrine", "unicorn"], algorithm="EXACT")

    def test_mutations_visible_to_queries(self, store):
        store.insert(10.5, 10.5, ["onsen"])
        group = store.query(["shrine", "onsen"], algorithm="EXACT")
        assert group.diameter < 1.5


class TestWalPerShard:
    def test_each_shard_recovers_its_own_wal(self, tmp_path, store):
        wal_dir = str(tmp_path)
        with ShardedLiveStore(
            RECORDS, n_shards=4, oid_stride=STRIDE, wal_dir=wal_dir
        ) as s:
            nw = s.insert(11.0, 11.0, ["temple"])
            se = s.insert(91.0, 11.0, ["temple"])
            total = len(s)
        with ShardedLiveStore(
            RECORDS, n_shards=4, oid_stride=STRIDE, wal_dir=wal_dir
        ) as s:
            assert len(s) == total
            # Recovered objects were adopted back into the routing map.
            assert s.shard_of(nw) == s.route(11.0, 11.0)
            assert s.shard_of(se) == s.route(91.0, 11.0)
            group = s.query(["shrine", "temple"], algorithm="EXACT")
            assert nw in group.object_ids


def test_empty_bootstrap_rejected():
    with pytest.raises(DatasetError):
        ShardedLiveStore([], n_shards=4)


class TestDeterministicTieBreak:
    """Two shards holding equal-diameter feasible groups must not leave
    the winner to shard iteration order: the merge is (diameter, then
    lexicographic oids), so the same store answers identically no matter
    which shard produced its candidate first."""

    def _tied_store(self):
        # Identical-geometry pairs in the NW (shard 0) and SE (shard 1)
        # cells of the 2x2 grid: both cover {"tea", "soup"} at diameter
        # exactly 2.0.
        records = RECORDS + [
            (10.0, 10.0, ["tea"]),
            (12.0, 10.0, ["soup"]),
            (90.0, 10.0, ["tea"]),
            (88.0, 10.0, ["soup"]),
        ]
        return ShardedLiveStore(records, n_shards=4, oid_stride=STRIDE)

    def test_lowest_oid_group_wins_the_tie(self):
        with self._tied_store() as store:
            group = store.query(["tea", "soup"], algorithm="EXACT")
            assert group.diameter == pytest.approx(2.0)
            # Shard 0's oid range starts below shard 1's: the tie must
            # resolve to the lexicographically smaller oid tuple.
            assert all(oid < STRIDE for oid in group.object_ids)

    def test_answer_stable_across_repeated_queries(self):
        with self._tied_store() as store:
            first = store.query(["tea", "soup"], algorithm="EXACT")
            for _ in range(5):
                again = store.query(["tea", "soup"], algorithm="EXACT")
                assert again.object_ids == first.object_ids
                assert again.diameter == first.diameter

    def test_mutation_cannot_flip_an_equal_tie(self):
        # Inserting yet another equal-diameter pair in a *higher* shard
        # must not steal the answer from the lower-oid incumbent.
        with self._tied_store() as store:
            first = store.query(["tea", "soup"], algorithm="EXACT")
            store.insert(10.0, 90.0, ["tea"])
            store.insert(12.0, 90.0, ["soup"])
            again = store.query(["tea", "soup"], algorithm="EXACT")
            assert again.object_ids == first.object_ids
