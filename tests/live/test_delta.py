"""Delta overlay: copy-on-write semantics, merged views, rebase."""

import math

import pytest

from repro.core.objects import GeoObject
from repro.exceptions import DatasetError
from repro.live.base import SealedBase
from repro.live.delta import DeltaOverlay, LiveView

BASE_RECORDS = [
    (0, 0.0, 0.0, ["shrine"]),
    (1, 1.0, 1.0, ["shop"]),
    (2, 2.0, 0.5, ["restaurant", "shop"]),
    (3, 40.0, 40.0, ["hotel"]),
]


@pytest.fixture()
def base():
    return SealedBase.build(BASE_RECORDS, name="delta-test")


def _obj(oid, x, y, keywords):
    return GeoObject(oid, x, y, frozenset(keywords))


class TestCopyOnWrite:
    def test_with_insert_leaves_original_untouched(self):
        d0 = DeltaOverlay()
        d1 = d0.with_insert(_obj(10, 5.0, 5.0, ["cafe"]))
        assert d0.is_empty()
        assert d0.size == 0
        assert not d1.is_empty()
        assert 10 in d1.adds
        assert d1.holders_of("cafe") == frozenset({10})
        assert d0.holders_of("cafe") == frozenset()

    def test_with_delete_leaves_original_untouched(self):
        d0 = DeltaOverlay()
        d1 = d0.with_delete(1, ["shop"])
        assert d0.tombstones == frozenset()
        assert d1.tombstones == frozenset({1})
        assert d1.freq_delta["shop"] == -1

    def test_delete_of_own_add_cancels(self):
        d = DeltaOverlay().with_insert(_obj(10, 5.0, 5.0, ["cafe"]))
        d = d.with_delete(10, ["cafe"])
        assert 10 not in d.adds
        assert 10 in d.tombstones  # the trace survives for rebase safety
        assert d.holders_of("cafe") == frozenset()
        assert d.freq_delta["cafe"] == 0

    def test_double_insert_rejected(self):
        d = DeltaOverlay().with_insert(_obj(10, 0.0, 0.0, ["a"]))
        with pytest.raises(DatasetError):
            d.with_insert(_obj(10, 1.0, 1.0, ["b"]))

    def test_double_delete_rejected(self):
        d = DeltaOverlay().with_delete(1, ["shop"])
        with pytest.raises(DatasetError):
            d.with_delete(1, ["shop"])

    def test_batch_is_one_step(self):
        d = DeltaOverlay().with_batch(
            inserts=[_obj(10, 0.0, 0.0, ["a"]), _obj(11, 1.0, 1.0, ["a", "b"])],
            deletes=[(1, ("shop",))],
        )
        assert d.size == 3
        assert d.holders_of("a") == frozenset({10, 11})
        assert d.freq_delta == {"a": 2, "b": 1, "shop": -1}

    def test_from_state_matches_sequential_build(self, base):
        adds = {
            10: _obj(10, 3.0, 3.0, ["cafe"]),
            11: _obj(11, 4.0, 4.0, ["cafe", "shop"]),
        }
        sequential = (
            DeltaOverlay()
            .with_insert(adds[10])
            .with_insert(adds[11])
            .with_delete(2, tuple(sorted(base[2].keywords)))
        )
        bulk = DeltaOverlay.from_state(adds, {2}, base)
        assert bulk.adds == sequential.adds
        assert bulk.tombstones == sequential.tombstones
        assert bulk.keyword_map == sequential.keyword_map
        assert bulk.freq_delta == sequential.freq_delta

    def test_from_state_rejects_add_and_tombstone_overlap(self, base):
        with pytest.raises(DatasetError):
            DeltaOverlay.from_state({2: _obj(2, 0.0, 0.0, ["x"])}, {2}, base)


class TestLiveView:
    def test_merged_membership(self, base):
        delta = (
            DeltaOverlay()
            .with_insert(_obj(10, 5.0, 5.0, ["cafe"]))
            .with_delete(1, ("shop",))
        )
        view = LiveView(base, delta)
        assert len(view) == 4  # 4 base - 1 tombstone + 1 add
        assert 0 in view and 10 in view
        assert 1 not in view
        assert view.get(1) is None
        with pytest.raises(KeyError):
            view[1]
        assert view.live_oids() == [0, 2, 3, 10]
        assert {obj.oid for obj in view} == {0, 2, 3, 10}

    def test_records_roundtrip_through_seal(self, base):
        delta = (
            DeltaOverlay()
            .with_insert(_obj(10, 5.0, 5.0, ["cafe"]))
            .with_delete(0, ("shrine",))
        )
        view = LiveView(base, delta)
        resealed = SealedBase.build(view.records(), name="resealed")
        assert sorted(resealed.objects) == view.live_oids()
        assert resealed[10].keywords == frozenset({"cafe"})

    def test_vocabulary_extends_base_ids(self, base):
        delta = DeltaOverlay().with_insert(_obj(10, 5.0, 5.0, ["zoo", "cafe"]))
        view = LiveView(base, delta)
        vocab = view.vocabulary
        # Base term ids must be unchanged by the overlay.
        for term in ("shrine", "shop", "restaurant", "hotel"):
            assert vocab.id_of(term) == base.vocabulary.id_of(term)
        # Delta-only terms get fresh ids past the base vocabulary.
        for term in ("cafe", "zoo"):
            assert term in vocab
            tid = vocab.id_of(term)
            assert tid >= vocab.base_size
            assert vocab.term_of(tid) == term
        assert len(vocab) == len(base.vocabulary) + 2

    def test_vocabulary_frequency_merges_delta(self, base):
        delta = (
            DeltaOverlay()
            .with_insert(_obj(10, 5.0, 5.0, ["shop"]))
            .with_delete(0, ("shrine",))
        )
        vocab = LiveView(base, delta).vocabulary
        assert vocab.frequency("shop") == 3  # 2 base + 1 add
        assert vocab.frequency("shrine") == 0  # the only holder deleted
        assert vocab.least_frequent(["shop", "hotel"]) == "hotel"

    def test_inverted_merges_and_subtracts(self, base):
        delta = (
            DeltaOverlay()
            .with_insert(_obj(10, 5.0, 5.0, ["shop"]))
            .with_delete(2, ("restaurant", "shop"))
        )
        view = LiveView(base, delta)
        shop = view.inverted.posting(view.vocabulary.id_of("shop"))
        assert shop == [1, 10]
        restaurant = view.inverted.posting(view.vocabulary.id_of("restaurant"))
        assert restaurant == []
        assert view.inverted.uncoverable_terms(
            [view.vocabulary.id_of("restaurant")]
        ) == [view.vocabulary.id_of("restaurant")]

    def test_adapters_match_objects(self, base):
        delta = DeltaOverlay().with_insert(_obj(10, 5.0, 6.0, ["cafe"]))
        view = LiveView(base, delta)
        assert view.locations[10] == (5.0, 6.0)
        assert view.locations[0] == (0.0, 0.0)
        assert view.term_ids[10] == (view.vocabulary.id_of("cafe"),)
        assert view.global_mask_of(10) == 1 << view.vocabulary.id_of("cafe")


class TestLiveIndex:
    def test_range_circle_merges_and_filters(self, base):
        delta = (
            DeltaOverlay()
            .with_insert(_obj(10, 1.5, 1.5, ["cafe"]))
            .with_delete(1, ("shop",))
        )
        index = LiveView(base, delta).index()
        got = {e.item for e in index.range_circle(1.0, 1.0, 1.5)}
        assert 10 in got          # delta add inside the disc
        assert 1 not in got       # tombstoned base hit filtered
        assert 0 in got and 2 in got

    def test_nearest_with_mask_prefers_closer_delta_add(self, base):
        delta = DeltaOverlay().with_insert(_obj(10, 1.1, 1.1, ["shop"]))
        view = LiveView(base, delta)
        index = view.index()
        mask = 1 << view.vocabulary.id_of("shop")
        got = index.nearest_with_mask(1.2, 1.2, mask)
        assert got is not None and got.item == 10

    def test_nearest_with_mask_skips_tombstones(self, base):
        delta = DeltaOverlay().with_delete(1, ("shop",))
        view = LiveView(base, delta)
        index = view.index()
        mask = 1 << view.vocabulary.id_of("shop")
        got = index.nearest_with_mask(1.0, 1.0, mask)
        assert got is not None and got.item == 2  # next live shop holder

    def test_keyword_holders(self, base):
        delta = (
            DeltaOverlay()
            .with_insert(_obj(10, 5.0, 5.0, ["shop", "cafe"]))
            .with_delete(1, ("shop",))
        )
        index = LiveView(base, delta).index()
        assert index.keyword_holders("shop") == [2, 10]
        assert index.keyword_holders("cafe") == [10]
        assert index.keyword_holders("nonexistent") == []

    def test_item_mask_of_dead_object_is_zero(self, base):
        delta = DeltaOverlay().with_delete(1, ("shop",))
        index = LiveView(base, delta).index()
        assert index.item_mask(1) == 0
        assert index.item_mask(0) != 0


class TestRebase:
    def test_fully_sealed_delta_rebases_to_empty(self, base):
        delta = (
            DeltaOverlay()
            .with_insert(_obj(10, 5.0, 5.0, ["cafe"]))
            .with_delete(1, ("shop",))
        )
        new_base = SealedBase.build(LiveView(base, delta).records())
        residual = delta.rebase(new_base)
        assert residual.is_empty()

    def test_post_seal_mutations_survive(self, base):
        sealed_delta = DeltaOverlay().with_insert(_obj(10, 5.0, 5.0, ["cafe"]))
        new_base = SealedBase.build(LiveView(base, sealed_delta).records())
        # Mutations landing after the compactor took its snapshot:
        later = (
            sealed_delta
            .with_insert(_obj(11, 6.0, 6.0, ["bar"]))   # not in new_base
            .with_delete(10, ("cafe",))                  # victim IS sealed now
        )
        residual = later.rebase(new_base)
        assert set(residual.adds) == {11}
        assert residual.tombstones == frozenset({10})
        # The rebased view over the new base shows exactly the right set.
        view = LiveView(new_base, residual)
        assert view.live_oids() == [0, 1, 2, 3, 11]

    def test_delete_of_unsealed_add_cancels_out(self, base):
        delta = (
            DeltaOverlay()
            .with_insert(_obj(10, 5.0, 5.0, ["cafe"]))
            .with_delete(10, ("cafe",))
        )
        residual = delta.rebase(base)  # 10 never reached any base
        assert residual.is_empty()


def test_view_len_is_consistent_with_iteration(base):
    delta = (
        DeltaOverlay()
        .with_insert(_obj(10, 5.0, 5.0, ["cafe"]))
        .with_insert(_obj(11, 6.0, 6.0, ["cafe"]))
        .with_delete(3, ("hotel",))
    )
    view = LiveView(base, delta)
    assert len(view) == len(list(view)) == len(view.locations)
    assert math.isclose(view.location_of(10)[0], 5.0)
