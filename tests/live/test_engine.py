"""LiveMCKEngine: query parity, mutation semantics, WAL durability,
and freedom from stale reads under concurrent writers."""

import threading

import pytest

from repro import Dataset, MCKEngine
from repro.exceptions import DatasetError, InfeasibleQueryError
from repro.live import LiveMCKEngine

RECORDS = [
    (10.0, 10.0, ["shrine"]),
    (11.0, 10.5, ["shop"]),
    (10.5, 11.0, ["restaurant"]),
    (11.2, 11.2, ["hotel"]),
    (50.0, 50.0, ["shrine"]),
    (52.0, 50.0, ["shop"]),
    (90.0, 10.0, ["restaurant"]),
    (10.0, 90.0, ["hotel"]),
    (60.0, 60.0, ["shop", "cafe"]),
    (0.0, 0.0, ["museum"]),
]

ALGORITHMS = ["GKG", "SKEC", "SKECa", "SKECa+", "EXACT"]


@pytest.fixture()
def live():
    engine = LiveMCKEngine.from_records(RECORDS)
    yield engine
    engine.close()


class TestQueryParity:
    """An unmutated live engine answers exactly like the static engine."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_same_answer_as_static(self, live, algorithm):
        static = MCKEngine(Dataset.from_records(RECORDS, name="static"))
        keywords = ["shrine", "shop", "restaurant", "hotel"]
        got = live.query(keywords, algorithm=algorithm)
        want = static.query(keywords, algorithm=algorithm)
        assert got.diameter == pytest.approx(want.diameter)
        if algorithm == "EXACT":
            assert sorted(got.object_ids) == sorted(want.object_ids)

    def test_epoch_recorded_in_stats(self, live):
        group = live.query(["shrine", "shop"], algorithm="EXACT")
        assert group.stats["epoch"] == 0.0
        live.insert(10.6, 10.6, ["cafe"])
        group = live.query(["shrine", "shop"], algorithm="EXACT")
        assert group.stats["epoch"] == 1.0

    def test_infeasible_raises(self, live):
        with pytest.raises(InfeasibleQueryError):
            live.query(["shrine", "unicorn"], algorithm="EXACT")


class TestMutations:
    def test_insert_becomes_queryable(self, live):
        oid = live.insert(10.4, 10.4, ["cafe"])
        group = live.query(["shrine", "cafe"], algorithm="EXACT")
        assert oid in group.object_ids

    def test_delete_disappears(self, live):
        live.delete(8)  # the only cafe
        with pytest.raises(InfeasibleQueryError):
            live.query(["cafe"], algorithm="EXACT")

    def test_delete_changes_answer(self, live):
        before = live.query(["shrine", "shop"], algorithm="EXACT")
        assert sorted(before.object_ids) == [0, 1]
        live.delete(1)  # best shop partner gone
        after = live.query(["shrine", "shop"], algorithm="EXACT")
        assert 1 not in after.object_ids
        assert after.diameter > before.diameter

    def test_oids_are_stable_and_never_reused(self, live):
        a = live.insert(1.0, 1.0, ["x"])
        live.delete(a)
        b = live.insert(1.0, 1.0, ["x"])
        assert b == a + 1

    def test_batch_is_one_epoch(self, live):
        epoch = live.epoch
        oids = live.apply_batch(
            inserts=[(1.0, 1.0, ["x"]), (2.0, 2.0, ["y"])], deletes=[9]
        )
        assert len(oids) == 2
        assert live.epoch == epoch + 1
        assert live.delta_size == 3

    def test_empty_batch_is_a_noop(self, live):
        epoch = live.epoch
        assert live.apply_batch() == []
        assert live.epoch == epoch

    def test_delete_of_dead_oid_raises(self, live):
        live.delete(9)
        with pytest.raises(DatasetError):
            live.delete(9)
        with pytest.raises(DatasetError):
            live.delete(999)

    def test_empty_keywords_rejected(self, live):
        with pytest.raises(DatasetError):
            live.insert(1.0, 1.0, [])

    def test_mutation_listener_fires_post_publish(self, live):
        seen = []
        live.add_mutation_listener(lambda op, oid, kw: seen.append((op, oid, kw)))
        oid = live.insert(1.0, 1.0, ["cafe", "bar"])
        live.delete(oid)
        assert seen == [
            ("insert", oid, ("bar", "cafe")),
            ("delete", oid, ("bar", "cafe")),
        ]

    def test_closed_engine_rejects_mutations(self):
        engine = LiveMCKEngine.from_records(RECORDS)
        engine.close()
        with pytest.raises(DatasetError):
            engine.insert(0.0, 0.0, ["x"])


class TestSnapshotIsolation:
    def test_pinned_reader_keeps_its_version(self, live):
        with live.pin() as snapshot:
            live.delete(1)
            live.insert(70.0, 70.0, ["shop"])
            assert snapshot.view().get(1) is not None
            assert snapshot.view().live_oids() == list(range(10))
        assert live.dataset.get(1) is None

    def test_len_tracks_current_view(self, live):
        assert len(live) == 10
        live.insert(1.0, 1.0, ["x"])
        assert len(live) == 11
        live.delete(0)
        assert len(live) == 10


class TestWalDurability:
    def test_replay_reproduces_live_set(self, tmp_path):
        path = str(tmp_path / "engine.wal")
        with LiveMCKEngine.from_records(RECORDS, wal_path=path) as engine:
            new = engine.insert(10.4, 10.4, ["cafe"])
            engine.delete(1)
            want = engine.dataset.live_oids()
            answer = engine.query(["shrine", "cafe"], algorithm="EXACT")
        with LiveMCKEngine.from_records(RECORDS, wal_path=path) as engine:
            assert engine.dataset.live_oids() == want
            assert engine.dataset[new].keywords == frozenset({"cafe"})
            replayed = engine.query(["shrine", "cafe"], algorithm="EXACT")
            assert replayed.diameter == pytest.approx(answer.diameter)

    def test_replay_continues_oid_allocation(self, tmp_path):
        path = str(tmp_path / "oids.wal")
        with LiveMCKEngine.from_records(RECORDS, wal_path=path) as engine:
            first = engine.insert(1.0, 1.0, ["x"])
        with LiveMCKEngine.from_records(RECORDS, wal_path=path) as engine:
            second = engine.insert(2.0, 2.0, ["y"])
            assert second == first + 1

    def test_replay_rejects_colliding_insert(self, tmp_path):
        path = str(tmp_path / "bad.wal")
        from repro.live.wal import WriteAheadLog
        with WriteAheadLog(path, sync_every=0) as wal:
            wal.append_insert(0, 1.0, 1.0, ["x"])  # oid 0 is a base object
        with pytest.raises(DatasetError):
            LiveMCKEngine.from_records(RECORDS, wal_path=path)

    def test_replay_rejects_delete_of_never_live(self, tmp_path):
        path = str(tmp_path / "bad2.wal")
        from repro.live.wal import WriteAheadLog
        with WriteAheadLog(path, sync_every=0) as wal:
            wal.append_delete(999)
        with pytest.raises(DatasetError):
            LiveMCKEngine.from_records(RECORDS, wal_path=path)


class TestFromDataset:
    def test_oids_preserved(self):
        dataset = Dataset.from_records(RECORDS, name="src")
        with LiveMCKEngine.from_dataset(dataset) as engine:
            assert engine.dataset.live_oids() == list(range(10))
            assert engine.name == "src"


class TestStaleReadFreedom:
    """Readers racing a writer never observe a torn or stale state.

    The writer atomically swaps which of two "beta" objects exists (one
    near the anchor, one far) — every published epoch contains the anchor
    and *exactly one* beta.  Concurrent EXACT readers must therefore
    always find a feasible answer whose diameter is one of the two legal
    values, and never a group mixing both betas or missing beta entirely.
    """

    def test_concurrent_swaps_yield_only_published_states(self):
        near, far = (1.0, 0.0), (5.0, 0.0)
        engine = LiveMCKEngine.from_records(
            [(0.0, 0.0, ["alpha"]), (near[0], near[1], ["beta"])],
            compact_threshold=6,  # compactions interleave with the race
        )
        legal = {1.0, 5.0}
        errors = []
        stop = threading.Event()

        def writer():
            beta, at_near = 1, True
            try:
                for _ in range(60):
                    pos = far if at_near else near
                    (beta,) = engine.apply_batch(
                        inserts=[(pos[0], pos[1], ["beta"])], deletes=[beta]
                    )
                    at_near = not at_near
            except Exception as err:  # pragma: no cover - failure path
                errors.append(f"writer: {err!r}")
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    group = engine.query(["alpha", "beta"], algorithm="EXACT")
                    if len(group.object_ids) != 2:
                        errors.append(f"group size {group.object_ids}")
                    if not any(
                        abs(group.diameter - d) < 1e-9 for d in legal
                    ):
                        errors.append(f"illegal diameter {group.diameter}")
                    if 0 not in group.object_ids:
                        errors.append(f"anchor missing from {group.object_ids}")
            except Exception as err:  # pragma: no cover - failure path
                errors.append(f"reader: {err!r}")

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        engine.close()
        assert not errors, errors[:5]
        # The race really exercised compaction at least once.
        assert engine.compactor.compactions >= 1

    def test_no_epoch_leaks_after_quiescence(self):
        engine = LiveMCKEngine.from_records(RECORDS)
        for i in range(5):
            engine.insert(float(i), float(i), ["x"])
            engine.query(["shrine"], algorithm="GKG")
        assert engine._epochs.pinned_epochs() == []
        engine.close()
