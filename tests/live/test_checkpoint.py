"""Checkpointed durability: protocol, kill-anywhere crashes, degraded
recovery, and the /readyz recovery gate."""

import os

import pytest

from repro.live import LiveMCKEngine
from repro.live.checkpoint import (
    MANIFEST_NAME,
    RETAIN,
    SEGMENT_DIR,
    CheckpointManager,
    read_manifest,
)
from repro.live.wal import read_wal
from repro.serving.stats import MetricsRegistry
from repro.testing.faults import SimulatedCrash
from repro.testing import faults

CRASH_SITES = (
    "live.checkpoint.segment_write",
    "live.checkpoint.manifest_rename",
    "live.checkpoint.wal_truncate",
)


def _engine(data_dir, **kwargs):
    kwargs.setdefault("wal_sync_every", 1)
    kwargs.setdefault("compact_threshold", 4)
    return LiveMCKEngine.open(str(data_dir), name="ckpt", **kwargs)


def _fill(engine, n, start=0):
    oids = []
    for i in range(start, start + n):
        oids.append(
            engine.insert(float(i), float(i) * 0.5, [f"kw{i % 3}", "cafe"])
        )
    return oids


def _state(engine):
    """Canonical live-object state for equality assertions."""
    return {
        (oid, x, y, tuple(sorted(kw)))
        for oid, x, y, kw in engine.snapshot().view().records()
    }


class TestProtocol:
    def test_compaction_persists_a_checkpoint(self, tmp_path):
        with _engine(tmp_path) as eng:
            _fill(eng, 10)
            assert eng.compactor.compactions >= 1
            manifest = read_manifest(str(tmp_path / MANIFEST_NAME))
            assert manifest["version"] == 1
            assert manifest["checkpoints"]
            newest = manifest["checkpoints"][-1]
            seg = tmp_path / SEGMENT_DIR / newest["segment"]
            assert seg.exists()

    def test_manifest_retains_two_and_collects_garbage(self, tmp_path):
        with _engine(tmp_path) as eng:
            for round_ in range(4):
                _fill(eng, 6, start=round_ * 100)
                assert eng.checkpoint() or eng.delta_size == 0
            manifest = read_manifest(str(tmp_path / MANIFEST_NAME))
            kept = manifest["checkpoints"]
            assert len(kept) == RETAIN
            on_disk = {
                n
                for n in os.listdir(tmp_path / SEGMENT_DIR)
                if n.endswith(".seg")
            }
            assert on_disk == {c["segment"] for c in kept}

    def test_wal_truncated_only_through_older_checkpoint(self, tmp_path):
        with _engine(tmp_path) as eng:
            _fill(eng, 6)
            _fill(eng, 6, start=100)
            manifest = read_manifest(str(tmp_path / MANIFEST_NAME))
            kept = manifest["checkpoints"]
            assert len(kept) == 2
            older_seq = int(kept[0]["wal_seq"])
            newer_seq = int(kept[1]["wal_seq"])
            assert older_seq < newer_seq
            eng.flush()
            records, _bytes, torn = read_wal(str(tmp_path / "wal.log"))
            assert torn is None
            seqs = [r.seq for r in records]
            # Records covering the *newest* checkpoint are still present:
            # they are the fallback if its segment fails verification.
            assert seqs and seqs[0] == older_seq + 1
            assert any(s <= newer_seq for s in seqs)

    def test_checkpoint_noop_when_nothing_new(self, tmp_path):
        with _engine(tmp_path) as eng:
            _fill(eng, 6)
            eng.checkpoint()
            assert eng.delta_size == 0
            assert eng.checkpoint() is False  # watermark already covered

    def test_restart_replays_only_the_tail(self, tmp_path):
        with _engine(tmp_path) as eng:
            _fill(eng, 20)
            eng.checkpoint()
            eng.insert(99.0, 99.0, ["tail"])  # past the checkpoint
            before = _state(eng)
        with _engine(tmp_path) as eng2:
            report = eng2.recovery_report
            assert report.complete and report.source == "segment"
            assert report.wal_records_replayed == 1
            assert _state(eng2) == before

    def test_restart_never_reuses_deleted_oids(self, tmp_path):
        # Delete everything, compact, checkpoint: the segment is empty
        # and the covering WAL records are gone — only the manifest's
        # high-water mark can keep the allocator from restarting at 0.
        with _engine(tmp_path) as eng:
            oids = _fill(eng, 5)
            for oid in oids:
                eng.delete(oid)
            eng.compactor.compact_now(force=True)
            eng.checkpoint()
            assert len(eng) == 0
        with _engine(tmp_path) as eng2:
            fresh = eng2.insert(1.0, 1.0, ["new"])
            assert fresh == max(oids) + 1

    def test_recovered_engine_answers_like_a_fresh_build(self, tmp_path):
        with _engine(tmp_path) as eng:
            _fill(eng, 15)
            eng.delete(3)
            eng.checkpoint()
            eng.insert(7.7, 7.7, ["cafe", "kw1"])
            live = sorted(
                (x, y, sorted(kw))
                for _oid, x, y, kw in eng.snapshot().view().records()
            )
        with _engine(tmp_path) as recovered:
            twin = LiveMCKEngine.from_records(
                ((x, y, kw) for x, y, kw in live), name="twin"
            )
            for algo in ("GKG", "SKEC", "SKECa", "SKECa+", "EXACT"):
                got = recovered.query(["cafe", "kw1", "kw2"], algorithm=algo)
                want = twin.query(["cafe", "kw1", "kw2"], algorithm=algo)
                assert got.diameter == pytest.approx(want.diameter, abs=0.0)
            twin.close()

    def test_seed_records_checkpointed_on_first_boot(self, tmp_path):
        # "initial records + data_dir" must be durable from the first
        # open, before any mutation or compaction runs.
        with LiveMCKEngine.from_records(
            [(0.0, 0.0, ["a"]), (1.0, 1.0, ["b"])],
            name="seeded",
            data_dir=str(tmp_path),
        ) as eng:
            assert len(eng) == 2
            manifest = read_manifest(str(tmp_path / MANIFEST_NAME))
            assert manifest["checkpoints"][-1]["objects"] == 2
        with _engine(tmp_path) as eng2:
            assert eng2.recovery_report.source == "segment"
            assert len(eng2) == 2

    def test_wal_path_and_data_dir_are_exclusive(self, tmp_path):
        from repro.exceptions import DatasetError

        with pytest.raises(DatasetError, match="not both"):
            LiveMCKEngine.from_records(
                [(0.0, 0.0, ["a"])],
                wal_path=str(tmp_path / "w.log"),
                data_dir=str(tmp_path / "d"),
            )


class TestKillAnywhere:
    """A SimulatedCrash at every protocol step loses nothing."""

    @pytest.mark.parametrize("site", CRASH_SITES)
    def test_crash_during_checkpoint_recovers_everything(self, tmp_path, site):
        eng = _engine(tmp_path, compact_threshold=1000)
        _fill(eng, 8)
        eng.checkpoint()  # a healthy checkpoint to fall back on
        _fill(eng, 4, start=50)
        expected = _state(eng)
        with faults.injected(site, error=SimulatedCrash):
            with pytest.raises(SimulatedCrash):
                eng.checkpoint()
        # Abandon the dirty engine without close() — models SIGKILL.
        with _engine(tmp_path) as recovered:
            assert recovered.recovery_report.complete
            assert _state(recovered) == expected

    @pytest.mark.parametrize("site", CRASH_SITES)
    def test_crash_in_compaction_triggered_checkpoint(self, tmp_path, site):
        eng = _engine(tmp_path, compact_threshold=4)
        expected = None
        with faults.injected(site, error=SimulatedCrash):
            try:
                for i in range(12):
                    eng.insert(float(i), float(i), ["kw", f"t{i % 2}"])
            except SimulatedCrash:
                pass
            expected = _state(eng)
        with _engine(tmp_path) as recovered:
            assert recovered.recovery_report.complete
            assert _state(recovered) == expected

    def test_crash_before_manifest_rename_gc_cleans_orphan(self, tmp_path):
        eng = _engine(tmp_path, compact_threshold=1000)
        _fill(eng, 6)
        with faults.injected(
            "live.checkpoint.manifest_rename", error=SimulatedCrash
        ):
            with pytest.raises(SimulatedCrash):
                eng.checkpoint()
        # The orphan segment exists but no manifest references it.
        orphans = os.listdir(tmp_path / SEGMENT_DIR)
        assert orphans
        with _engine(tmp_path) as recovered:
            assert _state(recovered) == _state(eng)
            recovered.checkpoint()
            manifest = read_manifest(str(tmp_path / MANIFEST_NAME))
            kept = {c["segment"] for c in manifest["checkpoints"]}
            on_disk = {
                n
                for n in os.listdir(tmp_path / SEGMENT_DIR)
                if n.endswith(".seg")
            }
            assert on_disk == kept  # orphan collected


class TestDegradedRecovery:
    def _corrupt(self, path):
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(path, "wb").write(bytes(data))

    def test_corrupt_newest_segment_falls_back_to_older(self, tmp_path):
        with _engine(tmp_path) as eng:
            _fill(eng, 6)
            _fill(eng, 6, start=100)
            expected = _state(eng)
        manifest = read_manifest(str(tmp_path / MANIFEST_NAME))
        kept = manifest["checkpoints"]
        assert len(kept) == 2
        self._corrupt(str(tmp_path / SEGMENT_DIR / kept[-1]["segment"]))
        with _engine(tmp_path) as recovered:
            report = recovered.recovery_report
            assert report.complete
            assert report.segment_failures == 1
            assert report.source == "segment"
            assert report.segment == kept[0]["segment"]
            assert _state(recovered) == expected

    def test_all_segments_corrupt_degrades_to_wal_replay(self, tmp_path):
        with _engine(tmp_path, compact_threshold=1000) as eng:
            _fill(eng, 6)
            eng.checkpoint()
            expected = _state(eng)
        for name in os.listdir(tmp_path / SEGMENT_DIR):
            self._corrupt(str(tmp_path / SEGMENT_DIR / name))
        with _engine(tmp_path) as recovered:
            report = recovered.recovery_report
            assert report.complete
            assert report.segment_failures >= 1
            assert report.source == "initial"
            # The WAL still covered everything (truncation lags one
            # checkpoint), so nothing is lost even with every segment gone.
            assert _state(recovered) == expected

    def test_corrupt_manifest_degrades_to_wal_replay(self, tmp_path):
        with _engine(tmp_path, compact_threshold=1000) as eng:
            _fill(eng, 6)
            eng.checkpoint()
            expected = _state(eng)
        self._corrupt(str(tmp_path / MANIFEST_NAME))
        with _engine(tmp_path) as recovered:
            report = recovered.recovery_report
            assert report.complete
            assert report.segment_failures >= 1
            assert report.failure_reasons
            assert _state(recovered) == expected

    def test_missing_segment_file(self, tmp_path):
        with _engine(tmp_path, compact_threshold=1000) as eng:
            _fill(eng, 6)
            eng.checkpoint()
            expected = _state(eng)
        for name in os.listdir(tmp_path / SEGMENT_DIR):
            os.unlink(tmp_path / SEGMENT_DIR / name)
        with _engine(tmp_path) as recovered:
            assert recovered.recovery_report.complete
            assert _state(recovered) == expected


class TestMetrics:
    def test_checkpoint_and_recovery_metrics(self, tmp_path):
        metrics = MetricsRegistry()
        with _engine(tmp_path, metrics=metrics, compact_threshold=1000) as eng:
            _fill(eng, 6)
            assert eng.checkpoint() is True
            assert metrics.checkpoints_counter.value(outcome="ok") >= 1.0
        metrics2 = MetricsRegistry()
        with _engine(
            tmp_path, metrics=metrics2, compact_threshold=1000
        ) as eng2:
            report = eng2.recovery_report
            assert metrics2.recovery_replayed_gauge.value() == float(
                report.wal_records_replayed
            )
            assert metrics2.recovery_seconds_gauge.value() == pytest.approx(
                report.seconds
            )
            assert metrics2.segment_crc_failures_counter.value() == 0.0

    def test_crc_failures_counted(self, tmp_path):
        with _engine(tmp_path, compact_threshold=1000) as eng:
            _fill(eng, 6)
            eng.checkpoint()
        seg_dir = tmp_path / SEGMENT_DIR
        for name in os.listdir(seg_dir):
            data = bytearray(open(seg_dir / name, "rb").read())
            data[-3] ^= 0xFF
            open(seg_dir / name, "wb").write(bytes(data))
        metrics = MetricsRegistry()
        with _engine(tmp_path, metrics=metrics) as eng2:
            assert eng2.recovery_report.segment_failures >= 1
            assert metrics.segment_crc_failures_counter.value() >= 1.0

    def test_failed_checkpoint_counted_and_survivable(self, tmp_path):
        metrics = MetricsRegistry()
        with _engine(tmp_path, metrics=metrics, compact_threshold=1000) as eng:
            _fill(eng, 6)
            with faults.injected(
                "live.checkpoint.segment_write",
                error=OSError("disk full (injected)"),
            ):
                assert eng.checkpoint() is False
            assert metrics.checkpoints_counter.value(outcome="failed") == 1.0
            # The engine keeps serving and the next checkpoint succeeds.
            assert eng.query(["cafe"], algorithm="GKG") is not None
            assert eng.checkpoint() is True


class TestReadinessGate:
    def test_readyz_unready_until_recovery_completes(self, tmp_path):
        from repro.server import MCKServer
        from repro.serving import QueryService

        with _engine(tmp_path) as eng:
            _fill(eng, 6)
            service = QueryService(eng, max_workers=1)
            server = MCKServer(service, port=0)
            try:
                ready, detail = server.readiness()
                assert ready and detail["recovery"]["state"] == "complete"
                # Rewind the report to mid-recovery: the gate must hold.
                eng.recovery_report.state = "loading_segment"
                ready, detail = server.readiness()
                assert not ready
                assert "recovering" in detail["reason"]
                assert detail["recovery"]["state"] == "loading_segment"
                eng.recovery_report.state = "complete"
                ready, _detail = server.readiness()
                assert ready
            finally:
                service.close()

    def test_non_checkpointed_engine_has_no_gate(self, tmp_path):
        from repro.server import MCKServer
        from repro.serving import QueryService

        with LiveMCKEngine.from_records(
            [(0.0, 0.0, ["a"])], name="plain"
        ) as eng:
            service = QueryService(eng, max_workers=1)
            server = MCKServer(service, port=0)
            try:
                ready, detail = server.readiness()
                assert ready
                assert "recovery" not in detail
            finally:
                service.close()


class TestCheckpointManagerUnit:
    def test_recover_empty_dir_is_first_boot(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path))
        base, covered, tail, report = mgr.recover()
        assert base is None and covered == 0 and tail == []
        assert report.complete and report.source == "initial"
        assert report.segment_failures == 0

    def test_slow_recovery_fault_delays(self, tmp_path):
        import time

        mgr = CheckpointManager(str(tmp_path))
        with faults.injected("live.checkpoint.recover", delay=0.05):
            t0 = time.perf_counter()
            mgr.recover()
            assert time.perf_counter() - t0 >= 0.05
