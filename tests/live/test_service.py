"""QueryService over a live engine: mutations through admission control
and keyword-scoped cache invalidation."""

import pytest

from repro import Dataset, MCKEngine
from repro.live import LiveMCKEngine
from repro.serving import QueryService

RECORDS = [
    (10.0, 10.0, ["shrine"]),
    (11.0, 10.5, ["shop"]),
    (10.5, 11.0, ["restaurant"]),
    (11.2, 11.2, ["hotel"]),
    (50.0, 50.0, ["shrine"]),
    (52.0, 50.0, ["shop"]),
]


@pytest.fixture()
def service():
    engine = LiveMCKEngine.from_records(RECORDS)
    with QueryService(engine, max_workers=2) as svc:
        yield svc
    engine.close()


class TestMutationPath:
    def test_insert_returns_oid_and_is_queryable(self, service):
        oid = service.insert(10.4, 10.4, ["cafe"])
        assert oid == len(RECORDS)
        result = service.query(["shrine", "cafe"], algorithm="EXACT")
        assert oid in result.group.object_ids

    def test_delete_through_admission(self, service):
        service.delete(1)
        result = service.query(["shrine", "shop"], algorithm="EXACT")
        assert 1 not in result.group.object_ids

    def test_submit_mutation_batch(self, service):
        future = service.submit_mutation(
            inserts=[(1.0, 1.0, ["a"]), (2.0, 2.0, ["b"])], deletes=[0]
        )
        oids = future.result(timeout=30)
        assert len(oids) == 2
        assert service.engine.dataset.get(0) is None

    def test_static_engine_rejects_mutations(self):
        engine = MCKEngine(Dataset.from_records(RECORDS, name="static"))
        with QueryService(engine, max_workers=1) as svc:
            with pytest.raises(TypeError):
                svc.insert(0.0, 0.0, ["x"])
            with pytest.raises(TypeError):
                svc.delete(0)

    def test_live_engine_incompatible_with_process_pool(self):
        engine = LiveMCKEngine.from_records(RECORDS)
        with pytest.raises(ValueError):
            QueryService(engine, use_processes_for_exact=True)
        engine.close()


class TestInvalidation:
    def test_mutation_invalidates_only_touching_keywords(self, service):
        service.query(["shrine", "shop"])
        service.query(["restaurant"])
        assert service.query(["shrine", "shop"]).stats.cache_hit
        assert service.query(["restaurant"]).stats.cache_hit
        service.insert(30.0, 30.0, ["shop"])
        assert not service.query(["shrine", "shop"]).stats.cache_hit
        assert service.query(["restaurant"]).stats.cache_hit

    def test_delete_also_invalidates(self, service):
        service.query(["shrine", "shop"])
        service.delete(5)  # a shop holder
        assert not service.query(["shrine", "shop"]).stats.cache_hit

    def test_generations_bumped_per_touched_keyword(self, service):
        service.insert(1.0, 1.0, ["cafe", "bar"])
        assert service.generations.generation("cafe") == 1
        assert service.generations.generation("bar") == 1
        assert service.generations.generation("shrine") == 0

    def test_invalidation_counter_reaches_metrics(self, service):
        service.query(["shrine", "shop"])
        service.insert(30.0, 30.0, ["shop"])
        service.query(["shrine", "shop"])  # probe drops the stale entry
        rendered = service.metrics.to_prometheus()
        assert "mck_cache_invalidations_total 1" in rendered

    def test_conservation_identity_holds(self, service):
        for _ in range(3):
            service.query(["shrine", "shop"])
            service.query(["restaurant"])
            service.insert(30.0, 30.0, ["shop"])
        st = service.cache.stats()
        assert st["invalidations"] >= 2
        assert st["inserts"] == (
            st["size"] + st["evictions"] + st["expirations"]
            + st["invalidations"]
        ), st


class TestLiveMetrics:
    def test_epoch_and_delta_gauges_published(self, service):
        service.insert(1.0, 1.0, ["x"])
        service.insert(2.0, 2.0, ["y"])
        rendered = service.metrics.to_prometheus()
        assert 'mck_live_epoch{shard="0"} 2' in rendered
        assert 'mck_delta_size{shard="0"} 2' in rendered

    def test_wal_counter_absent_without_wal(self, service):
        service.insert(1.0, 1.0, ["x"])
        rendered = service.metrics.to_prometheus()
        assert 'mck_wal_records_total{op="insert",shard="0"}' not in rendered

    def test_wal_counter_with_wal(self, tmp_path):
        engine = LiveMCKEngine.from_records(
            RECORDS, wal_path=str(tmp_path / "svc.wal")
        )
        with QueryService(engine, max_workers=1) as svc:
            svc.insert(1.0, 1.0, ["x"])
            svc.delete(0)
            rendered = svc.metrics.to_prometheus()
            assert 'mck_wal_records_total{op="insert",shard="0"} 1' in rendered
            assert 'mck_wal_records_total{op="delete",shard="0"} 1' in rendered
        engine.close()
