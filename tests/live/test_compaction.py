"""Compactor: triggers, answer preservation, racing writers, faults."""

import threading

import pytest

from repro.live import LiveMCKEngine
from repro.testing import faults

RECORDS = [
    (0.0, 0.0, ["shrine"]),
    (1.0, 1.0, ["shop"]),
    (2.0, 0.5, ["restaurant"]),
    (40.0, 40.0, ["hotel"]),
]


def _engine(**kwargs):
    kwargs.setdefault("auto_compact", False)
    return LiveMCKEngine.from_records(RECORDS, **kwargs)


class TestTriggers:
    def test_threshold_trigger(self):
        with _engine(compact_threshold=3, compact_ratio=0.0) as engine:
            comp = engine.compactor
            engine.insert(5.0, 5.0, ["a"])
            engine.insert(6.0, 6.0, ["a"])
            assert not comp.should_compact(engine.snapshot())
            engine.insert(7.0, 7.0, ["a"])
            assert comp.should_compact(engine.snapshot())

    def test_ratio_trigger_respects_min_delta_floor(self):
        with _engine(compact_threshold=1000, compact_ratio=0.5) as engine:
            comp = engine.compactor
            comp.min_delta = 3
            engine.insert(5.0, 5.0, ["a"])
            engine.insert(6.0, 6.0, ["a"])
            # 2 >= 0.5 * 4 but below the min_delta floor.
            assert not comp.should_compact(engine.snapshot())
            engine.insert(7.0, 7.0, ["a"])
            assert comp.should_compact(engine.snapshot())

    def test_empty_delta_never_compacts(self):
        with _engine() as engine:
            assert not engine.compactor.should_compact(engine.snapshot())
            assert engine.compact() is False  # force on empty is still a no-op

    def test_auto_compaction_fires_inline(self):
        engine = LiveMCKEngine.from_records(
            RECORDS, compact_threshold=2, compact_ratio=0.0, auto_compact=True
        )
        engine.insert(5.0, 5.0, ["a"])
        assert engine.delta_size == 1
        engine.insert(6.0, 6.0, ["a"])  # hits the threshold post-publish
        assert engine.delta_size == 0
        assert engine.compactor.compactions == 1
        engine.close()


class TestFolding:
    def test_answers_preserved_and_delta_drops(self):
        with _engine() as engine:
            engine.insert(0.5, 0.5, ["cafe"])
            engine.delete(1)
            before = engine.query(["shrine", "cafe"], algorithm="EXACT")
            assert engine.compact() is True
            assert engine.delta_size == 0
            after = engine.query(["shrine", "cafe"], algorithm="EXACT")
            assert sorted(after.object_ids) == sorted(before.object_ids)
            assert after.diameter == pytest.approx(before.diameter)
            # The folded base owns the objects now.
            assert 4 in engine.snapshot().base
            assert 1 not in engine.snapshot().base

    def test_compaction_publishes_one_epoch(self):
        with _engine() as engine:
            engine.insert(5.0, 5.0, ["a"])
            epoch = engine.epoch
            engine.compact()
            assert engine.epoch == epoch + 1

    def test_pinned_reader_survives_compaction(self):
        with _engine() as engine:
            engine.insert(5.0, 5.0, ["a"])
            with engine.pin() as snapshot:
                engine.compact()
                # The pinned pre-compaction snapshot still answers.
                assert snapshot.view().get(4) is not None
                assert snapshot.delta.size == 1
            assert engine.snapshot().delta.is_empty()

    def test_oid_allocation_survives_compaction(self):
        with _engine() as engine:
            a = engine.insert(5.0, 5.0, ["a"])
            engine.compact()
            b = engine.insert(6.0, 6.0, ["a"])
            assert b == a + 1


class TestConcurrentMutation:
    def test_mutations_during_seal_survive_as_residual(self):
        """A write landing while the compactor seals is rebased, not lost."""
        with _engine() as engine:
            engine.insert(5.0, 5.0, ["cafe"])
            started = threading.Event()
            # The fault site fires after the compactor snapshots but before
            # it seals; a delay there holds the seal open long enough for
            # the main thread to publish more mutations.
            fault = faults.arm(
                "serving.live.compaction", delay=0.3, times=1
            )
            try:
                def run():
                    started.set()
                    engine.compact()

                thread = threading.Thread(target=run)
                thread.start()
                started.wait(5)
                mid_oid = engine.insert(6.0, 6.0, ["bar"])
                engine.delete(1)
                thread.join(timeout=30)
            finally:
                faults.disarm(fault)
            assert engine.compactor.compactions == 1
            view = engine.dataset
            assert view.get(mid_oid) is not None, "mid-compaction insert lost"
            assert view.get(1) is None, "mid-compaction delete resurrected"
            assert view.get(4) is not None  # pre-compaction insert folded


class TestFaultInjection:
    def test_injected_failure_aborts_and_store_serves_on(self):
        with _engine() as engine:
            engine.insert(0.5, 0.5, ["cafe"])
            with faults.injected(
                "serving.live.compaction",
                error=IndexError("injected"), times=1,
            ):
                assert engine.compact() is False
            assert engine.compactor.failures == 1
            assert engine.delta_size == 1  # nothing was folded
            group = engine.query(["shrine", "cafe"], algorithm="EXACT")
            assert 4 in group.object_ids
            # The next, disarmed attempt succeeds.
            assert engine.compact() is True
            assert engine.delta_size == 0

    def test_failure_counters_reach_metrics(self):
        from repro.serving.stats import MetricsRegistry
        metrics = MetricsRegistry()
        engine = LiveMCKEngine.from_records(
            RECORDS, auto_compact=False, metrics=metrics
        )
        engine.insert(0.5, 0.5, ["cafe"])
        with faults.injected(
            "serving.live.compaction", error=IndexError("injected"), times=1
        ):
            engine.compact()
        engine.compact()
        rendered = metrics.to_prometheus()
        assert 'mck_compactions_total{outcome="failed",shard="0"} 1' in rendered
        assert 'mck_compactions_total{outcome="ok",shard="0"} 1' in rendered
        engine.close()


class TestBackgroundThread:
    def test_background_compactor_folds_eventually(self):
        engine = LiveMCKEngine.from_records(
            RECORDS,
            compact_threshold=3,
            compact_ratio=0.0,
            auto_compact=True,
            background_compaction=True,
        )
        try:
            for i in range(5):
                engine.insert(float(i), float(i), ["a"])
            deadline = threading.Event()
            for _ in range(100):
                if engine.compactor.compactions >= 1:
                    break
                deadline.wait(0.05)
            assert engine.compactor.compactions >= 1
            assert engine.delta_size < 5
        finally:
            engine.close()

    def test_stop_is_idempotent(self):
        engine = LiveMCKEngine.from_records(
            RECORDS, background_compaction=True
        )
        engine.close()
        engine.compactor.stop()  # second stop is a no-op
        assert engine.compactor._thread is None
