"""Epoch manager: atomic publish, reader pins, drain-then-retire."""

from repro.live.base import SealedBase
from repro.live.delta import DeltaOverlay
from repro.live.snapshots import EpochManager, Snapshot


def _manager(on_retire=None):
    base = SealedBase.build([(0, 0.0, 0.0, ["a"])], name="snap-test")
    return EpochManager(Snapshot(0, base, DeltaOverlay()), on_retire=on_retire), base


class TestPublish:
    def test_epochs_are_monotone(self):
        mgr, base = _manager()
        assert mgr.epoch == 0
        s1 = mgr.publish(base, DeltaOverlay())
        s2 = mgr.publish(base, DeltaOverlay())
        assert (s1.epoch, s2.epoch) == (1, 2)
        assert mgr.current() is s2

    def test_unpinned_supersede_retires_immediately(self):
        mgr, base = _manager()
        mgr.publish(base, DeltaOverlay())
        assert mgr.retired_epochs() == [0]

    def test_current_epoch_never_retires_on_unpin(self):
        mgr, _base = _manager()
        guard = mgr.pin()
        guard.release()
        assert mgr.retired_epochs() == []


class TestPins:
    def test_pin_holds_snapshot_across_publish(self):
        mgr, base = _manager()
        with mgr.pin() as snapshot:
            mgr.publish(base, DeltaOverlay())
            assert snapshot.epoch == 0
            assert mgr.epoch == 1
            assert mgr.pinned_epochs() == [0]
            assert mgr.retired_epochs() == []
        assert mgr.pinned_epochs() == []
        assert mgr.retired_epochs() == [0]

    def test_refcount_drains_before_retirement(self):
        mgr, base = _manager()
        g1, g2 = mgr.pin(), mgr.pin()
        mgr.publish(base, DeltaOverlay())
        g1.release()
        assert mgr.retired_epochs() == []  # g2 still holds epoch 0
        g2.release()
        assert mgr.retired_epochs() == [0]

    def test_release_is_idempotent(self):
        mgr, base = _manager()
        guard = mgr.pin()
        mgr.pin()  # second, independently held pin
        mgr.publish(base, DeltaOverlay())
        guard.release()
        guard.release()  # must not double-decrement the other pin
        assert mgr.retired_epochs() == []

    def test_on_retire_callback_receives_snapshot(self):
        retired = []
        mgr, base = _manager(on_retire=retired.append)
        guard = mgr.pin()
        mgr.publish(base, DeltaOverlay())
        assert retired == []
        guard.release()
        assert [s.epoch for s in retired] == [0]

    def test_interleaved_pins_retire_in_drain_order(self):
        mgr, base = _manager()
        g0 = mgr.pin()                      # pins epoch 0
        mgr.publish(base, DeltaOverlay())
        g1 = mgr.pin()                      # pins epoch 1
        mgr.publish(base, DeltaOverlay())
        g1.release()
        assert mgr.retired_epochs() == [1]  # epoch 0 still pinned
        g0.release()
        assert mgr.retired_epochs() == [1, 0]


class TestSnapshotView:
    def test_view_is_cached(self):
        mgr, _base = _manager()
        snapshot = mgr.current()
        assert snapshot.view() is snapshot.view()

    def test_view_name_carries_epoch(self):
        mgr, base = _manager()
        mgr.publish(base, DeltaOverlay())
        assert mgr.current().view().name.endswith("@e1")


class TestWalSeqWatermark:
    def test_publish_carries_explicit_watermark(self):
        mgr, base = _manager()
        snap = mgr.publish(base, DeltaOverlay(), wal_seq=7)
        assert snap.wal_seq == 7

    def test_compaction_publish_inherits_watermark(self):
        # A publish that reorganises data without new mutations (rebased
        # compaction) passes wal_seq=None and must inherit, not reset.
        mgr, base = _manager()
        mgr.publish(base, DeltaOverlay(), wal_seq=9)
        snap = mgr.publish(base, DeltaOverlay())
        assert snap.wal_seq == 9


class TestPinsAcrossCheckpoint:
    """Reader pins held across a full checkpoint cycle still drain-retire."""

    def test_pinned_epoch_survives_checkpoint_and_retires_on_release(
        self, tmp_path
    ):
        from repro.live import LiveMCKEngine

        with LiveMCKEngine.open(
            str(tmp_path), wal_sync_every=1, compact_threshold=1000
        ) as eng:
            for i in range(6):
                eng.insert(float(i), float(i), ["kw", f"t{i % 2}"])
            guard = eng.pin()
            pinned = guard.snapshot
            pinned_state = sorted(
                oid for oid, *_rest in pinned.view().records()
            )

            # Compaction + segment write + manifest + WAL truncation all
            # land while the reader still holds its epoch.
            assert eng.checkpoint() is True
            assert eng.epoch > pinned.epoch
            assert pinned.epoch in eng._epochs.pinned_epochs()
            assert pinned.epoch not in eng._epochs.retired_epochs()
            # The pinned view is untouched by the checkpoint.
            assert (
                sorted(oid for oid, *_r in pinned.view().records())
                == pinned_state
            )
            # A query through the guard's snapshot still answers.
            assert eng.query(["kw"], algorithm="GKG").object_ids

            guard.release()
            assert pinned.epoch in eng._epochs.retired_epochs()
            assert pinned.epoch not in eng._epochs.pinned_epochs()

    def test_pin_held_across_crashing_checkpoint(self, tmp_path):
        import pytest

        from repro.live import LiveMCKEngine
        from repro.testing import faults
        from repro.testing.faults import SimulatedCrash

        with LiveMCKEngine.open(
            str(tmp_path), wal_sync_every=1, compact_threshold=1000
        ) as eng:
            for i in range(4):
                eng.insert(float(i), float(i), ["kw"])
            guard = eng.pin()
            with faults.injected(
                "live.checkpoint.manifest_rename", error=SimulatedCrash
            ):
                with pytest.raises(SimulatedCrash):
                    eng.checkpoint()
            # The reader's epoch is intact after the aborted checkpoint
            # (the compaction itself published before the crash).
            assert guard.snapshot.epoch in eng._epochs.pinned_epochs()
            guard.release()
            assert guard.snapshot.epoch in eng._epochs.retired_epochs()
