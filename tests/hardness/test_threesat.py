"""Tests for the 3-SAT machinery."""

import pytest

from repro.hardness.threesat import ThreeSatFormula, dpll_satisfiable, random_3sat


class TestFormula:
    def test_valid_formula(self):
        f = ThreeSatFormula(3, (((1, -2, 3)), (-1, 2, -3)))
        assert f.n_clauses == 2

    def test_rejects_oversized_clause(self):
        with pytest.raises(ValueError):
            ThreeSatFormula(4, ((1, 2, 3, 4),))

    def test_rejects_zero_literal(self):
        with pytest.raises(ValueError):
            ThreeSatFormula(2, ((0, 1, 2),))

    def test_rejects_out_of_range_variable(self):
        with pytest.raises(ValueError):
            ThreeSatFormula(2, ((1, 2, 3),))

    def test_evaluate(self):
        f = ThreeSatFormula(2, ((1, 2), (-1, 2)))
        assert f.evaluate({1: True, 2: True})
        assert f.evaluate({1: False, 2: True})
        assert not f.evaluate({1: True, 2: False})


class TestDPLL:
    def test_trivially_satisfiable(self):
        f = ThreeSatFormula(1, ((1,),))
        sat, model = dpll_satisfiable(f)
        assert sat and model == {1: True}

    def test_trivially_unsatisfiable(self):
        f = ThreeSatFormula(1, ((1,), (-1,)))
        sat, model = dpll_satisfiable(f)
        assert not sat and model is None

    def test_model_satisfies(self):
        f = ThreeSatFormula(
            4, ((1, 2, -3), (-1, 3, 4), (2, -3, -4), (-2, 3, -4))
        )
        sat, model = dpll_satisfiable(f)
        assert sat
        assert f.evaluate(model)

    def test_unsatisfiable_complete_enumeration(self):
        # All 8 sign patterns over 3 variables: no assignment satisfies all.
        clauses = tuple(
            (s1 * 1, s2 * 2, s3 * 3)
            for s1 in (1, -1)
            for s2 in (1, -1)
            for s3 in (1, -1)
        )
        f = ThreeSatFormula(3, clauses)
        sat, _ = dpll_satisfiable(f)
        assert not sat

    def test_unconstrained_variables_defaulted(self):
        f = ThreeSatFormula(5, ((1, 2, 3),))
        sat, model = dpll_satisfiable(f)
        assert sat
        assert set(model) == {1, 2, 3, 4, 5}

    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_bruteforce(self, seed):
        f = random_3sat(5, 15, seed=seed)
        sat, model = dpll_satisfiable(f)
        brute = any(
            f.evaluate({v + 1: bool(bits >> v & 1) for v in range(5)})
            for bits in range(32)
        )
        assert sat == brute
        if sat:
            assert f.evaluate(model)


class TestRandomGenerator:
    def test_structure(self):
        f = random_3sat(6, 20, seed=1)
        assert f.n_variables == 6
        assert f.n_clauses == 20
        for clause in f.clauses:
            assert len(clause) == 3
            assert len({abs(l) for l in clause}) == 3

    def test_deterministic(self):
        assert random_3sat(5, 10, seed=3).clauses == random_3sat(5, 10, seed=3).clauses

    def test_rejects_too_few_variables(self):
        with pytest.raises(ValueError):
            random_3sat(2, 5)
