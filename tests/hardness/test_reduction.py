"""Tests for the Theorem-1 reduction (3-SAT -> mCK)."""

import math

import pytest

from repro.geometry.point import dist
from repro.hardness.reduction import decide_3sat_via_mck, reduce_3sat_to_mck
from repro.hardness.threesat import ThreeSatFormula, dpll_satisfiable, random_3sat


class TestConstruction:
    @pytest.fixture
    def reduction(self):
        f = ThreeSatFormula(3, ((1, 2, 3), (-1, -2, 3)))
        return reduce_3sat_to_mck(f)

    def test_two_points_per_variable(self, reduction):
        assert len(reduction.dataset) == 2 * reduction.formula.n_variables

    def test_antipodal_distance(self, reduction):
        ds = reduction.dataset
        by_literal = {lit: oid for oid, lit in reduction.literal_of_object.items()}
        for v in range(1, reduction.formula.n_variables + 1):
            d = dist(
                ds.location_of(by_literal[v]), ds.location_of(by_literal[-v])
            )
            assert d == pytest.approx(reduction.antipodal_distance)

    def test_cross_pairs_within_threshold(self, reduction):
        ds = reduction.dataset
        n = len(ds)
        for i in range(n):
            for j in range(i + 1, n):
                li = reduction.literal_of_object[i]
                lj = reduction.literal_of_object[j]
                if abs(li) == abs(lj):
                    continue  # antipodal pair, exempt
                d = dist(ds.location_of(i), ds.location_of(j))
                assert d <= reduction.threshold + 1e-9

    def test_keyword_structure(self, reduction):
        # Variable keyword qi on both points of pair i; clause keywords on
        # the three literal points of the clause.
        ds = reduction.dataset
        m = reduction.formula.n_variables
        by_literal = {lit: oid for oid, lit in reduction.literal_of_object.items()}
        for v in range(1, m + 1):
            assert f"q{v}" in ds[by_literal[v]].keywords
            assert f"q{v}" in ds[by_literal[-v]].keywords
        for j, clause in enumerate(reduction.formula.clauses, start=1):
            for lit in clause:
                assert f"q{m + j}" in ds[by_literal[lit]].keywords

    def test_threshold_strictly_below_antipodal(self, reduction):
        assert reduction.threshold < reduction.antipodal_distance


class TestDecision:
    @pytest.mark.parametrize("seed", range(12))
    def test_agrees_with_dpll(self, seed):
        f = random_3sat(4, 10, seed=seed)
        sat_dpll, _ = dpll_satisfiable(f)
        sat_mck, model = decide_3sat_via_mck(f)
        assert sat_mck == sat_dpll
        if sat_mck:
            assert f.evaluate(model)

    def test_unsatisfiable_instance(self):
        clauses = tuple(
            (s1 * 1, s2 * 2, s3 * 3)
            for s1 in (1, -1)
            for s2 in (1, -1)
            for s3 in (1, -1)
        )
        f = ThreeSatFormula(3, clauses)
        sat, model = decide_3sat_via_mck(f)
        assert not sat and model is None

    def test_satisfiable_with_forced_assignment(self):
        # x1 must be true, x2 must be false.
        f = ThreeSatFormula(3, ((1, 1, 1), (-2, -2, -2), (1, -2, 3)))
        sat, model = decide_3sat_via_mck(f)
        assert sat
        assert model[1] is True
        assert model[2] is False


class TestGroupToAssignment:
    def test_assignment_extraction(self):
        f = ThreeSatFormula(3, ((1, 2, 3),))
        reduction = reduce_3sat_to_mck(f)
        from repro.core.engine import MCKEngine

        engine = MCKEngine(reduction.dataset)
        group = engine.query(reduction.query_keywords, algorithm="EXACT")
        assignment = reduction.assignment_from_group(group)
        assert f.evaluate(assignment)
