"""Semantics of the fault-injection harness itself."""

import time

import pytest

from repro.exceptions import WorkerCrashed
from repro.testing import faults


class TestArmDisarm:
    def test_inert_by_default(self):
        assert faults.ACTIVE is False
        faults.fire("core.circlescan")  # no-op, nothing armed

    def test_injected_context_disarms(self):
        with faults.injected("some.site", error=RuntimeError("boom")):
            assert faults.ACTIVE is True
            with pytest.raises(RuntimeError):
                faults.fire("some.site")
        assert faults.ACTIVE is False
        faults.fire("some.site")  # disarmed again

    def test_reset_clears_everything(self):
        faults.arm("a", error=RuntimeError)
        faults.arm("b", delay=0.1)
        faults.reset()
        assert faults.ACTIVE is False
        assert faults.snapshot() == {}

    def test_other_sites_unaffected(self):
        with faults.injected("site.one", error=RuntimeError("boom")):
            faults.fire("site.two")  # nothing armed here


class TestTriggerCounting:
    def test_after_skips_first_matches(self):
        with faults.injected("s", error=RuntimeError, after=2) as fault:
            faults.fire("s")
            faults.fire("s")
            assert fault.triggered == 0
            with pytest.raises(RuntimeError):
                faults.fire("s")
            assert fault.triggered == 1

    def test_times_limits_triggers(self):
        with faults.injected("s", error=RuntimeError, times=2):
            for _ in range(2):
                with pytest.raises(RuntimeError):
                    faults.fire("s")
            faults.fire("s")  # budget exhausted
            assert faults.fired("s") == 2

    def test_times_none_is_unlimited(self):
        with faults.injected("s", error=RuntimeError, times=None):
            for _ in range(5):
                with pytest.raises(RuntimeError):
                    faults.fire("s")

    def test_match_predicate_filters_context(self):
        with faults.injected(
            "s", error=RuntimeError, times=None, match=lambda worker_id: worker_id == 1
        ):
            faults.fire("s", worker_id=0)
            with pytest.raises(RuntimeError):
                faults.fire("s", worker_id=1)


class TestEffects:
    def test_error_factory_fresh_instances(self):
        with faults.injected("s", error=lambda: WorkerCrashed(3, "x"), times=2):
            errors = []
            for _ in range(2):
                with pytest.raises(WorkerCrashed) as info:
                    faults.fire("s")
                errors.append(info.value)
            assert errors[0] is not errors[1]
            assert errors[0].worker_id == 3

    def test_delay_sleeps(self):
        with faults.injected("s", delay=0.02):
            started = time.perf_counter()
            faults.fire("s")
            assert time.perf_counter() - started >= 0.015

    def test_clock_skew_sticky(self):
        # times defaults to 1 but arm() makes skew faults sticky.
        with faults.injected("core.deadline.clock", skew=5.0):
            assert faults.clock_skew() == 5.0
            assert faults.clock_skew() == 5.0  # does not un-skew
        assert faults.clock_skew() == 0.0

    def test_clock_skew_after(self):
        with faults.injected("core.deadline.clock", skew=5.0, after=2):
            assert faults.clock_skew() == 0.0
            assert faults.clock_skew() == 0.0
            assert faults.clock_skew() == 5.0


class TestSpecParsing:
    def test_alias_defaults(self):
        fault = faults.arm_spec("slow-scan")
        assert fault.site == "core.circlescan"
        assert fault.delay == pytest.approx(0.1)
        assert fault.times is None

    def test_overrides(self):
        fault = faults.arm_spec("pool-reject:after=1,times=2")
        assert fault.site == "serving.pool.submit"
        assert fault.after == 1
        assert fault.times == 2

    def test_times_zero_means_unlimited(self):
        fault = faults.arm_spec("worker-crash:times=0")
        assert fault.times is None

    def test_skew_override(self):
        fault = faults.arm_spec("clock-skew:skew=12.5,after=3")
        assert fault.skew == pytest.approx(12.5)
        assert fault.after == 3

    def test_unknown_alias_rejected(self):
        with pytest.raises(ValueError, match="unknown fault alias"):
            faults.arm_spec("nope")

    def test_bad_option_rejected(self):
        with pytest.raises(ValueError, match="bad fault option"):
            faults.arm_spec("slow-scan:color=red")
