"""Tests for dataset serialization."""

import json

import pytest

from repro.core.objects import Dataset
from repro.datasets.io import (
    load_csv,
    load_jsonl,
    load_latlon_records,
    save_csv,
    save_jsonl,
)
from repro.exceptions import DatasetError


@pytest.fixture
def sample():
    return Dataset.from_records(
        [(0.5, 1.5, ["hotel", "bar"]), (2.0, 3.0, ["shop"])], name="sample"
    )


class TestJsonl:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "ds.jsonl"
        save_jsonl(sample, path)
        loaded = load_jsonl(path)
        assert loaded.name == "sample"
        assert len(loaded) == len(sample)
        for a, b in zip(sample, loaded):
            assert (a.x, a.y, a.keywords) == (b.x, b.y, b.keywords)

    def test_headerless_file_accepted(self, tmp_path):
        path = tmp_path / "raw.jsonl"
        path.write_text(
            '{"x": 1, "y": 2, "keywords": ["a"]}\n{"x": 3, "y": 4, "keywords": ["b"]}\n'
        )
        loaded = load_jsonl(path)
        assert len(loaded) == 2

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(DatasetError):
            load_jsonl(path)

    def test_invalid_json_raises_with_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"x": 1, "y": 2, "keywords": ["a"]}\nnot json\n')
        with pytest.raises(DatasetError) as exc:
            load_jsonl(path)
        assert ":2:" in str(exc.value)

    def test_missing_fields_raise(self, tmp_path):
        path = tmp_path / "bad2.jsonl"
        path.write_text('{"x": 1, "keywords": ["a"]}\n')
        with pytest.raises(DatasetError):
            load_jsonl(path)

    def test_empty_keywords_raise(self, tmp_path):
        path = tmp_path / "bad3.jsonl"
        path.write_text('{"x": 1, "y": 1, "keywords": []}\n')
        with pytest.raises(DatasetError):
            load_jsonl(path)

    def test_blank_lines_skipped(self, sample, tmp_path):
        path = tmp_path / "gaps.jsonl"
        save_jsonl(sample, path)
        text = path.read_text() + "\n\n"
        path.write_text(text)
        assert len(load_jsonl(path)) == 2


class TestCsv:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "ds.csv"
        save_csv(sample, path)
        loaded = load_csv(path, name="sample")
        assert len(loaded) == 2
        assert loaded[0].keywords == frozenset({"hotel", "bar"})

    def test_bad_column_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y,keywords\n1,2\n")
        with pytest.raises(DatasetError):
            load_csv(path)

    def test_bad_coordinates(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("x,y,keywords\noops,2,a\n")
        with pytest.raises(DatasetError):
            load_csv(path)

    def test_no_keywords(self, tmp_path):
        path = tmp_path / "bad3.csv"
        path.write_text("x,y,keywords\n1,2,\n")
        with pytest.raises(DatasetError):
            load_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError):
            load_csv(path)


class TestLatLonImport:
    def test_projects_to_metres(self):
        # Two points ~1.11 km apart in latitude.
        records = [
            (40.70, -74.00, ["a"]),
            (40.71, -74.00, ["b"]),
        ]
        ds = load_latlon_records(records)
        d = ((ds[0].x - ds[1].x) ** 2 + (ds[0].y - ds[1].y) ** 2) ** 0.5
        assert d == pytest.approx(1110.0, rel=0.01)

    def test_single_zone_used(self):
        # Points straddling a zone border still land in one frame.
        records = [(50.0, 5.9, ["a"]), (50.0, 6.1, ["b"])]
        ds = load_latlon_records(records)
        d = abs(ds[0].x - ds[1].x)
        assert d == pytest.approx(14_300, rel=0.05)

    def test_forced_zone(self):
        records = [(40.7, -74.0, ["a"])]
        ds = load_latlon_records(records, zone=17)
        assert ds[0].x > 500_000  # west of zone 17's central meridian? east
