"""Tests for the synthetic NY/LA/TW-like generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    PRESETS,
    SyntheticConfig,
    generate_city,
    make_la_like,
    make_ny_like,
    make_tw_like,
)


class TestGenerateCity:
    @pytest.fixture(scope="class")
    def small(self):
        config = SyntheticConfig(
            name="test-city",
            n_objects=800,
            vocab_size=200,
            words_per_object=2.5,
            extent=10_000.0,
            n_clusters=5,
            cluster_spread=300.0,
            seed=42,
        )
        return generate_city(config)

    def test_object_count(self, small):
        assert len(small) == 800

    def test_every_object_has_keywords(self, small):
        for obj in small:
            assert len(obj.keywords) >= 1

    def test_locations_in_extent(self, small):
        coords = small.coords
        assert coords.min() >= 0.0
        assert coords.max() <= 10_000.0

    def test_mean_words_close_to_target(self, small):
        mean = small.total_word_count() / len(small)
        # Dedup within objects pulls the mean slightly below the target.
        assert 1.5 <= mean <= 2.6

    def test_zipf_skew(self, small):
        """The most frequent term should dominate: a Zipf signature."""
        freqs = sorted(
            (small.vocabulary.frequency(t) for t in small.vocabulary.terms_by_frequency()),
            reverse=True,
        )
        assert freqs[0] > 5 * freqs[len(freqs) // 2]

    def test_deterministic(self):
        config = PRESETS["NY"].scaled(0.01)
        a = generate_city(config)
        b = generate_city(config)
        assert np.array_equal(a.coords, b.coords)
        assert [o.keywords for o in a] == [o.keywords for o in b]

    def test_spatial_clustering_present(self, small):
        """Clustered data has lower mean nearest-neighbour distance than a
        uniform scatter of the same density."""
        from scipy.spatial import cKDTree

        coords = small.coords
        tree = cKDTree(coords)
        d, _ = tree.query(coords, k=2)
        mean_nn = d[:, 1].mean()
        rng = np.random.default_rng(0)
        uniform = rng.uniform(0, 10_000, size=coords.shape)
        du, _ = cKDTree(uniform).query(uniform, k=2)
        assert mean_nn < 0.8 * du[:, 1].mean()


class TestPresets:
    @pytest.mark.parametrize(
        "maker,name",
        [(make_ny_like, "NY-like"), (make_la_like, "LA-like"), (make_tw_like, "TW-like")],
    )
    def test_preset_names(self, maker, name):
        ds = maker(scale=0.01)
        assert ds.name == name
        assert len(ds) > 0

    def test_scale_grows_linearly(self):
        small = make_ny_like(scale=0.01)
        large = make_ny_like(scale=0.02)
        assert len(large) == 2 * len(small)

    def test_seed_override_changes_data(self):
        a = make_ny_like(scale=0.01, seed=1)
        b = make_ny_like(scale=0.01, seed=2)
        assert not np.array_equal(a.coords, b.coords)

    def test_tw_has_longer_texts_than_ny(self):
        ny = make_ny_like(scale=0.02)
        tw = make_tw_like(scale=0.02)
        assert (tw.total_word_count() / len(tw)) > (
            ny.total_word_count() / len(ny)
        )

    def test_scaled_config(self):
        base = PRESETS["LA"]
        half = base.scaled(0.5)
        assert half.n_objects == base.n_objects // 2
        assert half.extent == base.extent


class TestZipfStatistics:
    def test_rank_frequency_slope(self):
        """log-frequency vs log-rank slope should be near -1 for the head
        of a Zipf(1) vocabulary (tolerant band: sampling noise, dedup)."""
        import numpy as np

        ds = make_ny_like(scale=0.1)
        freqs = sorted(
            (
                ds.vocabulary.frequency(t)
                for t in ds.vocabulary.terms_by_frequency()
            ),
            reverse=True,
        )
        head = np.array(freqs[:50], dtype=float)
        ranks = np.arange(1, len(head) + 1, dtype=float)
        slope = np.polyfit(np.log(ranks), np.log(head), 1)[0]
        assert -1.5 < slope < -0.6, f"slope {slope} not Zipf-like"

    def test_background_fraction_scatters(self):
        """With full background fraction the data loses its clustering."""
        from scipy.spatial import cKDTree

        config = PRESETS["NY"].scaled(0.05)
        clustered = generate_city(config)
        uniform_cfg = SyntheticConfig(
            **{**config.__dict__, "background_fraction": 1.0}
        )
        scattered = generate_city(uniform_cfg)
        d_c, _ = cKDTree(clustered.coords).query(clustered.coords, k=2)
        d_s, _ = cKDTree(scattered.coords).query(scattered.coords, k=2)
        assert d_c[:, 1].mean() < d_s[:, 1].mean()
