"""Tests for workload persistence."""

import pytest

from repro.datasets.queries import generate_workload
from repro.datasets.synthetic import make_ny_like
from repro.datasets.workloads import load_workload, save_workload
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def workload():
    ds = make_ny_like(scale=0.02)
    return generate_workload(ds, m=3, count=4, diameter_fraction=0.15, seed=5)


class TestRoundTrip:
    def test_file_round_trip(self, workload, tmp_path):
        path = tmp_path / "wl.json"
        save_workload(workload, path)
        restored = load_workload(path)
        assert restored.dataset_name == workload.dataset_name
        assert restored.m == workload.m
        assert restored.diameter_fraction == workload.diameter_fraction
        assert restored.seed == workload.seed
        assert [q.keywords for q in restored] == [q.keywords for q in workload]

    def test_queries_usable_after_load(self, workload, tmp_path):
        from repro.core.engine import MCKEngine

        path = tmp_path / "wl.json"
        save_workload(workload, path)
        restored = load_workload(path)
        ds = make_ny_like(scale=0.02)
        engine = MCKEngine(ds)
        group = engine.query(restored.queries[0].keywords, algorithm="GKG")
        assert group.diameter >= 0.0


class TestValidation:
    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        with pytest.raises(DatasetError):
            load_workload(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "bad2.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(DatasetError):
            load_workload(path)

    def test_missing_fields(self, tmp_path):
        path = tmp_path / "bad3.json"
        path.write_text('{"format": "repro-workload-v1", "m": 3}')
        with pytest.raises(DatasetError):
            load_workload(path)
