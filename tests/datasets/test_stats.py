"""Tests for Table-1-style dataset statistics."""

import pytest

from repro.core.objects import Dataset
from repro.datasets.stats import DatasetStats, table1_stats


class TestDatasetStats:
    def test_derived_ratios(self):
        s = DatasetStats(name="x", n_objects=100, unique_words=25, total_words=250)
        assert s.words_per_object == 2.5
        assert s.unique_ratio == 0.25

    def test_zero_objects(self):
        s = DatasetStats(name="x", n_objects=0, unique_words=0, total_words=0)
        assert s.words_per_object == 0.0
        assert s.unique_ratio == 0.0


class TestTable1:
    def test_counts_match_dataset(self):
        ds = Dataset.from_records(
            [(0, 0, ["a", "b"]), (1, 1, ["b", "c"]), (2, 2, ["c"])], name="tiny"
        )
        (row,) = table1_stats([ds])
        assert row.name == "tiny"
        assert row.n_objects == 3
        assert row.unique_words == 3
        assert row.total_words == 5

    def test_multiple_datasets_ordered(self):
        a = Dataset.from_records([(0, 0, ["x"])], name="a")
        b = Dataset.from_records([(0, 0, ["y"]), (1, 1, ["z"])], name="b")
        rows = table1_stats([a, b])
        assert [r.name for r in rows] == ["a", "b"]
        assert [r.n_objects for r in rows] == [1, 2]
