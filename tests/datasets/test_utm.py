"""Tests for the WGS-84 -> UTM conversion."""

import math

import pytest

from repro.datasets.utm import latlon_to_utm, utm_zone


def _haversine(lat1, lon1, lat2, lon2):
    radius = 6371008.8
    p1, p2 = math.radians(lat1), math.radians(lat2)
    dphi = p2 - p1
    dlam = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(p1) * math.cos(p2) * math.sin(dlam / 2) ** 2
    return 2 * radius * math.asin(math.sqrt(a))


class TestZones:
    def test_zone_of_greenwich(self):
        assert utm_zone(0.0) == 31

    def test_zone_of_new_york(self):
        assert utm_zone(-74.0) == 18

    def test_zone_of_los_angeles(self):
        assert utm_zone(-118.24) == 11

    def test_zone_wraps(self):
        assert utm_zone(180.0) == 1
        assert utm_zone(-180.0) == 1

    def test_zone_boundaries(self):
        assert utm_zone(-180.0 + 1e-9) == 1
        assert utm_zone(-174.0 + 1e-9) == 2


class TestConversion:
    def test_central_meridian_easting(self):
        # On the central meridian of zone 31 (3 deg E), easting = 500 km.
        e, n, z = latlon_to_utm(45.0, 3.0)
        assert z == 31
        assert e == pytest.approx(500_000.0, abs=0.01)

    def test_equator_northing_zero(self):
        e, n, z = latlon_to_utm(0.0, 3.0)
        assert n == pytest.approx(0.0, abs=0.01)

    def test_southern_hemisphere_false_northing(self):
        e, n, z = latlon_to_utm(-33.87, 151.21)  # Sydney
        assert n > 6_000_000.0  # false northing applied

    def test_forced_zone(self):
        e1, n1, z1 = latlon_to_utm(40.7, -74.0)
        e2, n2, z2 = latlon_to_utm(40.7, -74.0, zone=17)
        assert z1 == 18 and z2 == 17
        assert e1 != e2

    def test_rejects_polar_latitudes(self):
        with pytest.raises(ValueError):
            latlon_to_utm(85.0, 0.0)
        with pytest.raises(ValueError):
            latlon_to_utm(-81.0, 0.0)

    def test_rejects_bad_zone(self):
        with pytest.raises(ValueError):
            latlon_to_utm(40.0, -74.0, zone=61)


class TestGroundDistances:
    @pytest.mark.parametrize(
        "a,b",
        [
            ((40.7128, -74.0060), (40.7580, -73.9855)),   # Manhattan
            ((34.0522, -118.2437), (34.1015, -118.3265)),  # LA
            ((40.70, -74.02), (40.90, -73.80)),            # ~29 km
        ],
    )
    def test_euclidean_close_to_haversine(self, a, b):
        """UTM exists so Euclidean distance approximates ground distance;
        the error inside a zone at city scale is far below 0.5%."""
        ea, na, za = latlon_to_utm(*a)
        eb, nb, _zb = latlon_to_utm(*b, zone=za)
        d_utm = math.hypot(ea - eb, na - nb)
        d_ground = _haversine(a[0], a[1], b[0], b[1])
        assert d_utm == pytest.approx(d_ground, rel=0.005)
