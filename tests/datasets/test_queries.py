"""Tests for the paper-style query generator."""

import pytest

from repro.baselines.bruteforce import brute_force_optimal
from repro.core.query import compile_query
from repro.datasets.queries import generate_queries, generate_workload
from repro.datasets.synthetic import make_ny_like
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def city():
    return make_ny_like(scale=0.05)


class TestBasicGeneration:
    def test_count_and_m(self, city):
        queries = generate_queries(city, m=4, count=6, seed=1)
        assert len(queries) == 6
        for q in queries:
            assert q.m == 4

    def test_deterministic(self, city):
        a = generate_queries(city, m=3, count=4, seed=9)
        b = generate_queries(city, m=3, count=4, seed=9)
        assert [q.keywords for q in a] == [q.keywords for q in b]

    def test_different_seeds_differ(self, city):
        a = generate_queries(city, m=3, count=4, seed=1)
        b = generate_queries(city, m=3, count=4, seed=2)
        assert [q.keywords for q in a] != [q.keywords for q in b]

    def test_queries_feasible(self, city):
        for q in generate_queries(city, m=5, count=5, seed=3):
            ctx = compile_query(city, q)  # raises if infeasible
            assert len(ctx) > 0


class TestDiameterBound:
    @pytest.mark.parametrize("fraction", [0.1, 0.2])
    def test_optimal_diameter_within_bound(self, city, fraction):
        """The generating circle encloses a feasible group, so the optimal
        diameter cannot exceed the bound."""
        bound = fraction * city.extent_diameter()
        for q in generate_queries(
            city, m=3, count=4, diameter_fraction=fraction, seed=5
        ):
            ctx = compile_query(city, q)
            opt = brute_force_optimal(ctx)
            assert opt.diameter <= bound + 1e-6


class TestTermPool:
    def test_restricted_pool_lowers_frequencies(self, city):
        rare = generate_queries(city, m=3, count=5, term_pool_fraction=0.2, seed=7)
        common = generate_queries(city, m=3, count=5, term_pool_fraction=1.0, seed=7)
        mean_rare = _mean_frequency(city, rare)
        mean_common = _mean_frequency(city, common)
        assert mean_rare < mean_common

    def test_pool_membership(self, city):
        fraction = 0.3
        ranked = city.vocabulary.terms_by_frequency()
        pool = set(ranked[: int(len(ranked) * fraction)])
        for q in generate_queries(
            city, m=3, count=5, term_pool_fraction=fraction, seed=11
        ):
            assert set(q.keywords) <= pool


class TestValidation:
    def test_bad_m(self, city):
        with pytest.raises(DatasetError):
            generate_queries(city, m=0, count=1)

    def test_bad_fraction(self, city):
        with pytest.raises(DatasetError):
            generate_queries(city, m=2, count=1, diameter_fraction=0.0)
        with pytest.raises(DatasetError):
            generate_queries(city, m=2, count=1, term_pool_fraction=1.5)

    def test_impossible_pool_raises(self, city):
        # m larger than the vocabulary can support in any circle.
        with pytest.raises(DatasetError):
            generate_queries(
                city, m=10_000, count=1, max_attempts_per_query=3
            )


class TestWorkload:
    def test_workload_carries_provenance(self, city):
        w = generate_workload(city, m=4, count=3, diameter_fraction=0.15, seed=2)
        assert w.dataset_name == city.name
        assert w.m == 4
        assert w.diameter_fraction == 0.15
        assert len(w) == 3
        assert list(w) == w.queries


def _mean_frequency(city, queries):
    total = 0
    n = 0
    for q in queries:
        for t in q.keywords:
            total += city.vocabulary.frequency(t)
            n += 1
    return total / n
