"""Tests for the IR-tree alternative index."""

import math
import random

import pytest

from repro.index.irtree import IRTree


def _records(seed, n, n_terms=5):
    rng = random.Random(seed)
    return [
        (
            i,
            rng.uniform(0, 100),
            rng.uniform(0, 100),
            rng.sample(range(n_terms), rng.randint(1, 3)),
        )
        for i in range(n)
    ]


class TestBuild:
    def test_build_and_invariants(self):
        tree = IRTree.build(_records(1, 200), max_entries=8)
        assert len(tree) == 200
        tree.check_invariants()

    def test_root_terms_are_union(self):
        records = _records(2, 80)
        tree = IRTree.build(records, max_entries=8)
        expected = set()
        for _i, _x, _y, terms in records:
            expected.update(terms)
        assert tree.node_terms(tree.root) == expected

    def test_empty_tree(self):
        tree = IRTree.build([], max_entries=8)
        assert len(tree) == 0
        assert tree.nearest_with_term(0, 0, 1) is None

    def test_item_terms(self):
        records = _records(3, 20)
        tree = IRTree.build(records, max_entries=8)
        for item, _x, _y, terms in records:
            assert tree.item_terms(item) == frozenset(terms)


class TestNearestWithTerm:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bruteforce(self, seed):
        records = _records(seed + 10, 150)
        tree = IRTree.build(records, max_entries=8)
        rng = random.Random(seed)
        for _ in range(8):
            qx, qy = rng.uniform(0, 100), rng.uniform(0, 100)
            term = rng.randrange(5)
            holders = [r for r in records if term in r[3]]
            if not holders:
                continue
            best = min(holders, key=lambda r: math.hypot(r[1] - qx, r[2] - qy))
            got = tree.nearest_with_term(qx, qy, term)
            assert got is not None
            assert math.hypot(got.x - qx, got.y - qy) == pytest.approx(
                math.hypot(best[1] - qx, best[2] - qy)
            )

    def test_unknown_term_returns_none(self):
        tree = IRTree.build(_records(20, 50), max_entries=8)
        assert tree.nearest_with_term(50, 50, 999) is None

    def test_iterator_ascending(self):
        records = _records(21, 100)
        tree = IRTree.build(records, max_entries=8)
        dists = [d for _e, d in tree.nearest_iter_with_term(50, 50, 0)]
        assert dists == sorted(dists)
        assert len(dists) == sum(1 for r in records if 0 in r[3])


class TestGkgIntegration:
    def test_gkg_irtree_method(self):
        from repro.baselines.bruteforce import brute_force_optimal
        from repro.core.gkg import gkg
        from repro.core.query import compile_query
        from tests.conftest import feasible_query, make_random_dataset

        for seed in range(6):
            ds = make_random_dataset(seed, n=30)
            query = feasible_query(ds, seed, 3)
            ctx = compile_query(ds, query)
            opt = brute_force_optimal(ctx)
            group = gkg(ctx, method="irtree")
            assert group.covers(ds, query)
            assert group.diameter <= 2.0 * opt.diameter + 1e-9
