"""On-disk segments: round-trip fidelity and corruption detection."""

import json
import os
import zlib

import pytest

from repro.exceptions import SegmentError
from repro.index.segments import (
    MAGIC,
    load_segment,
    segment_info,
    write_segment,
)
from repro.live.base import SealedBase


def _sealed(name="seg-test", n=20):
    """A small sealed base with a mixed vocabulary and sparse oids."""
    records = []
    for i in range(n):
        oid = i * 3 + 1  # sparse: deletes leave holes in real bases
        kws = [f"kw{i % 5}", f"tag{i % 3}"]
        if i % 4 == 0:
            kws.append("rare")
        records.append((oid, float(i), float(n - i) * 0.5, kws))
    return SealedBase.build(records, name=name)


def _write(tmp_path, base=None, name="base.seg"):
    base = base if base is not None else _sealed()
    path = str(tmp_path / name)
    header = write_segment(base, path)
    return base, path, header


class TestRoundTrip:
    def test_identical_objects_and_terms(self, tmp_path):
        base, path, header = _write(tmp_path)
        loaded = load_segment(path)
        assert loaded.name == base.name
        assert sorted(loaded.objects) == sorted(base.objects)
        for oid, obj in base.objects.items():
            twin = loaded.objects[oid]
            assert (twin.x, twin.y) == (obj.x, obj.y)
            assert twin.keywords == obj.keywords
            # Term ids survive verbatim — no re-interning on load.
            assert loaded._term_ids[oid] == base._term_ids[oid]

    def test_vocabulary_order_and_frequency_survive(self, tmp_path):
        base, path, _header = _write(tmp_path)
        loaded = load_segment(path)
        assert len(loaded.vocabulary) == len(base.vocabulary)
        for tid in range(len(base.vocabulary)):
            term = base.vocabulary.term_of(tid)
            assert loaded.vocabulary.term_of(tid) == term
            assert loaded.vocabulary.frequency(tid) == base.vocabulary.frequency(
                tid
            )

    def test_columns_installed_eagerly(self, tmp_path):
        base, path, _header = _write(tmp_path)
        loaded = load_segment(path)
        assert loaded._columns is not None  # load, not lazy rebuild
        assert list(loaded.columns.oids) == list(base.columns.oids)
        assert list(loaded.columns.term_ids) == list(base.columns.term_ids)

    def test_inverted_index_parity(self, tmp_path):
        base, path, _header = _write(tmp_path)
        loaded = load_segment(path)
        for tid in range(len(base.vocabulary)):
            assert list(loaded.inverted.posting(tid)) == list(
                base.inverted.posting(tid)
            )

    def test_header_metadata(self, tmp_path):
        base, path, header = _write(tmp_path)
        assert header["objects"] == len(base)
        assert header["version"] == 1
        info = segment_info(path)
        assert info["objects"] == len(base)
        assert info["terms"] == header["terms"]

    def test_empty_base_round_trips(self, tmp_path):
        base = SealedBase.build((), name="empty")
        path = str(tmp_path / "empty.seg")
        write_segment(base, path)
        loaded = load_segment(path)
        assert len(loaded) == 0
        assert loaded.name == "empty"

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        _base, path, _header = _write(tmp_path)
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")


class TestCorruption:
    """Every corruption shape raises SegmentError — loaders never guess."""

    def test_bad_magic(self, tmp_path):
        _base, path, _header = _write(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[0] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(SegmentError, match="magic"):
            load_segment(path)
        with pytest.raises(SegmentError, match="magic"):
            segment_info(path)

    def test_header_crc_mismatch(self, tmp_path):
        _base, path, _header = _write(tmp_path)
        data = bytearray(open(path, "rb").read())
        # Flip a byte inside the JSON header (just past the CRC field).
        data[len(MAGIC) + 12] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(SegmentError, match="CRC"):
            load_segment(path)

    def test_section_bitflip(self, tmp_path):
        _base, path, _header = _write(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[-5] ^= 0x01  # inside the last (masks) section
        open(path, "wb").write(bytes(data))
        with pytest.raises(SegmentError, match="CRC mismatch"):
            load_segment(path)

    def test_truncated_section(self, tmp_path):
        _base, path, _header = _write(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 16)
        with pytest.raises(SegmentError, match="truncated"):
            load_segment(path)

    def test_truncated_header(self, tmp_path):
        _base, path, _header = _write(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(len(MAGIC) + 4)
        with pytest.raises(SegmentError):
            load_segment(path)

    def test_consistent_rewrite_fails_mask_cross_check(self, tmp_path):
        # Adversarial: rewrite a section AND fix its CRC in the header.
        # The per-row mask/CSR cross-validation still catches the lie.
        base, path, header = _write(tmp_path)
        with open(path, "rb") as fh:
            raw = fh.read()
        header_line_end = raw.index(b"\n", len(MAGIC)) + 1
        body = raw[header_line_end:]
        sections = header["sections"]
        # Corrupt one uint64 word of the masks section, recompute its CRC.
        offset = sum(s["bytes"] for s in sections[:-1])
        masks_raw = bytearray(body[offset:])
        masks_raw[0] ^= 0x01
        sections[-1]["crc"] = zlib.crc32(bytes(masks_raw)) & 0xFFFFFFFF
        new_body = json.dumps(header, sort_keys=True).encode("utf-8")
        framed = b"%08x %s\n" % (zlib.crc32(new_body) & 0xFFFFFFFF, new_body)
        with open(path, "wb") as fh:
            fh.write(MAGIC + framed + body[:offset] + bytes(masks_raw))
        with pytest.raises(SegmentError, match="disagrees"):
            load_segment(path)

    def test_unsupported_version(self, tmp_path):
        base = _sealed()
        path = str(tmp_path / "v2.seg")
        header = write_segment(base, path)
        header["version"] = 99
        body = json.dumps(header, sort_keys=True).encode("utf-8")
        framed = b"%08x %s\n" % (zlib.crc32(body) & 0xFFFFFFFF, body)
        with open(path, "rb") as fh:
            raw = fh.read()
        tail = raw[raw.index(b"\n", len(MAGIC)) + 1 :]
        with open(path, "wb") as fh:
            fh.write(MAGIC + framed + tail)
        with pytest.raises(SegmentError, match="version"):
            load_segment(path)
