"""Tests for keyword bitmaps and the vocabulary."""

import pytest

from repro.exceptions import DatasetError
from repro.index.bitmap import KeywordVocabulary, iter_bits, mask_of, popcount


class TestMaskHelpers:
    def test_mask_of(self):
        assert mask_of([0, 2, 5]) == 0b100101

    def test_mask_of_empty(self):
        assert mask_of([]) == 0

    def test_iter_bits_roundtrip(self):
        bits = [1, 3, 64, 200]
        assert list(iter_bits(mask_of(bits))) == bits

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount(1 << 500) == 1


class TestVocabulary:
    def test_add_interns(self):
        v = KeywordVocabulary()
        a = v.add("hotel")
        assert v.add("hotel") == a
        assert v.id_of("hotel") == a
        assert v.term_of(a) == "hotel"

    def test_observe_counts_frequency(self):
        v = KeywordVocabulary()
        v.observe("a")
        v.observe("a")
        v.observe("b")
        assert v.frequency("a") == 2
        assert v.frequency("b") == 1

    def test_frequency_by_id(self):
        v = KeywordVocabulary()
        tid = v.observe("x")
        assert v.frequency(tid) == 1

    def test_unknown_term_raises(self):
        v = KeywordVocabulary()
        with pytest.raises(DatasetError):
            v.id_of("missing")

    def test_contains(self):
        v = KeywordVocabulary()
        v.add("z")
        assert "z" in v
        assert "y" not in v

    def test_terms_by_frequency_ascending(self):
        v = KeywordVocabulary()
        for term, count in [("common", 5), ("rare", 1), ("mid", 3)]:
            for _ in range(count):
                v.observe(term)
        assert v.terms_by_frequency() == ["rare", "mid", "common"]

    def test_least_frequent(self):
        v = KeywordVocabulary()
        for term, count in [("a", 4), ("b", 2), ("c", 9)]:
            for _ in range(count):
                v.observe(term)
        assert v.least_frequent(["a", "b", "c"]) == "b"
        assert v.least_frequent(["a", "c"]) == "a"

    def test_least_frequent_empty_raises(self):
        with pytest.raises(DatasetError):
            KeywordVocabulary().least_frequent([])

    def test_global_mask(self):
        v = KeywordVocabulary()
        ids = [v.add(t) for t in ("p", "q", "r")]
        assert v.global_mask(["p", "r"]) == (1 << ids[0]) | (1 << ids[2])

    def test_query_mask_positions(self):
        v = KeywordVocabulary()
        for t in ("w", "x", "y"):
            v.add(t)
        mapping = v.query_mask(["y", "w"])
        assert mapping[v.id_of("y")] == 0b01
        assert mapping[v.id_of("w")] == 0b10

    def test_len(self):
        v = KeywordVocabulary()
        v.add("one")
        v.add("two")
        v.add("one")
        assert len(v) == 2
