"""Tests for the from-scratch R*-tree: invariants and query correctness."""

import math
import random

import pytest

from repro.index.mbr import MBR
from repro.index.rstar import RStarTree


def _random_records(seed, n, extent=100.0):
    rng = random.Random(seed)
    return [(i, rng.uniform(0, extent), rng.uniform(0, extent)) for i in range(n)]


class TestInsertion:
    def test_empty_tree(self):
        tree = RStarTree(max_entries=8)
        assert len(tree) == 0
        assert list(tree.range_circle(0, 0, 100)) == []

    def test_insert_and_count(self):
        tree = RStarTree(max_entries=8)
        for item, x, y in _random_records(1, 50):
            tree.insert(item, x, y)
        assert len(tree) == 50
        tree.check_invariants()

    def test_split_produces_valid_tree(self):
        tree = RStarTree(max_entries=4)
        for item, x, y in _random_records(2, 200):
            tree.insert(item, x, y)
        tree.check_invariants()
        assert tree.height() >= 3

    def test_rejects_tiny_fanout(self):
        with pytest.raises(ValueError):
            RStarTree(max_entries=3)

    def test_duplicate_locations(self):
        tree = RStarTree(max_entries=4)
        for i in range(30):
            tree.insert(i, 5.0, 5.0)
        tree.check_invariants()
        assert len(list(tree.range_circle(5, 5, 0.1))) == 30


class TestBulkLoad:
    @pytest.mark.parametrize("n", [0, 1, 5, 100, 1234])
    def test_sizes(self, n):
        tree = RStarTree.bulk_load(_random_records(3, n), max_entries=16)
        assert len(tree) == n
        if n:
            tree.check_invariants()

    def test_bulk_load_all_entries_present(self):
        records = _random_records(4, 300)
        tree = RStarTree.bulk_load(records, max_entries=10)
        items = sorted(e.item for e in tree.iter_leaf_entries())
        assert items == list(range(300))

    def test_height_logarithmic(self):
        tree = RStarTree.bulk_load(_random_records(5, 10_000), max_entries=100)
        assert tree.height() <= 3


class TestRangeQueries:
    @pytest.mark.parametrize("builder", ["insert", "bulk"])
    def test_range_circle_matches_bruteforce(self, builder):
        records = _random_records(6, 400)
        if builder == "insert":
            tree = RStarTree(max_entries=8)
            for r in records:
                tree.insert(*r)
        else:
            tree = RStarTree.bulk_load(records, max_entries=8)
        for cx, cy, r in [(50, 50, 10), (0, 0, 30), (90, 10, 5), (50, 50, 0.0)]:
            expected = {
                item
                for item, x, y in records
                if math.hypot(x - cx, y - cy) <= r
            }
            got = {e.item for e in tree.range_circle(cx, cy, r)}
            assert got == expected

    def test_range_rect_matches_bruteforce(self):
        records = _random_records(7, 300)
        tree = RStarTree.bulk_load(records, max_entries=12)
        box = MBR(20, 30, 60, 70)
        expected = {
            item for item, x, y in records if 20 <= x <= 60 and 30 <= y <= 70
        }
        got = {e.item for e in tree.range_rect(box)}
        assert got == expected


class TestNearest:
    def test_nearest_matches_bruteforce(self):
        records = _random_records(8, 500)
        tree = RStarTree.bulk_load(records, max_entries=16)
        rng = random.Random(99)
        for _ in range(20):
            qx, qy = rng.uniform(0, 100), rng.uniform(0, 100)
            best = min(records, key=lambda r: math.hypot(r[1] - qx, r[2] - qy))
            got = tree.nearest(qx, qy)
            assert got is not None
            assert math.hypot(got.x - qx, got.y - qy) == pytest.approx(
                math.hypot(best[1] - qx, best[2] - qy)
            )

    def test_nearest_with_predicate(self):
        records = _random_records(9, 200)
        tree = RStarTree.bulk_load(records, max_entries=8)
        even = tree.nearest(50, 50, predicate=lambda e: e.item % 2 == 0)
        assert even is not None and even.item % 2 == 0
        best_even = min(
            (r for r in records if r[0] % 2 == 0),
            key=lambda r: math.hypot(r[1] - 50, r[2] - 50),
        )
        assert math.hypot(even.x - 50, even.y - 50) == pytest.approx(
            math.hypot(best_even[1] - 50, best_even[2] - 50)
        )

    def test_nearest_iter_ascending_distances(self):
        records = _random_records(10, 100)
        tree = RStarTree.bulk_load(records, max_entries=8)
        dists = [d for _e, d in tree.nearest_iter(25, 75)]
        assert dists == sorted(dists)
        assert len(dists) == 100

    def test_nearest_empty_tree(self):
        assert RStarTree(max_entries=8).nearest(0, 0) is None

    def test_prune_cuts_subtrees(self):
        records = _random_records(11, 200)
        tree = RStarTree.bulk_load(records, max_entries=8)
        # Prune everything: no results.
        assert tree.nearest(50, 50, prune=lambda n: True) is None


class TestMixedWorkload:
    def test_bulk_then_insert(self):
        tree = RStarTree.bulk_load(_random_records(12, 100), max_entries=8)
        for item, x, y in _random_records(13, 100):
            tree.insert(item + 1000, x, y)
        assert len(tree) == 200
        tree.check_invariants()
