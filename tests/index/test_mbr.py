"""Tests for MBRs and the MinDist/MaxDist bounds."""

import math
import random

import pytest

from repro.index.mbr import MBR, max_dist, mbr_of_points, min_dist, point_min_dist


class TestMBRBasics:
    def test_from_point(self):
        box = MBR.from_point((2, 3))
        assert (box.x1, box.y1, box.x2, box.y2) == (2, 3, 2, 3)
        assert box.area() == 0.0

    def test_empty(self):
        assert MBR.empty().is_empty()
        assert MBR.empty().area() == 0.0
        assert MBR.empty().margin() == 0.0

    def test_include_point_grows(self):
        box = MBR.from_point((0, 0))
        box.include_point((4, -2))
        assert (box.x1, box.y1, box.x2, box.y2) == (0, -2, 4, 0)

    def test_union_and_enlargement(self):
        a = MBR(0, 0, 2, 2)
        b = MBR(3, 3, 4, 4)
        u = a.union(b)
        assert (u.x1, u.y1, u.x2, u.y2) == (0, 0, 4, 4)
        assert a.enlargement(b) == pytest.approx(16 - 4)

    def test_margin(self):
        assert MBR(0, 0, 3, 4).margin() == 7.0

    def test_center(self):
        assert MBR(0, 0, 4, 2).center() == (2.0, 1.0)


class TestPredicates:
    def test_contains_point(self):
        box = MBR(0, 0, 2, 2)
        assert box.contains_point((1, 1))
        assert box.contains_point((2, 2))  # boundary
        assert not box.contains_point((2.1, 1))

    def test_intersects(self):
        a = MBR(0, 0, 2, 2)
        assert a.intersects(MBR(1, 1, 3, 3))
        assert a.intersects(MBR(2, 2, 3, 3))  # touching counts
        assert not a.intersects(MBR(3, 3, 4, 4))

    def test_intersection_area(self):
        a = MBR(0, 0, 2, 2)
        assert a.intersection_area(MBR(1, 1, 3, 3)) == pytest.approx(1.0)
        assert a.intersection_area(MBR(5, 5, 6, 6)) == 0.0

    def test_intersects_circle(self):
        box = MBR(0, 0, 2, 2)
        assert box.intersects_circle(1, 1, 0.1)   # centre inside
        assert box.intersects_circle(3, 1, 1.0)   # touching edge
        assert not box.intersects_circle(4, 4, 1.0)


class TestDistanceBounds:
    def test_min_dist_overlapping_is_zero(self):
        assert min_dist(MBR(0, 0, 2, 2), MBR(1, 1, 3, 3)) == 0.0

    def test_min_dist_axis_separated(self):
        assert min_dist(MBR(0, 0, 1, 1), MBR(3, 0, 4, 1)) == 2.0

    def test_min_dist_diagonal(self):
        assert min_dist(MBR(0, 0, 1, 1), MBR(4, 5, 6, 7)) == pytest.approx(5.0)

    def test_max_dist_corners(self):
        assert max_dist(MBR(0, 0, 1, 1), MBR(3, 0, 4, 1)) == pytest.approx(
            math.hypot(4, 1)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_bounds_hold_for_random_points(self, seed):
        rng = random.Random(seed)
        pts_a = [(rng.uniform(0, 3), rng.uniform(0, 3)) for _ in range(6)]
        pts_b = [(rng.uniform(5, 9), rng.uniform(2, 8)) for _ in range(6)]
        a, b = mbr_of_points(pts_a), mbr_of_points(pts_b)
        lo, hi = min_dist(a, b), max_dist(a, b)
        for p in pts_a:
            for q in pts_b:
                d = math.hypot(p[0] - q[0], p[1] - q[1])
                assert lo - 1e-9 <= d <= hi + 1e-9

    def test_point_min_dist(self):
        box = MBR(0, 0, 2, 2)
        assert point_min_dist((1, 1), box) == 0.0
        assert point_min_dist((4, 1), box) == 2.0
        assert point_min_dist((4, 4), box) == pytest.approx(math.hypot(2, 2))


class TestMbrOfPoints:
    def test_basic(self):
        box = mbr_of_points([(1, 5), (-2, 3), (4, 0)])
        assert (box.x1, box.y1, box.x2, box.y2) == (-2, 0, 4, 5)

    def test_empty_iterable(self):
        assert mbr_of_points([]).is_empty()
