"""Tests for the keyword-bitmap-augmented bR*-tree."""

import math
import random

import pytest

from repro.index.bitmap import mask_of
from repro.index.brtree import BRStarTree


def _records(seed, n, n_terms=6):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        terms = rng.sample(range(n_terms), rng.randint(1, 3))
        out.append((i, rng.uniform(0, 100), rng.uniform(0, 100), mask_of(terms)))
    return out


class TestBuild:
    def test_build_and_invariants(self):
        tree = BRStarTree.build(_records(1, 300), max_entries=8)
        assert len(tree) == 300
        tree.check_invariants()

    def test_root_mask_is_union(self):
        records = _records(2, 100)
        tree = BRStarTree.build(records, max_entries=8)
        expected = 0
        for _i, _x, _y, mask in records:
            expected |= mask
        assert tree.node_mask(tree.root) == expected

    def test_item_mask(self):
        records = _records(3, 20)
        tree = BRStarTree.build(records, max_entries=8)
        for item, _x, _y, mask in records:
            assert tree.item_mask(item) == mask

    def test_empty_build(self):
        tree = BRStarTree.build([], max_entries=8)
        assert len(tree) == 0


class TestDynamicInsert:
    def test_insert_refreshes_masks(self):
        tree = BRStarTree.build(_records(4, 50), max_entries=8)
        tree.insert(999, 50, 50, mask_of([5]))
        assert tree.node_mask(tree.root) & (1 << 5)
        tree.check_invariants()

    def test_insert_many(self):
        tree = BRStarTree.build([], max_entries=8)
        for item, x, y, mask in _records(5, 120):
            tree.insert(item, x, y, mask)
        assert len(tree) == 120
        tree.check_invariants()


class TestNearestWithMask:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bruteforce(self, seed):
        records = _records(seed + 10, 250)
        tree = BRStarTree.build(records, max_entries=8)
        rng = random.Random(seed)
        for _ in range(10):
            qx, qy = rng.uniform(0, 100), rng.uniform(0, 100)
            bit = 1 << rng.randrange(6)
            holders = [r for r in records if r[3] & bit]
            if not holders:
                continue
            best = min(holders, key=lambda r: math.hypot(r[1] - qx, r[2] - qy))
            got = tree.nearest_with_mask(qx, qy, bit)
            assert got is not None
            assert math.hypot(got.x - qx, got.y - qy) == pytest.approx(
                math.hypot(best[1] - qx, best[2] - qy)
            )
            assert tree.item_mask(got.item) & bit

    def test_no_holder_returns_none(self):
        tree = BRStarTree.build(_records(20, 50, n_terms=4), max_entries=8)
        assert tree.nearest_with_mask(0, 0, 1 << 60) is None

    def test_nearest_iter_filters_and_sorts(self):
        records = _records(21, 150)
        tree = BRStarTree.build(records, max_entries=8)
        bit = 1
        pairs = list(tree.nearest_iter_with_mask(50, 50, bit))
        dists = [d for _e, d in pairs]
        assert dists == sorted(dists)
        for entry, _d in pairs:
            assert tree.item_mask(entry.item) & bit

    def test_multi_bit_mask_matches_any(self):
        records = [
            (0, 0.0, 0.0, mask_of([0])),
            (1, 10.0, 0.0, mask_of([1])),
            (2, 20.0, 0.0, mask_of([2])),
        ]
        tree = BRStarTree.build(records, max_entries=8)
        got = tree.nearest_with_mask(9.0, 0.0, mask_of([1, 2]))
        assert got is not None and got.item == 1


class TestRangeDelegation:
    def test_range_circle(self):
        records = _records(30, 200)
        tree = BRStarTree.build(records, max_entries=8)
        got = {e.item for e in tree.range_circle(50, 50, 20)}
        expected = {
            i for i, x, y, _m in records if math.hypot(x - 50, y - 50) <= 20
        }
        assert got == expected


class TestIncrementalMaskMaintenance:
    """Regression: interleaved inserts and reads keep bitmaps exact.

    Non-restructuring inserts OR the new mask along the leaf-to-root path
    instead of marking everything stale; any interleaving of inserts,
    ``node_mask`` reads, and ``check_invariants`` must keep every node's
    bitmap equal to the union of its subtree.
    """

    def test_interleaved_inserts_and_reads_stay_exact(self):
        rng = random.Random(99)
        tree = BRStarTree.build(_records(99, 60), max_entries=8)
        next_id = 1000
        for step in range(200):
            terms = rng.sample(range(6), rng.randint(1, 3))
            tree.insert(
                next_id, rng.uniform(0, 100), rng.uniform(0, 100),
                mask_of(terms),
            )
            next_id += 1
            if step % 3 == 0:
                # A read between inserts freshens stale annotations, so
                # later inserts go down the incremental path again.
                assert tree.node_mask(tree.root) != 0
            if step % 7 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert len(tree) == 260

    def test_incremental_path_actually_taken(self):
        """With reads interleaved, most inserts avoid the full recompute."""
        rng = random.Random(7)
        tree = BRStarTree.build(_records(7, 80), max_entries=8)
        incremental = 0
        for i in range(100):
            tree.node_mask(tree.root)  # freshen before each insert
            tree.insert(
                2000 + i, rng.uniform(0, 100), rng.uniform(0, 100),
                mask_of([rng.randrange(6)]),
            )
            if tree._masks_fresh:
                incremental += 1
        # STR bulk-load packs leaves full, so early inserts split; still,
        # the majority of steady-state inserts must take the cheap path.
        assert incremental >= 50
        tree.check_invariants()

    def test_rebound_item_with_new_mask_forces_recompute(self):
        """Re-registering an item with a different mask cannot leave the
        old bits resident anywhere (incremental OR could never clear
        them, so the tree must fall back to a full recompute)."""
        tree = BRStarTree.build(_records(42, 40), max_entries=8)
        tree.node_mask(tree.root)
        tree.insert(0, 50.0, 50.0, mask_of([5]))  # item 0 re-registered
        assert not tree._masks_fresh
        tree.check_invariants()
        assert tree.item_mask(0) == mask_of([5])

    def test_insert_into_stale_tree_stays_stale_until_read(self):
        tree = BRStarTree.build(_records(43, 40), max_entries=8)
        tree._masks_fresh = False  # as after a restructuring insert
        tree.insert(500, 10.0, 10.0, mask_of([2]))
        assert not tree._masks_fresh
        tree.check_invariants()  # the read recomputes and verifies

    def test_root_growth_detected(self):
        """Splitting the root swaps the root node; the incremental path
        must notice and fall back rather than OR into a dead root."""
        tree = BRStarTree.build([], max_entries=4)
        rng = random.Random(44)
        for i in range(50):
            tree.insert(
                i, rng.uniform(0, 100), rng.uniform(0, 100),
                mask_of([i % 6]),
            )
        tree.check_invariants()
        expected = 0
        for i in range(50):
            expected |= mask_of([i % 6])
        assert tree.node_mask(tree.root) == expected
