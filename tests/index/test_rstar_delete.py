"""Tests for R*-tree deletion (CondenseTree)."""

import random

import pytest

from repro.index.rstar import RStarTree


def _records(seed, n):
    rng = random.Random(seed)
    return [(i, rng.uniform(0, 100), rng.uniform(0, 100)) for i in range(n)]


class TestDelete:
    def test_delete_existing(self):
        records = _records(1, 50)
        tree = RStarTree.bulk_load(records, max_entries=6)
        item, x, y = records[10]
        assert tree.delete(item, x, y)
        assert len(tree) == 49
        assert item not in {e.item for e in tree.iter_leaf_entries()}
        tree.check_invariants()

    def test_delete_missing_returns_false(self):
        tree = RStarTree.bulk_load(_records(2, 20), max_entries=6)
        assert not tree.delete(999, 1.0, 1.0)
        assert len(tree) == 20

    def test_delete_wrong_location_returns_false(self):
        records = _records(3, 20)
        tree = RStarTree.bulk_load(records, max_entries=6)
        item, x, y = records[0]
        assert not tree.delete(item, x + 50.0, y)
        assert len(tree) == 20

    def test_delete_from_empty(self):
        tree = RStarTree(max_entries=6)
        assert not tree.delete(0, 0.0, 0.0)

    def test_delete_all_one_by_one(self):
        records = _records(4, 120)
        tree = RStarTree.bulk_load(records, max_entries=5)
        rng = random.Random(4)
        order = list(records)
        rng.shuffle(order)
        remaining = {i for i, _x, _y in records}
        for step, (item, x, y) in enumerate(order):
            assert tree.delete(item, x, y), item
            remaining.discard(item)
            if step % 17 == 0 and remaining:
                tree.check_invariants()
                assert {e.item for e in tree.iter_leaf_entries()} == remaining
        assert len(tree) == 0

    def test_root_shrinks_after_mass_deletion(self):
        records = _records(5, 200)
        tree = RStarTree.bulk_load(records, max_entries=5)
        tall = tree.height()
        for item, x, y in records[:190]:
            assert tree.delete(item, x, y)
        tree.check_invariants()
        assert tree.height() <= tall
        assert len(tree) == 10

    def test_queries_correct_after_deletions(self):
        records = _records(6, 150)
        tree = RStarTree.bulk_load(records, max_entries=6)
        deleted = set()
        for item, x, y in records[::3]:
            tree.delete(item, x, y)
            deleted.add(item)
        import math

        got = {e.item for e in tree.range_circle(50, 50, 30)}
        expected = {
            i
            for i, x, y in records
            if i not in deleted and math.hypot(x - 50, y - 50) <= 30
        }
        assert got == expected

    def test_interleaved_insert_delete(self):
        tree = RStarTree(max_entries=4)
        rng = random.Random(7)
        alive = {}
        for step in range(400):
            if alive and rng.random() < 0.4:
                item = rng.choice(list(alive))
                x, y = alive.pop(item)
                assert tree.delete(item, x, y)
            else:
                item = step
                x, y = rng.uniform(0, 100), rng.uniform(0, 100)
                alive[item] = (x, y)
                tree.insert(item, x, y)
        tree.check_invariants()
        assert {e.item for e in tree.iter_leaf_entries()} == set(alive)

    def test_duplicate_positions_delete_one(self):
        tree = RStarTree(max_entries=4)
        for i in range(10):
            tree.insert(i, 5.0, 5.0)
        assert tree.delete(3, 5.0, 5.0)
        items = {e.item for e in tree.iter_leaf_entries()}
        assert items == set(range(10)) - {3}


class TestDatasetSample:
    def test_sample_size_and_determinism(self):
        from tests.conftest import make_random_dataset

        ds = make_random_dataset(1, n=60)
        a = ds.sample(20, seed=3)
        b = ds.sample(20, seed=3)
        assert len(a) == 20
        assert [o.location for o in a] == [o.location for o in b]

    def test_sample_subset_of_parent(self):
        from tests.conftest import make_random_dataset

        ds = make_random_dataset(2, n=40)
        parent_locations = {o.location for o in ds}
        child = ds.sample(15, seed=1)
        assert all(o.location in parent_locations for o in child)

    def test_sample_bounds(self):
        from repro.exceptions import DatasetError
        from tests.conftest import make_random_dataset

        ds = make_random_dataset(3, n=10)
        with pytest.raises(DatasetError):
            ds.sample(11)
        assert len(ds.sample(0)) == 0 or True  # zero-size sample allowed

    def test_filter_bbox(self):
        from repro.core.objects import Dataset

        ds = Dataset.from_records(
            [(0, 0, ["a"]), (5, 5, ["b"]), (20, 20, ["c"])]
        )
        inside = ds.filter_bbox(-1, -1, 10, 10)
        assert len(inside) == 2
        assert inside.unique_word_count() == 2
