"""Tests for the per-query virtual bR*-tree."""

import math

import numpy as np
import pytest

from repro.exceptions import InfeasibleQueryError
from repro.index.inverted import InvertedIndex
from repro.index.virtual import VirtualBRTree


def _fixture():
    """Five objects over terms {0: alpha, 1: beta, 2: gamma, 3: delta}."""
    locations = {0: (0, 0), 1: (1, 0), 2: (5, 5), 3: (9, 9), 4: (2, 2)}
    term_ids = {0: (0,), 1: (1,), 2: (0, 2), 3: (3,), 4: (1, 2)}
    inverted = InvertedIndex()
    for oid, tids in term_ids.items():
        inverted.add_object(oid, tids)
    inverted.finalize()
    return locations, term_ids, inverted


class TestBuild:
    def test_relevant_objects_only(self):
        locations, term_ids, inverted = _fixture()
        vt = VirtualBRTree.build(inverted, [0, 1], locations, term_ids)
        # Terms 0 and 1 appear in objects 0, 1, 2, 4 (object 3 has only term 3).
        assert vt.object_ids == [0, 1, 2, 4]
        assert len(vt) == 4

    def test_query_local_masks(self):
        locations, term_ids, inverted = _fixture()
        vt = VirtualBRTree.build(inverted, [1, 0], locations, term_ids)
        # Query order [1, 0]: bit 0 = term 1, bit 1 = term 0.
        assert vt.mask_of(1) == 0b01  # object 1 holds term 1
        assert vt.mask_of(0) == 0b10  # object 0 holds term 0
        assert vt.mask_of(2) == 0b10  # term 2 not in query, term 0 is

    def test_full_mask(self):
        locations, term_ids, inverted = _fixture()
        vt = VirtualBRTree.build(inverted, [0, 1, 2], locations, term_ids)
        assert vt.full_mask == 0b111

    def test_infeasible_raises(self):
        locations, term_ids, inverted = _fixture()
        with pytest.raises(InfeasibleQueryError):
            VirtualBRTree.build(inverted, [0, 99], locations, term_ids)

    def test_infeasible_reports_term_names(self):
        locations, term_ids, inverted = _fixture()
        with pytest.raises(InfeasibleQueryError) as exc:
            VirtualBRTree.build(
                inverted, [0, 99], locations, term_ids,
                query_terms=["alpha", "missing"],
            )
        assert exc.value.missing_keywords == ("missing",)

    def test_coords_row_aligned(self):
        locations, term_ids, inverted = _fixture()
        vt = VirtualBRTree.build(inverted, [0, 1], locations, term_ids)
        for oid in vt.object_ids:
            row = vt.row_of(oid)
            assert tuple(vt.coords[row]) == locations[oid]


class TestQueries:
    def test_rows_within(self):
        locations, term_ids, inverted = _fixture()
        vt = VirtualBRTree.build(inverted, [0, 1], locations, term_ids)
        rows = vt.rows_within(0.0, 0.0, 1.5)
        got_oids = sorted(vt.object_ids[r] for r in rows)
        assert got_oids == [0, 1]

    def test_rows_within_closed_boundary(self):
        locations, term_ids, inverted = _fixture()
        vt = VirtualBRTree.build(inverted, [0, 1], locations, term_ids)
        rows = vt.rows_within(0.0, 0.0, 1.0)  # object 1 at distance exactly 1
        assert 1 in {vt.object_ids[r] for r in rows}

    def test_union_mask_and_covers(self):
        locations, term_ids, inverted = _fixture()
        vt = VirtualBRTree.build(inverted, [0, 1], locations, term_ids)
        r0, r1 = vt.row_of(0), vt.row_of(1)
        assert vt.union_mask([r0]) == 0b01
        assert not vt.covers_query([r0])
        assert vt.covers_query([r0, r1])

    def test_location_of(self):
        locations, term_ids, inverted = _fixture()
        vt = VirtualBRTree.build(inverted, [0, 1, 2, 3], locations, term_ids)
        assert vt.location_of(3) == (9, 9)

    def test_underlying_tree_consistent(self):
        locations, term_ids, inverted = _fixture()
        vt = VirtualBRTree.build(inverted, [0, 1, 2, 3], locations, term_ids)
        vt.tree.check_invariants()
        items = sorted(e.item for e in vt.tree.iter_leaf_entries())
        assert items == vt.object_ids
