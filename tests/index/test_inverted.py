"""Tests for the inverted keyword file."""

from repro.index.inverted import InvertedIndex


def _build():
    idx = InvertedIndex()
    idx.add_object(0, [1, 2])
    idx.add_object(1, [2, 3])
    idx.add_object(2, [1])
    idx.add_object(3, [3, 4])
    idx.finalize()
    return idx


class TestPostings:
    def test_posting_sorted(self):
        idx = _build()
        assert idx.posting(1) == [0, 2]
        assert idx.posting(2) == [0, 1]

    def test_posting_unknown_term_empty(self):
        assert _build().posting(99) == []

    def test_document_frequency(self):
        idx = _build()
        assert idx.document_frequency(3) == 2
        assert idx.document_frequency(4) == 1
        assert idx.document_frequency(42) == 0

    def test_finalize_dedupes(self):
        idx = InvertedIndex()
        idx.add_object(7, [5])
        idx.add_object(7, [5])
        idx.finalize()
        assert idx.posting(5) == [7]

    def test_finalize_idempotent(self):
        idx = _build()
        idx.finalize()
        assert idx.posting(1) == [0, 2]


class TestRelevantObjects:
    def test_union_sorted(self):
        idx = _build()
        assert idx.relevant_objects([1, 3]) == [0, 1, 2, 3]

    def test_single_term(self):
        assert _build().relevant_objects([4]) == [3]

    def test_no_terms(self):
        assert _build().relevant_objects([]) == []

    def test_overlapping_postings_deduped(self):
        assert _build().relevant_objects([1, 2]) == [0, 1, 2]


class TestUncoverable:
    def test_detects_missing_terms(self):
        idx = _build()
        assert idx.uncoverable_terms([1, 9, 4, 77]) == [9, 77]

    def test_all_present(self):
        assert _build().uncoverable_terms([1, 2, 3, 4]) == []


class TestDunder:
    def test_len_counts_terms(self):
        assert len(_build()) == 4

    def test_contains(self):
        idx = _build()
        assert 1 in idx
        assert 9 not in idx


class TestObjectsWithAllTerms:
    def _reference(self, idx, term_ids):
        acc = None
        for tid in term_ids:
            holders = set(idx.posting(tid))
            acc = holders if acc is None else (acc & holders)
        return sorted(acc or ())

    def test_simple_intersection(self):
        idx = _build()
        assert idx.objects_with_all_terms([1, 2]) == [0]
        assert idx.objects_with_all_terms([2, 3]) == [1]
        assert idx.objects_with_all_terms([1, 4]) == []

    def test_empty_and_duplicate_terms(self):
        idx = _build()
        assert idx.objects_with_all_terms([]) == []
        assert idx.objects_with_all_terms([1, 1, 2]) == [0]

    def test_unknown_term_short_circuits(self):
        assert _build().objects_with_all_terms([1, 99]) == []

    def test_merge_bitmap_and_scalar_strategies_agree(self):
        """Dense postings route through the bitmap path, sparse ones
        through the sorted merge, the object path through sets — all
        three must return the identical sorted id list."""
        import random

        from repro.kernels import scalar_kernels

        rng = random.Random(0xA11)
        idx = InvertedIndex()
        # Term 0: dense (most objects) -> bitmap path once it is the
        # smallest remaining column; terms 1..5: increasingly sparse.
        for oid in range(500):
            terms = [0] if rng.random() < 0.9 else []
            terms += [t for t in range(1, 6) if rng.random() < 0.3 / t]
            idx.add_object(oid, terms)
        idx.finalize()

        queries = [[0, 1], [1, 2, 3], [0, 1, 2, 3, 4, 5], [5], [2, 4]]
        for q in queries:
            expected = self._reference(idx, q)
            assert idx.objects_with_all_terms(q) == expected
            with scalar_kernels():
                assert idx.objects_with_all_terms(q) == expected
