"""Tests for the inverted keyword file."""

from repro.index.inverted import InvertedIndex


def _build():
    idx = InvertedIndex()
    idx.add_object(0, [1, 2])
    idx.add_object(1, [2, 3])
    idx.add_object(2, [1])
    idx.add_object(3, [3, 4])
    idx.finalize()
    return idx


class TestPostings:
    def test_posting_sorted(self):
        idx = _build()
        assert idx.posting(1) == [0, 2]
        assert idx.posting(2) == [0, 1]

    def test_posting_unknown_term_empty(self):
        assert _build().posting(99) == []

    def test_document_frequency(self):
        idx = _build()
        assert idx.document_frequency(3) == 2
        assert idx.document_frequency(4) == 1
        assert idx.document_frequency(42) == 0

    def test_finalize_dedupes(self):
        idx = InvertedIndex()
        idx.add_object(7, [5])
        idx.add_object(7, [5])
        idx.finalize()
        assert idx.posting(5) == [7]

    def test_finalize_idempotent(self):
        idx = _build()
        idx.finalize()
        assert idx.posting(1) == [0, 2]


class TestRelevantObjects:
    def test_union_sorted(self):
        idx = _build()
        assert idx.relevant_objects([1, 3]) == [0, 1, 2, 3]

    def test_single_term(self):
        assert _build().relevant_objects([4]) == [3]

    def test_no_terms(self):
        assert _build().relevant_objects([]) == []

    def test_overlapping_postings_deduped(self):
        assert _build().relevant_objects([1, 2]) == [0, 1, 2]


class TestUncoverable:
    def test_detects_missing_terms(self):
        idx = _build()
        assert idx.uncoverable_terms([1, 9, 4, 77]) == [9, 77]

    def test_all_present(self):
        assert _build().uncoverable_terms([1, 2, 3, 4]) == []


class TestDunder:
    def test_len_counts_terms(self):
        assert len(_build()) == 4

    def test_contains(self):
        idx = _build()
        assert 1 in idx
        assert 9 not in idx
