"""Tests for the uniform grid."""

import math
import random

import numpy as np
import pytest

from repro.index.grid import UniformGrid


def _cloud(seed, n, extent=100.0):
    rng = random.Random(seed)
    return np.array(
        [(rng.uniform(0, extent), rng.uniform(0, extent)) for _ in range(n)]
    )


class TestConstruction:
    def test_empty(self):
        grid = UniformGrid(np.empty((0, 2)))
        assert len(grid) == 0
        assert grid.rows_within(0, 0, 10).size == 0

    def test_single_point(self):
        grid = UniformGrid(np.array([[5.0, 5.0]]))
        assert list(grid.rows_within(5, 5, 0.0)) == [0]

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            UniformGrid(np.zeros((3, 3)))

    def test_explicit_cell_size(self):
        grid = UniformGrid(_cloud(1, 50), cell_size=10.0)
        assert grid.cell_size == 10.0


class TestDiscQueries:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bruteforce(self, seed):
        coords = _cloud(seed, 300)
        grid = UniformGrid(coords)
        rng = random.Random(seed + 100)
        for _ in range(15):
            cx, cy = rng.uniform(-10, 110), rng.uniform(-10, 110)
            r = rng.uniform(0, 40)
            expected = {
                i
                for i in range(len(coords))
                if math.hypot(coords[i, 0] - cx, coords[i, 1] - cy) <= r
            }
            got = set(grid.rows_within(cx, cy, r).tolist())
            assert got == expected

    def test_boundary_is_closed(self):
        coords = np.array([[0.0, 0.0], [3.0, 0.0]])
        grid = UniformGrid(coords)
        assert 1 in set(grid.rows_within(0, 0, 3.0).tolist())

    def test_negative_radius_empty(self):
        grid = UniformGrid(_cloud(2, 20))
        assert grid.rows_within(50, 50, -1.0).size == 0

    def test_count_within(self):
        coords = np.array([[0, 0], [1, 0], [5, 0]], dtype=float)
        grid = UniformGrid(coords)
        assert grid.count_within(0, 0, 1.5) == 2

    def test_identical_points(self):
        coords = np.zeros((25, 2))
        grid = UniformGrid(coords)
        assert grid.count_within(0, 0, 0.0) == 25


class TestDegenerateExtent:
    def test_huge_radius_over_tiny_extent_is_fast(self):
        """Regression: the cell sweep must clamp to occupied cells — a
        kilometre-radius query over a nanometre-extent grid previously
        iterated ~1e12 empty cells."""
        import time

        coords = np.array([[0.0, 0.0], [1e-9, 1e-9]])
        grid = UniformGrid(coords)
        started = time.perf_counter()
        rows = grid.rows_within(0.0, 0.0, 1e6)
        assert time.perf_counter() - started < 1.0
        assert sorted(rows.tolist()) == [0, 1]

    def test_far_query_center(self):
        coords = np.array([[5.0, 5.0]])
        grid = UniformGrid(coords)
        assert grid.rows_within(1e7, 1e7, 5.0).size == 0
        assert grid.rows_within(1e7, 1e7, 2e7).size == 1


def _reference_cells(coords, cell_size):
    """The pre-columnar bucket build: one Python loop of appends."""
    coords = np.asarray(coords, dtype=np.float64)
    min_xy = coords.min(axis=0)
    keys_x = np.floor((coords[:, 0] - min_xy[0]) / cell_size).astype(np.int64)
    keys_y = np.floor((coords[:, 1] - min_xy[1]) / cell_size).astype(np.int64)
    cells = {}
    for row, (kx, ky) in enumerate(zip(keys_x, keys_y)):
        cells.setdefault((int(kx), int(ky)), []).append(row)
    return {key: np.asarray(rows, dtype=np.intp) for key, rows in cells.items()}


class TestLexsortBucketEquivalence:
    """The lexsort-grouped build must reproduce the loop build exactly,
    including the ascending within-cell row order the loop's appends gave
    (callers rely on it for deterministic scan order)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_cells_match_reference_loop(self, seed):
        coords = _cloud(seed, 400)
        grid = UniformGrid(coords, cell_size=7.0)
        expected = _reference_cells(coords, 7.0)
        assert set(grid._cells) == set(expected)
        for key, rows in expected.items():
            np.testing.assert_array_equal(grid._cells[key], rows)

    def test_within_cell_order_is_ascending(self):
        # Many points in one cell, inserted in scrambled order by row id.
        rng = random.Random(9)
        coords = np.array(
            [(rng.uniform(0, 1), rng.uniform(0, 1)) for _ in range(64)]
        )
        grid = UniformGrid(coords, cell_size=10.0)
        (rows,) = grid._cells.values()
        np.testing.assert_array_equal(rows, np.arange(64, dtype=np.intp))

    def test_duplicate_coordinates_single_bucket(self):
        coords = np.tile(np.array([[3.0, 4.0]]), (10, 1))
        grid = UniformGrid(coords, cell_size=1.0)
        expected = _reference_cells(coords, 1.0)
        assert set(grid._cells) == set(expected)
        for key, rows in expected.items():
            np.testing.assert_array_equal(grid._cells[key], rows)
