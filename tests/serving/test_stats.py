"""Tests for QueryStats records and the MetricsRegistry aggregates."""

import json
import math

import pytest

from repro.serving.stats import MetricsRegistry, QueryStats


def _stats(algorithm="SKECa+", seconds=0.5, cache_hit=False, success=True, **counters):
    return QueryStats(
        keywords=("a", "b"),
        algorithm=algorithm,
        epsilon=0.01,
        context_seconds=0.1,
        algorithm_seconds=seconds,
        total_seconds=seconds,
        cache_hit=cache_hit,
        success=success,
        diameter=1.0,
        group_size=2,
        counters={k: float(v) for k, v in counters.items()},
    )


class TestQueryStats:
    def test_as_dict_is_json_serializable(self):
        d = _stats(circle_scans=3).as_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["counters"] == {"circle_scans": 3.0}

    def test_nan_diameter_becomes_none(self):
        s = _stats()
        s.diameter = math.nan
        assert s.as_dict()["diameter"] is None


class TestMetricsRegistry:
    def test_record_aggregates_per_algorithm(self):
        reg = MetricsRegistry()
        reg.record(_stats("GKG", 0.1))
        reg.record(_stats("GKG", 0.3))
        reg.record(_stats("EXACT", 1.0))
        dump = reg.as_dict()
        assert dump["queries_total"] == 3
        gkg = dump["algorithms"]["GKG"]
        assert gkg["queries"] == 2
        assert gkg["executed"] == 2
        assert gkg["latency_seconds"]["mean"] == (0.1 + 0.3) / 2
        assert gkg["latency_seconds"]["p50"] is not None
        assert gkg["latency_seconds"]["p95"] is not None

    def test_cache_hits_do_not_skew_latency(self):
        reg = MetricsRegistry()
        reg.record(_stats(seconds=1.0))
        for _ in range(10):
            reg.record(_stats(seconds=0.000001, cache_hit=True))
        agg = reg.as_dict()["algorithms"]["SKECa+"]
        assert agg["queries"] == 11
        assert agg["cache_hits"] == 10
        assert agg["executed"] == 1
        assert agg["latency_seconds"]["mean"] == 1.0

    def test_counters_sum(self):
        reg = MetricsRegistry()
        reg.record(_stats(circle_scans=2, pruned_poles=1))
        reg.record(_stats(circle_scans=5))
        counters = reg.as_dict()["algorithms"]["SKECa+"]["counters"]
        assert counters["circle_scans"] == 7.0
        assert counters["pruned_poles"] == 1.0

    def test_failures_counted(self):
        reg = MetricsRegistry()
        reg.record(_stats(success=False))
        assert reg.as_dict()["algorithms"]["SKECa+"]["failures"] == 1

    def test_counts_are_monotone(self):
        reg = MetricsRegistry()
        seen = []
        for i in range(5):
            reg.record(_stats(seconds=0.1 * (i + 1)))
            seen.append(reg.total_queries)
        assert seen == sorted(seen)
        assert seen[-1] == 5

    def test_record_cache_snapshot(self):
        reg = MetricsRegistry()
        reg.record_cache({"hits": 3, "misses": 1})
        reg.record_cache({"hits": 5, "misses": 2, "evictions": 1})
        assert reg.as_dict()["cache"] == {"hits": 5, "misses": 2, "evictions": 1}

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.record(_stats())
        parsed = json.loads(reg.to_json())
        assert parsed["queries_total"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.record(_stats())
        reg.reset()
        assert reg.as_dict()["queries_total"] == 0
        assert reg.as_dict()["algorithms"] == {}

    def test_default_is_a_singleton(self):
        assert MetricsRegistry.default() is MetricsRegistry.default()


class TestHistogramFamilies:
    def test_latency_histogram_labelled_by_algorithm_and_cache(self):
        reg = MetricsRegistry()
        reg.record(_stats("GKG", 0.2))
        reg.record(_stats("GKG", 0.0001, cache_hit=True))
        hist = reg.latency_histogram
        assert hist.count(algorithm="GKG", cache="miss") == 1
        assert hist.count(algorithm="GKG", cache="hit") == 1

    def test_work_counter_folds_instrumentation_counters(self):
        reg = MetricsRegistry()
        reg.record(_stats("EXACT", circle_scans=4, pruned_poles=2))
        reg.record(_stats("EXACT", circle_scans=6))
        assert reg.work_counter.value(algorithm="EXACT", counter="circle_scans") == 10.0
        assert reg.work_counter.value(algorithm="EXACT", counter="pruned_poles") == 2.0

    def test_as_dict_includes_histograms_section(self):
        reg = MetricsRegistry()
        reg.record(_stats("GKG", 0.2))
        dump = reg.as_dict()
        assert "mck_query_latency_seconds" in dump["histograms"]
        (series,) = [
            s
            for s in dump["histograms"]["mck_query_latency_seconds"]["series"]
            if s["labels"]["cache"] == "miss"
        ]
        assert series["count"] == 1
        assert series["p50"] is not None

    def test_to_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.record(_stats("SKECa+", 0.05))
        reg.record(_stats("SKECa+", 0.0001, cache_hit=True))
        text = reg.to_prometheus()
        assert "# TYPE mck_query_latency_seconds histogram" in text
        assert 'algorithm="SKECa+",cache="miss"' in text
        assert 'algorithm="SKECa+",cache="hit"' in text
        assert "mck_queries_total" in text

    def test_custom_family_accessors(self):
        reg = MetricsRegistry()
        counter = reg.counter("my_counter", label_names=("kind",))
        assert reg.counter("my_counter") is counter
        with pytest.raises(ValueError):
            reg.gauge("my_counter")

    def test_reset_clears_families(self):
        reg = MetricsRegistry()
        reg.record(_stats("GKG", 0.2))
        reg.reset()
        assert reg.latency_histogram.count(algorithm="GKG", cache="miss") == 0
        assert reg.to_json()  # still renders


class TestCacheHitOnlyAggregates:
    """A run answered entirely from cache must dump clean JSON (no NaN)."""

    def test_samples_field_and_none_statistics(self):
        reg = MetricsRegistry()
        for _ in range(4):
            reg.record(_stats(cache_hit=True))
        agg = reg.as_dict()["algorithms"]["SKECa+"]
        latency = agg["latency_seconds"]
        assert latency["samples"] == 0
        assert latency["mean"] is None
        assert latency["p50"] is None
        assert latency["p95"] is None
        assert latency["total"] == 0.0
        assert agg["cache_hits"] == 4

    def test_cache_hit_only_dump_is_nan_free_json(self):
        reg = MetricsRegistry()
        for _ in range(3):
            reg.record(_stats(cache_hit=True))
        # allow_nan=False inside to_json: a NaN anywhere would raise here.
        parsed = json.loads(reg.to_json())
        assert parsed["algorithms"]["SKECa+"]["latency_seconds"]["samples"] == 0

    def test_executed_runs_report_samples_count(self):
        reg = MetricsRegistry()
        reg.record(_stats(seconds=0.1))
        reg.record(_stats(seconds=0.2))
        reg.record(_stats(cache_hit=True))
        latency = reg.as_dict()["algorithms"]["SKECa+"]["latency_seconds"]
        assert latency["samples"] == 2
        assert latency["mean"] == pytest.approx(0.15)


class TestCorrelationId:
    def test_correlation_id_round_trips_as_dict(self):
        s = _stats()
        s.correlation_id = "q-deadbeef0123"
        assert s.as_dict()["correlation_id"] == "q-deadbeef0123"
