"""Tests for the batched QueryService: ordering, cache, stats, equivalence."""

import pytest

from repro import MCKEngine
from repro.serving import QueryRequest, QueryService
from repro.serving.cache import make_cache_key
from tests.conftest import feasible_query, make_random_dataset


@pytest.fixture(scope="module")
def dataset():
    return make_random_dataset(11, n=60)


@pytest.fixture(scope="module")
def queries(dataset):
    return [feasible_query(dataset, seed, 3) for seed in range(12)]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestOrderingAndEquivalence:
    def test_results_in_input_order(self, dataset, queries):
        with QueryService(dataset) as service:
            results = service.query_many(queries)
        assert [r.request.keywords for r in results] == [
            tuple(q) for q in queries
        ]

    def test_batched_matches_sequential(self, dataset, queries):
        engine = MCKEngine(dataset)
        sequential = [engine.query(q, algorithm="SKECa+") for q in queries]
        with QueryService(dataset) as service:
            batched = service.query_many(queries, algorithm="SKECa+")
        for seq, bat in zip(sequential, batched):
            assert bat.ok
            assert bat.group.diameter == pytest.approx(seq.diameter, abs=1e-12)

    def test_repeated_queries_hit_cache_with_identical_answers(
        self, dataset, queries
    ):
        """The acceptance-criteria scenario: >= 100 repeated queries."""
        engine = MCKEngine(dataset)
        sequential = {
            tuple(q): engine.query(q, algorithm="SKECa+").diameter
            for q in queries
        }
        batch = [QueryRequest(tuple(q)) for q in queries] * 9  # 108 requests
        with QueryService(dataset, cache_size=64) as service:
            results = service.query_many(batch)
            metrics = service.metrics_dict()
        assert len(results) == 108
        for r in results:
            assert r.ok, r.error
            assert r.group.diameter == pytest.approx(
                sequential[r.request.keywords], abs=1e-12
            )
        assert metrics["cache"]["hits"] > 0
        assert metrics["queries_total"] == 108
        # Far fewer executions than requests: cache + single-flight.
        assert metrics["algorithms"]["SKECa+"]["executed"] < 108

    def test_mixed_algorithms_batch(self, dataset, queries):
        requests = [
            QueryRequest(tuple(queries[0]), algorithm="GKG"),
            QueryRequest(tuple(queries[0]), algorithm="SKECa+"),
            QueryRequest(tuple(queries[0]), algorithm="EXACT"),
        ]
        with QueryService(dataset) as service:
            gkg, skecap, exact = service.query_many(requests)
        assert gkg.ok and skecap.ok and exact.ok
        assert exact.group.diameter <= gkg.group.diameter + 1e-9
        assert exact.group.diameter <= skecap.group.diameter + 1e-9


class TestCacheBehaviour:
    def test_second_query_is_a_hit(self, dataset, queries):
        with QueryService(dataset) as service:
            first = service.query(queries[0])
            second = service.query(queries[0])
        assert not first.stats.cache_hit
        assert second.stats.cache_hit
        assert second.group.diameter == first.group.diameter

    def test_alias_spellings_share_cache_entries(self, dataset, queries):
        with QueryService(dataset) as service:
            service.query(queries[0], algorithm="SKECa+")
            aliased = service.query(queries[0], algorithm="skeca_plus")
        assert aliased.stats.cache_hit

    def test_ttl_expiry_forces_recompute(self, dataset, queries):
        clock = FakeClock()
        with QueryService(
            dataset, cache_ttl=30.0, cache_clock=clock
        ) as service:
            service.query(queries[0])
            clock.advance(31.0)
            again = service.query(queries[0])
            stats = service.cache.stats()
        assert not again.stats.cache_hit
        assert stats["expirations"] == 1

    def test_cache_disabled(self, dataset, queries):
        with QueryService(dataset, cache_size=0) as service:
            service.query(queries[0])
            second = service.query(queries[0])
        assert not second.stats.cache_hit

    def test_cache_key_present_after_query(self, dataset, queries):
        with QueryService(dataset) as service:
            service.query(queries[0], algorithm="GKG", epsilon=0.05)
            key = make_cache_key(queries[0], "GKG", 0.05)
            assert key in service.cache


class TestStatsAndMetrics:
    def test_query_stats_fields(self, dataset, queries):
        with QueryService(dataset) as service:
            result = service.query(queries[0], algorithm="SKECa+")
        s = result.stats
        assert s.algorithm == "SKECa+"
        assert s.total_seconds > 0.0
        assert s.algorithm_seconds > 0.0
        assert s.context_seconds >= 0.0
        assert s.group_size == len(result.group)
        assert s.diameter == result.group.diameter
        assert s.counters.get("circle_scans", 0) >= 0

    def test_exact_reports_pruning_counters(self, dataset, queries):
        with QueryService(dataset) as service:
            result = service.query(queries[0], algorithm="EXACT")
        # EXACT always reports its candidate/pruning counters, even when 0.
        assert "candidate_circles" in result.stats.counters
        assert "pruned_poles" in result.stats.counters

    def test_metrics_monotone_over_batches(self, dataset, queries):
        with QueryService(dataset) as service:
            totals = []
            for _ in range(3):
                service.query_many(queries[:4])
                totals.append(service.metrics.total_queries)
        assert totals == sorted(totals)
        assert totals[-1] == 12

    def test_metrics_dict_includes_cache_section(self, dataset, queries):
        with QueryService(dataset) as service:
            service.query(queries[0])
            dump = service.metrics_dict()
        assert dump["cache"]["misses"] >= 1
        assert "max_size" in dump["cache"]


class TestFailureIsolation:
    def test_timeout_yields_failed_result_not_exception(self, dataset, queries):
        requests = [
            QueryRequest(tuple(queries[0]), algorithm="EXACT", timeout=1e-9),
            QueryRequest(tuple(queries[1]), algorithm="GKG"),
        ]
        with QueryService(dataset, cache_size=0) as service:
            failed, okay = service.query_many(requests)
        assert not failed.ok
        assert not failed.stats.success
        assert "budget" in failed.error
        assert okay.ok

    def test_infeasible_query_isolated(self, dataset, queries):
        requests = [
            QueryRequest(("no-such-keyword-anywhere",)),
            QueryRequest(tuple(queries[0])),
        ]
        with QueryService(dataset, cache_size=0) as service:
            bad, good = service.query_many(requests)
        assert not bad.ok
        assert "covered" in bad.error
        assert good.ok

    def test_failures_are_not_cached(self, dataset, queries):
        req = QueryRequest(tuple(queries[0]), algorithm="EXACT", timeout=1e-9)
        with QueryService(dataset) as service:
            service.query_many([req])
            retry = service.query(queries[0], algorithm="EXACT")
        assert retry.ok
        assert not retry.stats.cache_hit


class TestSubmitAndLifecycle:
    def test_submit_returns_future(self, dataset, queries):
        with QueryService(dataset) as service:
            future = service.submit(queries[0])
            result = future.result(timeout=60)
        assert result.ok

    def test_submit_after_close_raises(self, dataset, queries):
        from repro.exceptions import QueryRejected

        service = QueryService(dataset)
        service.close()
        with pytest.raises(QueryRejected) as excinfo:
            service.submit(queries[0])
        assert excinfo.value.reason == "shutdown"

    def test_close_is_idempotent(self, dataset):
        service = QueryService(dataset)
        service.close()
        service.close()

    def test_accepts_prebuilt_engine(self, dataset, queries):
        engine = MCKEngine(dataset)
        with QueryService(engine) as service:
            assert service.engine is engine
            assert service.query(queries[0]).ok


class TestSingleFlight:
    def test_identical_concurrent_queries_coalesce(self, dataset, queries):
        batch = [QueryRequest(tuple(queries[0]))] * 24
        with QueryService(dataset, max_workers=8) as service:
            results = service.query_many(batch)
            executed = service.metrics_dict()["algorithms"]["SKECa+"]["executed"]
        diameters = {r.group.diameter for r in results if r.ok}
        assert len(diameters) == 1
        assert all(r.ok for r in results)
        # One leader computes; everyone else joins the flight or hits the
        # cache.  (A tiny race can elect a second leader; never 24.)
        assert executed <= 3


class TestProcessPool:
    def test_exact_via_process_pool_matches_inline(self):
        dataset = make_random_dataset(21, n=25)
        query = feasible_query(dataset, 3, 3)
        inline = MCKEngine(dataset).query(query, algorithm="EXACT")
        with QueryService(
            dataset,
            use_processes_for_exact=True,
            process_workers=2,
            cache_size=0,
        ) as service:
            served = service.query(query, algorithm="EXACT")
        assert served.ok
        assert served.group.diameter == pytest.approx(inline.diameter, abs=1e-12)
        assert sorted(served.group.object_ids) == sorted(inline.object_ids)

    def test_process_pool_counters_are_per_query_deltas(self):
        # Pool workers are reused across queries; each answer must carry
        # only its own query's counters, never a worker-lifetime total.
        dataset = make_random_dataset(22, n=25)
        query = feasible_query(dataset, 4, 3)
        with QueryService(
            dataset,
            use_processes_for_exact=True,
            process_workers=1,
            cache_size=0,
        ) as service:
            first = service.query(query, algorithm="EXACT")
            second = service.query(query, algorithm="EXACT")
        assert first.ok and second.ok
        assert first.stats.counters
        # Same query on the same (reused) worker: identical work, so any
        # accumulation across the boundary would double the counters.
        for name, value in first.stats.counters.items():
            assert second.stats.counters.get(name) == pytest.approx(value)


class TestObservability:
    def test_serve_spans_nest_under_request(self, dataset, queries):
        from repro.observability.tracer import Tracer

        tracer = Tracer()
        with QueryService(dataset, tracer=tracer) as service:
            assert service.query(queries[0]).ok
        spans = {s["name"]: s for s in tracer.finished_spans()}
        root = spans["serve.request"]
        assert root["parent_id"] is None
        assert spans["serve.cache_probe"]["parent_id"] == root["span_id"]
        assert spans["serve.execute"]["parent_id"] == root["span_id"]
        assert spans["serve.cache_store"]["trace_id"] == root["trace_id"]
        # Algorithm spans recorded through the Deadline join the same trace.
        assert spans["engine.query"]["trace_id"] == root["trace_id"]
        assert root["attributes"]["cache"] == "miss"

    def test_cache_hit_span_attribute(self, dataset, queries):
        from repro.observability.tracer import Tracer

        tracer = Tracer()
        with QueryService(dataset, tracer=tracer) as service:
            service.query(queries[1])
            tracer.reset()
            service.query(queries[1])
        (root,) = [
            s for s in tracer.finished_spans() if s["name"] == "serve.request"
        ]
        assert root["attributes"]["cache"] == "hit"

    def test_queue_wait_span_for_submitted_queries(self, dataset, queries):
        from repro.observability.tracer import Tracer

        tracer = Tracer()
        with QueryService(dataset, tracer=tracer) as service:
            assert service.submit(queries[2]).result().ok
        names = [s["name"] for s in tracer.finished_spans()]
        assert "serve.queue" in names

    def test_no_tracer_means_no_spans_and_null_fast_path(self, dataset, queries):
        from repro.observability.tracer import NULL_SPAN, get_tracer

        assert get_tracer() is None
        with QueryService(dataset) as service:
            assert service._span("serve.request") is NULL_SPAN
            assert service.query(queries[3]).ok

    def test_correlation_ids_unique_per_request(self, dataset, queries):
        with QueryService(dataset) as service:
            results = service.query_many(queries[:4])
        cids = [r.correlation_id for r in results]
        assert all(c.startswith("q-") for c in cids)
        assert len(set(cids)) == len(cids)

    def test_correlation_id_crosses_process_pool(self):
        from repro.observability.tracer import Tracer

        dataset = make_random_dataset(23, n=25)
        query = feasible_query(dataset, 5, 3)
        tracer = Tracer()
        with QueryService(
            dataset,
            use_processes_for_exact=True,
            process_workers=1,
            cache_size=0,
            tracer=tracer,
        ) as service:
            result = service.query(query, algorithm="EXACT")
        assert result.ok
        assert result.correlation_id.startswith("q-")
        spans = tracer.finished_spans()
        # The worker's spans came back and joined the parent's trace id.
        pids = {s["pid"] for s in spans}
        assert len(pids) == 2
        (root,) = [s for s in spans if s["name"] == "serve.request"]
        worker_spans = [s for s in spans if s["pid"] != root["pid"]]
        assert worker_spans
        assert all(s["trace_id"] == root["trace_id"] for s in worker_spans)

    def test_structured_log_emitted_per_query(self, dataset, queries):
        import io
        import json as _json
        import logging

        from repro.observability.logging import configure_logging

        stream = io.StringIO()
        handler = configure_logging(stream=stream, level=logging.DEBUG)
        try:
            with QueryService(dataset) as service:
                service.query(queries[6])
        finally:
            logging.getLogger("repro").removeHandler(handler)
            logging.getLogger("repro").setLevel(logging.WARNING)
        records = [
            _json.loads(line) for line in stream.getvalue().splitlines()
        ]
        served = [r for r in records if r["event"] == "query.served"]
        assert served
        assert served[0]["correlation_id"].startswith("q-")
        assert served[0]["cache_hit"] is False
