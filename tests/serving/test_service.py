"""Tests for the batched QueryService: ordering, cache, stats, equivalence."""

import pytest

from repro import MCKEngine
from repro.serving import QueryRequest, QueryService
from repro.serving.cache import make_cache_key
from tests.conftest import feasible_query, make_random_dataset


@pytest.fixture(scope="module")
def dataset():
    return make_random_dataset(11, n=60)


@pytest.fixture(scope="module")
def queries(dataset):
    return [feasible_query(dataset, seed, 3) for seed in range(12)]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestOrderingAndEquivalence:
    def test_results_in_input_order(self, dataset, queries):
        with QueryService(dataset) as service:
            results = service.query_many(queries)
        assert [r.request.keywords for r in results] == [
            tuple(q) for q in queries
        ]

    def test_batched_matches_sequential(self, dataset, queries):
        engine = MCKEngine(dataset)
        sequential = [engine.query(q, algorithm="SKECa+") for q in queries]
        with QueryService(dataset) as service:
            batched = service.query_many(queries, algorithm="SKECa+")
        for seq, bat in zip(sequential, batched):
            assert bat.ok
            assert bat.group.diameter == pytest.approx(seq.diameter, abs=1e-12)

    def test_repeated_queries_hit_cache_with_identical_answers(
        self, dataset, queries
    ):
        """The acceptance-criteria scenario: >= 100 repeated queries."""
        engine = MCKEngine(dataset)
        sequential = {
            tuple(q): engine.query(q, algorithm="SKECa+").diameter
            for q in queries
        }
        batch = [QueryRequest(tuple(q)) for q in queries] * 9  # 108 requests
        with QueryService(dataset, cache_size=64) as service:
            results = service.query_many(batch)
            metrics = service.metrics_dict()
        assert len(results) == 108
        for r in results:
            assert r.ok, r.error
            assert r.group.diameter == pytest.approx(
                sequential[r.request.keywords], abs=1e-12
            )
        assert metrics["cache"]["hits"] > 0
        assert metrics["queries_total"] == 108
        # Far fewer executions than requests: cache + single-flight.
        assert metrics["algorithms"]["SKECa+"]["executed"] < 108

    def test_mixed_algorithms_batch(self, dataset, queries):
        requests = [
            QueryRequest(tuple(queries[0]), algorithm="GKG"),
            QueryRequest(tuple(queries[0]), algorithm="SKECa+"),
            QueryRequest(tuple(queries[0]), algorithm="EXACT"),
        ]
        with QueryService(dataset) as service:
            gkg, skecap, exact = service.query_many(requests)
        assert gkg.ok and skecap.ok and exact.ok
        assert exact.group.diameter <= gkg.group.diameter + 1e-9
        assert exact.group.diameter <= skecap.group.diameter + 1e-9


class TestCacheBehaviour:
    def test_second_query_is_a_hit(self, dataset, queries):
        with QueryService(dataset) as service:
            first = service.query(queries[0])
            second = service.query(queries[0])
        assert not first.stats.cache_hit
        assert second.stats.cache_hit
        assert second.group.diameter == first.group.diameter

    def test_alias_spellings_share_cache_entries(self, dataset, queries):
        with QueryService(dataset) as service:
            service.query(queries[0], algorithm="SKECa+")
            aliased = service.query(queries[0], algorithm="skeca_plus")
        assert aliased.stats.cache_hit

    def test_ttl_expiry_forces_recompute(self, dataset, queries):
        clock = FakeClock()
        with QueryService(
            dataset, cache_ttl=30.0, cache_clock=clock
        ) as service:
            service.query(queries[0])
            clock.advance(31.0)
            again = service.query(queries[0])
            stats = service.cache.stats()
        assert not again.stats.cache_hit
        assert stats["expirations"] == 1

    def test_cache_disabled(self, dataset, queries):
        with QueryService(dataset, cache_size=0) as service:
            service.query(queries[0])
            second = service.query(queries[0])
        assert not second.stats.cache_hit

    def test_cache_key_present_after_query(self, dataset, queries):
        with QueryService(dataset) as service:
            service.query(queries[0], algorithm="GKG", epsilon=0.05)
            key = make_cache_key(queries[0], "GKG", 0.05)
            assert key in service.cache


class TestStatsAndMetrics:
    def test_query_stats_fields(self, dataset, queries):
        with QueryService(dataset) as service:
            result = service.query(queries[0], algorithm="SKECa+")
        s = result.stats
        assert s.algorithm == "SKECa+"
        assert s.total_seconds > 0.0
        assert s.algorithm_seconds > 0.0
        assert s.context_seconds >= 0.0
        assert s.group_size == len(result.group)
        assert s.diameter == result.group.diameter
        assert s.counters.get("circle_scans", 0) >= 0

    def test_exact_reports_pruning_counters(self, dataset, queries):
        with QueryService(dataset) as service:
            result = service.query(queries[0], algorithm="EXACT")
        # EXACT always reports its candidate/pruning counters, even when 0.
        assert "candidate_circles" in result.stats.counters
        assert "pruned_poles" in result.stats.counters

    def test_metrics_monotone_over_batches(self, dataset, queries):
        with QueryService(dataset) as service:
            totals = []
            for _ in range(3):
                service.query_many(queries[:4])
                totals.append(service.metrics.total_queries)
        assert totals == sorted(totals)
        assert totals[-1] == 12

    def test_metrics_dict_includes_cache_section(self, dataset, queries):
        with QueryService(dataset) as service:
            service.query(queries[0])
            dump = service.metrics_dict()
        assert dump["cache"]["misses"] >= 1
        assert "max_size" in dump["cache"]


class TestFailureIsolation:
    def test_timeout_yields_failed_result_not_exception(self, dataset, queries):
        requests = [
            QueryRequest(tuple(queries[0]), algorithm="EXACT", timeout=-1.0),
            QueryRequest(tuple(queries[1]), algorithm="GKG"),
        ]
        with QueryService(dataset, cache_size=0) as service:
            failed, okay = service.query_many(requests)
        assert not failed.ok
        assert not failed.stats.success
        assert "budget" in failed.error
        assert okay.ok

    def test_infeasible_query_isolated(self, dataset, queries):
        requests = [
            QueryRequest(("no-such-keyword-anywhere",)),
            QueryRequest(tuple(queries[0])),
        ]
        with QueryService(dataset, cache_size=0) as service:
            bad, good = service.query_many(requests)
        assert not bad.ok
        assert "covered" in bad.error
        assert good.ok

    def test_failures_are_not_cached(self, dataset, queries):
        req = QueryRequest(tuple(queries[0]), algorithm="EXACT", timeout=-1.0)
        with QueryService(dataset) as service:
            service.query_many([req])
            retry = service.query(queries[0], algorithm="EXACT")
        assert retry.ok
        assert not retry.stats.cache_hit


class TestSubmitAndLifecycle:
    def test_submit_returns_future(self, dataset, queries):
        with QueryService(dataset) as service:
            future = service.submit(queries[0])
            result = future.result(timeout=60)
        assert result.ok

    def test_submit_after_close_raises(self, dataset, queries):
        service = QueryService(dataset)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(queries[0])

    def test_close_is_idempotent(self, dataset):
        service = QueryService(dataset)
        service.close()
        service.close()

    def test_accepts_prebuilt_engine(self, dataset, queries):
        engine = MCKEngine(dataset)
        with QueryService(engine) as service:
            assert service.engine is engine
            assert service.query(queries[0]).ok


class TestSingleFlight:
    def test_identical_concurrent_queries_coalesce(self, dataset, queries):
        batch = [QueryRequest(tuple(queries[0]))] * 24
        with QueryService(dataset, max_workers=8) as service:
            results = service.query_many(batch)
            executed = service.metrics_dict()["algorithms"]["SKECa+"]["executed"]
        diameters = {r.group.diameter for r in results if r.ok}
        assert len(diameters) == 1
        assert all(r.ok for r in results)
        # One leader computes; everyone else joins the flight or hits the
        # cache.  (A tiny race can elect a second leader; never 24.)
        assert executed <= 3


class TestProcessPool:
    def test_exact_via_process_pool_matches_inline(self):
        dataset = make_random_dataset(21, n=25)
        query = feasible_query(dataset, 3, 3)
        inline = MCKEngine(dataset).query(query, algorithm="EXACT")
        with QueryService(
            dataset,
            use_processes_for_exact=True,
            process_workers=2,
            cache_size=0,
        ) as service:
            served = service.query(query, algorithm="EXACT")
        assert served.ok
        assert served.group.diameter == pytest.approx(inline.diameter, abs=1e-12)
        assert sorted(served.group.object_ids) == sorted(inline.object_ids)
