"""Admission control: bounded queue, shedding policies, adaptive limits."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import (
    InvalidRequestError,
    QueryError,
    QueryRejected,
    ReproError,
)
from repro.serving import MetricsRegistry, QueryRequest, QueryService
from repro.serving.admission import (
    DEADLINE_AWARE,
    MAX_COST,
    REJECT_NEWEST,
    REJECT_OLDEST,
    AdaptiveConcurrencyLimiter,
    AdmissionController,
    estimate_cost,
)
from repro.testing import faults

WAIT = 10.0


class _Gate:
    """A task that blocks its worker thread until released."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def __call__(self):
        self.started.set()
        assert self.release.wait(WAIT), "gate never released"
        return "gated"


def _drain(controller, gates=()):
    for gate in gates:
        gate.release.set()
    controller.close()


# --------------------------------------------------------------------- #
# Cost model
# --------------------------------------------------------------------- #


class TestEstimateCost:
    def test_exact_costs_more_than_approximation(self):
        assert estimate_cost("EXACT", 4) > estimate_cost("SKECa+", 4)
        assert estimate_cost("SKECa+", 4) > estimate_cost("GKG", 4)

    def test_exact_grows_with_m(self):
        costs = [estimate_cost("EXACT", m) for m in range(2, 8)]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_frequent_rare_keyword_raises_cost(self):
        rare = estimate_cost("SKECa+", 4, min_keyword_frequency=0.001)
        common = estimate_cost("SKECa+", 4, min_keyword_frequency=0.9)
        assert common > rare

    def test_cost_is_capped(self):
        assert estimate_cost("EXACT", 30, min_keyword_frequency=1.0) == MAX_COST

    def test_unknown_algorithm_gets_default_weight(self):
        assert estimate_cost("mystery", 2) == pytest.approx(2.0)


# --------------------------------------------------------------------- #
# Adaptive concurrency limiter
# --------------------------------------------------------------------- #


class TestAdaptiveConcurrencyLimiter:
    def test_first_sample_only_sets_baseline(self):
        limiter = AdaptiveConcurrencyLimiter(initial=8.0)
        limiter.on_complete(0.05, key="GKG")
        assert limiter.limit == 8.0
        assert limiter.baseline("GKG") == pytest.approx(0.05)

    def test_fast_samples_increase_additively(self):
        limiter = AdaptiveConcurrencyLimiter(initial=8.0, increase=1.0)
        limiter.on_complete(0.05)
        before = limiter.limit
        limiter.on_complete(0.05)
        assert limiter.limit == pytest.approx(before + 1.0 / before)
        assert limiter.increases == 1

    def test_slow_samples_decrease_multiplicatively(self):
        limiter = AdaptiveConcurrencyLimiter(initial=8.0, backoff=0.5)
        limiter.on_complete(0.05)
        limiter.on_complete(5.0)  # way past tolerance * baseline
        assert limiter.limit == pytest.approx(4.0)
        assert limiter.decreases == 1

    def test_limit_respects_bounds(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial=2.0, min_limit=1.0, max_limit=3.0, backoff=0.1
        )
        limiter.on_complete(0.05)
        for _ in range(50):
            limiter.on_complete(0.05)
        assert limiter.limit == 3.0
        for _ in range(50):
            limiter.on_complete(50.0)
        assert limiter.limit == 1.0

    def test_baselines_are_per_key(self):
        limiter = AdaptiveConcurrencyLimiter(initial=8.0)
        limiter.on_complete(0.001, key="GKG")
        limiter.on_complete(1.0, key="EXACT")
        # A 1s EXACT next to a 1ms GKG baseline must not trip a decrease.
        before = limiter.limit
        limiter.on_complete(1.0, key="EXACT")
        assert limiter.limit >= before
        assert limiter.decreases == 0

    def test_baseline_snaps_down_to_faster_samples(self):
        limiter = AdaptiveConcurrencyLimiter(initial=8.0)
        limiter.on_complete(1.0)
        limiter.on_complete(0.01)
        assert limiter.baseline("") == pytest.approx(0.01)

    def test_reset_restores_initial_state(self):
        limiter = AdaptiveConcurrencyLimiter(initial=8.0)
        limiter.on_complete(0.05)
        limiter.on_complete(50.0)
        limiter.reset()
        assert limiter.limit == 8.0
        assert limiter.baseline("") is None
        assert limiter.increases == limiter.decreases == 0

    def test_on_change_fires_on_adjustment(self):
        seen = []
        limiter = AdaptiveConcurrencyLimiter(initial=8.0, on_change=seen.append)
        limiter.on_complete(0.05)
        limiter.on_complete(0.05)
        assert seen and seen[-1] == limiter.limit

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"initial": 0.5, "min_limit": 1.0},
            {"backoff": 0.0},
            {"backoff": 1.0},
            {"tolerance": 0.5},
        ],
    )
    def test_constructor_validation(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(**kwargs)


# --------------------------------------------------------------------- #
# Admission controller: policies
# --------------------------------------------------------------------- #


class TestSheddingPolicies:
    def test_reject_newest_sheds_the_newcomer(self):
        ctrl = AdmissionController(
            max_workers=1, capacity=1, policy=REJECT_NEWEST
        )
        gate = _Gate()
        running = ctrl.submit(gate)
        assert gate.started.wait(WAIT)
        queued = ctrl.submit(lambda: "queued")
        with pytest.raises(QueryRejected) as excinfo:
            ctrl.submit(lambda: "late")
        assert excinfo.value.reason == "capacity"
        gate.release.set()
        assert running.result(timeout=WAIT) == "gated"
        assert queued.result(timeout=WAIT) == "queued"
        ctrl.close()
        counters = ctrl.counters()
        assert counters["submitted"] == 3
        assert counters["accepted"] == 2
        assert counters["rejected"] == 1

    def test_reject_oldest_evicts_the_queued_head(self):
        ctrl = AdmissionController(
            max_workers=1, capacity=1, policy=REJECT_OLDEST
        )
        gate = _Gate()
        ctrl.submit(gate)
        assert gate.started.wait(WAIT)
        oldest = ctrl.submit(lambda: "old")
        newest = ctrl.submit(lambda: "new")
        with pytest.raises(QueryRejected) as excinfo:
            oldest.result(timeout=WAIT)
        assert excinfo.value.reason == "shed_oldest"
        gate.release.set()
        assert newest.result(timeout=WAIT) == "new"
        ctrl.close()

    def test_deadline_aware_rejects_unmeetable_newcomer(self):
        ctrl = AdmissionController(
            max_workers=1,
            policy=DEADLINE_AWARE,
            service_time=lambda key: 1.0,  # observed p95: 1s per query
        )
        with pytest.raises(QueryRejected) as excinfo:
            ctrl.submit(lambda: "slow", timeout=0.3)
        assert excinfo.value.reason == "deadline_unmeetable"
        # A generous deadline is admitted under the same prediction.
        assert ctrl.submit(lambda: "ok", timeout=30.0).result(WAIT) == "ok"
        ctrl.close()

    def test_deadline_aware_cold_start_admits_everything(self):
        ctrl = AdmissionController(
            max_workers=1,
            policy=DEADLINE_AWARE,
            service_time=lambda key: None,  # no p95 yet
        )
        assert ctrl.submit(lambda: "ok", timeout=0.001).result(WAIT) == "ok"
        ctrl.close()

    def test_deadline_aware_sheds_least_headroom_when_full(self):
        ctrl = AdmissionController(
            max_workers=1, capacity=2, policy=DEADLINE_AWARE
        )
        gate = _Gate()
        ctrl.submit(gate)
        assert gate.started.wait(WAIT)
        patient = ctrl.submit(lambda: "patient", timeout=60.0)
        hurried = ctrl.submit(lambda: "hurried", timeout=1.0)
        latecomer = ctrl.submit(lambda: "late", timeout=30.0)
        with pytest.raises(QueryRejected) as excinfo:
            hurried.result(timeout=WAIT)
        assert excinfo.value.reason == "deadline_unmeetable"
        gate.release.set()
        assert patient.result(timeout=WAIT) == "patient"
        assert latecomer.result(timeout=WAIT) == "late"
        ctrl.close()

    def test_deadline_aware_sheds_expired_entries_at_dispatch(self):
        clock = [0.0]
        ctrl = AdmissionController(
            max_workers=1,
            policy=DEADLINE_AWARE,
            clock=lambda: clock[0],
        )
        gate = _Gate()
        ctrl.submit(gate)
        assert gate.started.wait(WAIT)
        doomed = ctrl.submit(lambda: "never", timeout=0.5)
        clock[0] = 2.0  # the queued entry's deadline is now in the past
        gate.release.set()
        with pytest.raises(QueryRejected) as excinfo:
            doomed.result(timeout=WAIT)
        assert excinfo.value.reason == "deadline_unmeetable"
        ctrl.close()


# --------------------------------------------------------------------- #
# Admission controller: dispatch, limits, lifecycle
# --------------------------------------------------------------------- #


class TestDispatchAndLifecycle:
    def test_oversized_cost_still_runs_alone(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial=1.0, min_limit=1.0, max_limit=2.0
        )
        ctrl = AdmissionController(max_workers=2, limiter=limiter)
        # Far over the limit, but with nothing inflight it must run.
        assert ctrl.submit(lambda: "ran", cost=50.0).result(WAIT) == "ran"
        ctrl.close()

    def test_cheap_entry_skips_past_blocked_heavy_head(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial=2.0, min_limit=1.0, max_limit=2.0
        )
        ctrl = AdmissionController(max_workers=2, limiter=limiter)
        gate = _Gate()
        ctrl.submit(gate, cost=1.5)
        assert gate.started.wait(WAIT)
        heavy = ctrl.submit(lambda: "heavy", cost=1.0)  # 1.5 + 1.0 > 2.0
        cheap = ctrl.submit(lambda: "cheap", cost=0.4)  # 1.5 + 0.4 <= 2.0
        assert cheap.result(timeout=WAIT) == "cheap"
        assert not heavy.done()
        gate.release.set()
        assert heavy.result(timeout=WAIT) == "heavy"
        ctrl.close()

    def test_failures_count_separately_from_completions(self):
        ctrl = AdmissionController(max_workers=1)

        def boom():
            raise RuntimeError("task failure")

        ok = ctrl.submit(lambda: 42)
        bad = ctrl.submit(boom)
        assert ok.result(timeout=WAIT) == 42
        with pytest.raises(RuntimeError):
            bad.result(timeout=WAIT)
        ctrl.close()
        counters = ctrl.counters()
        assert counters["completed"] == 1
        assert counters["failed"] == 1
        assert counters["accepted"] == 2

    def test_close_rejects_queued_and_is_idempotent(self):
        ctrl = AdmissionController(max_workers=1)
        gate = _Gate()
        running = ctrl.submit(gate)
        assert gate.started.wait(WAIT)
        queued = ctrl.submit(lambda: "queued")
        closer = threading.Thread(target=ctrl.close)
        closer.start()
        # The queued entry is rejected immediately, before the worker join.
        with pytest.raises(QueryRejected) as excinfo:
            queued.result(timeout=WAIT)
        assert excinfo.value.reason == "shutdown"
        gate.release.set()
        closer.join(timeout=WAIT)
        assert not closer.is_alive()
        assert running.result(timeout=WAIT) == "gated"  # accepted work drains
        ctrl.close()  # second close: no-op
        with pytest.raises(QueryRejected) as excinfo:
            ctrl.submit(lambda: "late")
        assert excinfo.value.reason == "shutdown"

    def test_context_manager_closes(self):
        with AdmissionController(max_workers=1) as ctrl:
            assert ctrl.submit(lambda: 1).result(timeout=WAIT) == 1
        with pytest.raises(QueryRejected):
            ctrl.submit(lambda: 2)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_workers=1, policy="drop-table")
        with pytest.raises(ValueError):
            AdmissionController(max_workers=1, capacity=0)

    def test_admission_fault_site_counts_as_rejection(self):
        ctrl = AdmissionController(max_workers=1)
        with faults.injected(
            "serving.admission.capacity",
            error=lambda: QueryRejected("injected", "smoke"),
        ):
            with pytest.raises(QueryRejected) as excinfo:
                ctrl.submit(lambda: 1)
        assert excinfo.value.reason == "injected"
        counters = ctrl.counters()
        assert counters["submitted"] == 1
        assert counters["rejected"] == 1
        assert counters["accepted"] == 0
        ctrl.close()


# --------------------------------------------------------------------- #
# Service integration
# --------------------------------------------------------------------- #


class TestServiceAdmission:
    def test_injected_rejection_surfaces_and_counts(self, kyoto_dataset, kyoto_query):
        with QueryService(kyoto_dataset, metrics=MetricsRegistry()) as service:
            with faults.injected(
                "serving.admission.capacity",
                error=lambda: QueryRejected("injected", "smoke"),
            ):
                with pytest.raises(QueryRejected):
                    service.query(kyoto_query)
            counter = service.metrics.admission_rejected_counter
            assert counter.value(reason="injected") == 1.0
            # The service recovers once the fault is disarmed.
            assert service.query(kyoto_query).ok

    def test_query_many_slots_rejections_in_input_order(
        self, kyoto_dataset, kyoto_query
    ):
        with QueryService(kyoto_dataset, metrics=MetricsRegistry()) as service:
            with faults.injected(
                "serving.admission.capacity",
                error=lambda: QueryRejected("injected", "smoke"),
                after=1,
                times=1,
            ):
                results = service.query_many(
                    [kyoto_query, kyoto_query, kyoto_query], algorithm="GKG"
                )
        assert [r.rejected for r in results] == [False, True, False]
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert "injected" in results[1].error

    def test_admission_metric_families_in_prometheus(
        self, kyoto_dataset, kyoto_query
    ):
        with QueryService(kyoto_dataset, metrics=MetricsRegistry()) as service:
            assert service.query(kyoto_query).ok
            with faults.injected(
                "serving.admission.capacity",
                error=lambda: QueryRejected("injected", "smoke"),
            ):
                with pytest.raises(QueryRejected):
                    service.query(kyoto_query)
            prom = service.metrics.to_prometheus()
        for family in (
            "mck_admission_rejected_total",
            "mck_queue_depth",
            "mck_inflight",
            "mck_concurrency_limit",
        ):
            assert family in prom, f"{family} missing from exposition"

    def test_admission_dict_reports_conserved_counters(
        self, kyoto_dataset, kyoto_query
    ):
        with QueryService(kyoto_dataset, metrics=MetricsRegistry()) as service:
            for _ in range(3):
                assert service.query(kyoto_query).ok
            snap = service.admission_dict()
        assert snap["submitted"] == 3
        assert snap["submitted"] == snap["accepted"] + snap["rejected"]
        assert snap["accepted"] == snap["completed"] + snap["failed"]
        assert snap["queue_depth"] == 0
        assert snap["inflight"] == 0
        assert snap["concurrency_limit"] >= 1.0

    def test_close_drains_accepted_work(self, kyoto_dataset, kyoto_query):
        service = QueryService(kyoto_dataset, metrics=MetricsRegistry())
        future = service.submit(kyoto_query, algorithm="GKG")
        service.close()
        service.close()  # idempotent
        try:
            result = future.result(timeout=WAIT)
        except QueryRejected as err:
            # Raced close before dispatch: must be the typed shutdown reject.
            assert err.reason == "shutdown"
        else:
            assert result.ok


# --------------------------------------------------------------------- #
# Request validation (constructed-request contract)
# --------------------------------------------------------------------- #


class TestQueryRequestValidation:
    def test_bare_string_is_one_keyword_not_characters(self):
        assert QueryRequest("hotel").keywords == ("hotel",)

    def test_coerce_accepts_bare_string(self):
        assert QueryRequest.coerce("hotel").keywords == ("hotel",)

    def test_coerce_accepts_sequence(self):
        assert QueryRequest.coerce(["a", "b"]).keywords == ("a", "b")

    def test_empty_keyword_tuple_rejected(self):
        with pytest.raises(InvalidRequestError):
            QueryRequest(())

    def test_empty_keyword_term_rejected(self):
        with pytest.raises(InvalidRequestError):
            QueryRequest(("hotel", ""))

    @pytest.mark.parametrize(
        "epsilon",
        [0.0, -0.1, float("nan"), float("inf"), True, "0.01"],
    )
    def test_bad_epsilon_rejected(self, epsilon):
        with pytest.raises(InvalidRequestError):
            QueryRequest(("hotel",), epsilon=epsilon)

    @pytest.mark.parametrize("timeout", [0.0, -1.0])
    def test_non_positive_timeout_rejected(self, timeout):
        with pytest.raises(InvalidRequestError):
            QueryRequest(("hotel",), timeout=timeout)

    def test_invalid_request_error_is_typed_and_catchable(self):
        assert issubclass(InvalidRequestError, QueryError)
        assert issubclass(InvalidRequestError, ReproError)
        assert issubclass(QueryRejected, ReproError)
