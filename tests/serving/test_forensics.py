"""Service-level forensics: EXPLAIN plumbing, flight retention, span
transport from EXACT pool workers under crash-and-respawn, and the
tracer's concurrent drain/ingest contract."""

from __future__ import annotations

import re
import threading
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.exceptions import QueryRejected
from repro.observability.explain import render_explain
from repro.observability.flight import FlightRecorder
from repro.observability.slo import SLOTracker
from repro.observability.tracer import Tracer
from repro.serving import MetricsRegistry, QueryService
from repro.testing import faults
from tests.conftest import feasible_query, make_random_dataset

ALGORITHMS = ("GKG", "SKEC", "SKECa", "SKECa+", "EXACT")


@pytest.fixture(scope="module")
def dataset():
    return make_random_dataset(23, n=60)


@pytest.fixture(scope="module")
def query(dataset):
    return feasible_query(dataset, 5, 3)


class TestExplainPlumbing:
    def test_explain_without_any_tracer_uses_ephemeral(self, dataset, query):
        with QueryService(dataset, metrics=MetricsRegistry()) as svc:
            result = svc.query(query, explain=True)
        assert result.explain is not None
        assert result.explain["span_count"] > 0
        assert result.explain["execution"]["kernel_mode"] != "unknown"
        assert "EXPLAIN" in render_explain(result.explain)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_explain_renders_for_every_algorithm(
        self, dataset, query, algorithm
    ):
        with QueryService(dataset, metrics=MetricsRegistry()) as svc:
            result = svc.query(query, algorithm=algorithm, explain=True)
        report = result.explain
        assert report is not None
        assert report["query"]["algorithm"].upper().startswith(
            algorithm.upper().rstrip("+")
        )
        text = render_explain(report)
        assert "engine.algorithm" in text

    def test_explain_cache_hit_reported(self, dataset, query):
        with QueryService(
            dataset, metrics=MetricsRegistry(), cache_size=16
        ) as svc:
            first = svc.query(query, explain=True)
            second = svc.query(query, explain=True)
        assert first.explain["execution"]["cache"]["outcome"] == "miss"
        assert second.explain["execution"]["cache"]["outcome"].startswith("hit")

    def test_explain_false_attaches_nothing(self, dataset, query):
        with QueryService(dataset, metrics=MetricsRegistry()) as svc:
            result = svc.query(query)
        assert result.explain is None


class TestFlightIntegration:
    def test_stats_trace_id_stamped_and_exemplar_resolvable(
        self, dataset, query
    ):
        tracer = Tracer()
        flight = FlightRecorder(boring_keep_rate=1.0)
        registry = MetricsRegistry()
        with QueryService(
            dataset, metrics=registry, tracer=tracer, flight=flight
        ) as svc:
            result = svc.query(query)
            assert result.stats.trace_id
            assert flight.get(result.stats.trace_id) is not None
            prom = registry.to_prometheus(exemplars=True)
        ids = set(re.findall(r'trace_id="([0-9a-f]+)"', prom))
        assert result.stats.trace_id in ids

    def test_rejection_synthesizes_retained_trace(self, dataset, query):
        flight = FlightRecorder()
        slo = SLOTracker()
        with QueryService(
            dataset,
            metrics=MetricsRegistry(),
            tracer=Tracer(),
            flight=flight,
            slo=slo,
            max_workers=1,
            admission_capacity=1,
        ) as svc:
            rejections = []

            def go():
                try:
                    svc.query(query, algorithm="EXACT")
                except QueryRejected as exc:
                    rejections.append(exc)

            threads = [threading.Thread(target=go) for _ in range(12)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert rejections, "workload did not overflow the admission queue"
        for exc in rejections:
            trace_id = getattr(exc, "trace_id", "")
            assert trace_id, "rejection carries no trace id"
            retained = flight.get(trace_id)
            assert retained is not None
            assert retained.outcome.rejected
            assert retained.spans[0]["name"] == "serve.rejected"
        d = slo.as_dict()
        assert d["availability"]["events"]["bad"] >= len(rejections)

    def test_slo_binds_to_service_registry(self, dataset, query):
        registry = MetricsRegistry()
        slo = SLOTracker()
        with QueryService(dataset, metrics=registry, slo=slo) as svc:
            svc.query(query)
            slo.refresh_gauges()
        assert "mck_slo_burn_rate" in registry.to_prometheus()


class TestPoolSpanTransport:
    """Satellite regression: spans from EXACT pool workers survive a
    worker crash + respawn-with-backoff without loss or double ingest."""

    def test_respawned_worker_spans_ingested_exactly_once(
        self, kyoto_engine, kyoto_query
    ):
        tracer = Tracer()
        with QueryService(
            kyoto_engine,
            metrics=MetricsRegistry(),
            tracer=tracer,
            use_processes_for_exact=True,
            process_workers=1,
            pool_retry_backoff=0.0,
        ) as svc:
            with faults.injected(
                "serving.pool.submit", error=BrokenProcessPool, times=1
            ):
                result = svc.query(
                    kyoto_query, algorithm="EXACT", timeout=30.0
                )
            assert result.ok and not result.degraded
            trace_id = result.stats.trace_id
            assert trace_id
            spans = [
                s
                for s in tracer.finished_spans()
                if s["trace_id"] == trace_id
            ]
        # The crashed attempt never returned spans; the respawned worker's
        # spans arrive once — engine.query appears exactly once, and no
        # span id is duplicated by a double ingest.
        engine_spans = [s for s in spans if s["name"] == "engine.query"]
        assert len(engine_spans) == 1
        span_ids = [s["span_id"] for s in spans]
        assert len(span_ids) == len(set(span_ids))

    def test_pool_explain_reports_worker_kernel_mode(
        self, kyoto_engine, kyoto_query
    ):
        with QueryService(
            kyoto_engine,
            metrics=MetricsRegistry(),
            use_processes_for_exact=True,
            process_workers=1,
        ) as svc:
            result = svc.query(
                kyoto_query, algorithm="EXACT", timeout=30.0, explain=True
            )
        assert result.explain is not None
        assert result.explain["execution"]["kernel_mode"] != "unknown"
        names = {p["name"] for p in result.explain["phases"]}
        assert "engine.algorithm" in names


class TestConcurrentDrainIngest:
    def test_no_span_lost_or_duplicated(self):
        tracer = Tracer(max_spans=100_000)
        n_producers, per_producer = 4, 500
        drained = []
        stop = threading.Event()

        def produce(worker):
            for i in range(per_producer):
                tracer.ingest(
                    [
                        {
                            "name": "w",
                            "trace_id": "t",
                            "span_id": f"{worker}-{i}",
                            "parent_id": None,
                            "start_ns": 0,
                            "end_ns": 1,
                            "duration_ns": 1,
                            "attributes": {},
                        }
                    ]
                )

        def consume():
            while not stop.is_set():
                drained.extend(tracer.drain())
            drained.extend(tracer.drain())

        consumer = threading.Thread(target=consume)
        consumer.start()
        producers = [
            threading.Thread(target=produce, args=(w,))
            for w in range(n_producers)
        ]
        for t in producers:
            t.start()
        for t in producers:
            t.join()
        stop.set()
        consumer.join()
        ids = [s["span_id"] for s in drained]
        assert len(ids) == n_producers * per_producer
        assert len(set(ids)) == len(ids)


class TestDistributedFlight:
    def test_coordinator_completes_trace_on_global_tracer(self, dataset, query):
        from repro.distributed.coordinator import DistributedMCKEngine
        from repro.observability import tracer as _tracing

        tracer = Tracer()
        _tracing.set_tracer(tracer)
        try:
            flight = FlightRecorder(boring_keep_rate=1.0)
            engine = DistributedMCKEngine(
                dataset,
                n_workers=2,
                metrics=MetricsRegistry(),
                flight=flight,
            )
            engine.query(query)
            traces = flight.traces()
            assert len(traces) == 1
            (trace,) = traces
            assert any(s["name"] == "dist.query" for s in trace.spans)
            assert trace.outcome.latency_seconds is not None
        finally:
            _tracing.set_tracer(None)
