"""Service lifecycle hygiene: listener/sink detachment, close/submit races.

Two leak bugs motivated this module: ``QueryService.close()`` left its
mutation listener registered on a shared ``LiveMCKEngine`` forever (the
engine has outlived N services by design — shard handoff, config reload,
tests), and the flight-recorder span sink had the same one-way attach.
"""

import threading
from concurrent.futures import Future, wait

import pytest

from repro.exceptions import QueryRejected
from repro.live import LiveMCKEngine
from repro.observability import tracer as tracing
from repro.observability.flight import FlightRecorder
from repro.serving import MetricsRegistry, QueryService
from tests.conftest import feasible_query, make_random_dataset

RECORDS = [
    (0.0, 0.0, ["cafe"]),
    (1.0, 1.0, ["bar"]),
    (2.0, 2.0, ["cafe", "bar"]),
    (50.0, 50.0, ["shop"]),
]


class TestListenerDetachment:
    def test_close_detaches_mutation_listener(self):
        engine = LiveMCKEngine.from_records(RECORDS)
        baseline = len(engine._listeners)
        service = QueryService(engine, metrics=MetricsRegistry())
        assert len(engine._listeners) == baseline + 1
        service.close()
        assert len(engine._listeners) == baseline

    def test_n_service_generations_do_not_accumulate(self):
        """The regression shape: one long-lived engine, many services."""
        engine = LiveMCKEngine.from_records(RECORDS)
        baseline = len(engine._listeners)
        for _ in range(10):
            with QueryService(engine, metrics=MetricsRegistry()) as service:
                service.insert(3.0, 3.0, ["tea"])
        assert len(engine._listeners) == baseline

    def test_remove_listener_is_idempotent(self):
        engine = LiveMCKEngine.from_records(RECORDS)

        def listener(op, oid, keywords):
            pass

        engine.add_mutation_listener(listener)
        engine.remove_mutation_listener(listener)
        engine.remove_mutation_listener(listener)  # second removal: no-op
        assert listener not in engine._listeners

    def test_listener_can_detach_itself_mid_notify(self):
        engine = LiveMCKEngine.from_records(RECORDS)
        fired = []

        def once(op, oid, keywords):
            fired.append(oid)
            engine.remove_mutation_listener(once)

        engine.add_mutation_listener(once)
        engine.insert(4.0, 4.0, ["x"])
        engine.insert(5.0, 5.0, ["y"])
        assert len(fired) == 1


class TestFlightSinkDetachment:
    def test_close_detaches_flight_sink_it_attached(self):
        dataset = make_random_dataset(5, n=30)
        flight = FlightRecorder()
        service = QueryService(dataset, flight=flight, metrics=MetricsRegistry())
        sink_tracer = service._tracer()
        assert flight.is_attached(sink_tracer)
        service.close()
        assert not flight.is_attached(sink_tracer)

    def test_close_preserves_foreign_attachment(self):
        """A recorder shared across sibling services: closing one service
        must not sever a sink somebody else attached."""
        dataset = make_random_dataset(5, n=30)
        flight = FlightRecorder()
        shared = tracing.Tracer()
        flight.attach(shared)  # attached by "someone else"
        previous = tracing.set_tracer(shared)
        try:
            service = QueryService(
                dataset, flight=flight, metrics=MetricsRegistry()
            )
            assert service._tracer() is shared
            service.close()
            assert flight.is_attached(shared)  # still wired
        finally:
            tracing.set_tracer(previous)
            flight.detach(shared)

    def test_coordinator_close_detaches_flight(self):
        from repro.distributed import DistributedMCKEngine

        dataset = make_random_dataset(6, n=40)
        flight = FlightRecorder()
        shared = tracing.Tracer()
        previous = tracing.set_tracer(shared)
        try:
            with DistributedMCKEngine(
                dataset, n_workers=2, flight=flight
            ) as engine:
                assert flight.is_attached(shared)
            assert not flight.is_attached(shared)
        finally:
            tracing.set_tracer(previous)


class TestCloseSubmitRace:
    """Satellite: concurrent ``close()`` racing in-flight ``submit()``.

    Every future must resolve — a result or ``QueryRejected`` with
    reason ``shutdown`` — nothing hangs, and the admission conservation
    invariants still balance afterwards.
    """

    def test_every_future_resolves(self):
        dataset = make_random_dataset(7, n=50)
        query = list(feasible_query(dataset, 0, 3))
        service = QueryService(
            dataset, max_workers=2, cache_size=0, metrics=MetricsRegistry()
        )
        start = threading.Barrier(3)
        futures = []
        immediate_rejects = []
        lock = threading.Lock()

        def submitter():
            start.wait()
            for _ in range(25):
                try:
                    future = service.submit(query, algorithm="GKG")
                except QueryRejected as err:
                    with lock:
                        immediate_rejects.append(err)
                    continue
                with lock:
                    futures.append(future)

        threads = [threading.Thread(target=submitter) for _ in range(2)]
        for thread in threads:
            thread.start()

        def closer():
            start.wait()
            service.close()

        close_thread = threading.Thread(target=closer)
        close_thread.start()
        for thread in threads:
            thread.join(30)
        close_thread.join(30)
        assert not close_thread.is_alive(), "close() hung against submits"

        done, not_done = wait(futures, timeout=30)
        assert not not_done, f"{len(not_done)} futures never resolved"
        resolved, shed = 0, 0
        for future in done:
            try:
                result = future.result(timeout=0)
            except QueryRejected as err:
                assert err.reason in ("shutdown", "capacity", "shed_oldest")
                shed += 1
            else:
                assert result.ok or result.error
                resolved += 1
        # Conservation: everything submitted was accounted, nothing lost.
        counters = service.admission.counters()
        assert counters["submitted"] == counters["accepted"] + counters["rejected"]
        assert counters["accepted"] == counters["completed"] + counters["failed"]
        assert counters["submitted"] == (
            len(futures) + len(immediate_rejects)
        )
        assert resolved + shed == len(futures)

    def test_rejections_after_close_carry_shutdown_reason(self):
        dataset = make_random_dataset(8, n=30)
        query = list(feasible_query(dataset, 0, 3))
        service = QueryService(dataset, metrics=MetricsRegistry())
        service.close()
        with pytest.raises(QueryRejected) as err:
            service.submit(query)
        assert err.value.reason == "shutdown"
