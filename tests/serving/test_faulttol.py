"""Process-pool fault tolerance: retry budget, circuit breaker, fallback."""

import os
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.serving import CircuitBreaker, MetricsRegistry, QueryService
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN
from repro.testing import faults

QUERY = ["shrine", "shop", "restaurant", "hotel"]


def make_service(kyoto_engine, **kwargs):
    defaults = dict(
        use_processes_for_exact=True,
        process_workers=1,
        pool_retry_backoff=0.0,
        metrics=MetricsRegistry(),
    )
    defaults.update(kwargs)
    return QueryService(kyoto_engine, **defaults)


class TestPoolRetry:
    def test_injected_rejection_retried_and_served(self, kyoto_engine, kyoto_dataset):
        with make_service(kyoto_engine) as svc:
            with faults.injected(
                "serving.pool.submit", error=BrokenProcessPool, times=1
            ):
                result = svc.query(QUERY, algorithm="EXACT", timeout=30.0)
            assert result.ok
            assert not result.degraded  # the retry reached a healthy pool
            assert result.group.covers(kyoto_dataset, QUERY)
            assert (
                svc.metrics.pool_retry_counter.value(algorithm="EXACT") == 1.0
            )
            assert svc.breaker.state == CLOSED

    def test_real_dead_worker_retried(self, kyoto_engine, kyoto_dataset):
        # Kill an actual pool worker: the executor breaks with a genuine
        # BrokenProcessPool, the pool is rebuilt, the query still answers.
        with make_service(kyoto_engine) as svc:
            pool = svc._ensure_process_pool()
            pool.submit(os._exit, 1)
            result = svc.query(QUERY, algorithm="EXACT", timeout=30.0)
            assert result.ok
            assert result.group.covers(kyoto_dataset, QUERY)

    def test_exhausted_budget_falls_back_degraded(self, kyoto_engine, kyoto_dataset):
        with make_service(kyoto_engine, pool_retries=1) as svc:
            with faults.injected(
                "serving.pool.submit", error=BrokenProcessPool, times=None
            ):
                result = svc.query(QUERY, algorithm="EXACT", timeout=30.0)
            assert result.ok
            assert result.degraded
            assert result.group.stats.get("pool_fallback") == 1.0
            assert result.group.covers(kyoto_dataset, QUERY)
            assert (
                svc.metrics.pool_fallback_counter.value(algorithm="EXACT")
                == 1.0
            )
            # The fallback answer must not poison the cache.
            assert svc.cache.stats()["size"] == 0

    def test_strict_mode_fallback_is_an_error(self, kyoto_engine):
        with make_service(
            kyoto_engine, pool_retries=0, strict_timeouts=True
        ) as svc:
            with faults.injected(
                "serving.pool.submit", error=BrokenProcessPool, times=None
            ):
                result = svc.query(QUERY, algorithm="EXACT", timeout=30.0)
            assert not result.ok
            assert "process pool" in result.error


class TestBreakerIntegration:
    def test_breaker_opens_and_short_circuits(self, kyoto_engine):
        with make_service(
            kyoto_engine, pool_retries=1, breaker_threshold=2
        ) as svc:
            with faults.injected(
                "serving.pool.submit", error=BrokenProcessPool, times=None
            ) as fault:
                first = svc.query(QUERY, algorithm="EXACT", timeout=30.0)
                submits_after_first = fault.triggered
                second = svc.query(QUERY[:3], algorithm="EXACT", timeout=30.0)
                submits_after_second = fault.triggered
            assert first.ok and first.degraded
            assert second.ok and second.degraded
            # Two failures tripped the breaker during the first query; the
            # second never touched the pool.
            assert svc.breaker.state == OPEN
            assert submits_after_second == submits_after_first
            assert (
                svc.metrics.circuit_transition_counter.value(state="open")
                == 1.0
            )
            assert svc.metrics.circuit_open_gauge.value() == 1.0
            prom = svc.metrics.to_prometheus()
            assert "mck_circuit_open 1" in prom


class TestCircuitBreakerUnit:
    def test_opens_at_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=10.0, clock=clock)
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now += 10.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # only one probe at a time
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=10.0, clock=clock)
        breaker.record_failure()
        clock.now += 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now += 5.0
        assert not breaker.allow()  # cooldown restarted
        clock.now += 5.0
        assert breaker.allow()

    def test_transition_callback(self):
        transitions = []
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1,
            cooldown_seconds=1.0,
            clock=clock,
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        breaker.record_failure()
        clock.now += 1.0
        breaker.allow()
        breaker.record_success()
        assert transitions == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now
