"""Tests for the LRU+TTL result cache and its key normalisation."""

import pytest

from repro.exceptions import QueryError
from repro.serving.cache import ResultCache, make_cache_key


class FakeClock:
    """A manually-advanced monotonic clock for deterministic TTL tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCacheKey:
    def test_keyword_order_and_duplicates_do_not_matter(self):
        a = make_cache_key(["hotel", "shop"], "SKECa+", 0.01)
        b = make_cache_key(["shop", "hotel", "shop"], "SKECa+", 0.01)
        assert a == b

    def test_algorithm_aliases_share_keys(self):
        spellings = ["SKECa+", "skecaplus", "skeca_plus", " SKECA-PLUS "]
        keys = {make_cache_key(["a"], s, 0.01) for s in spellings}
        assert len(keys) == 1

    def test_epsilon_distinguishes_keys(self):
        assert make_cache_key(["a"], "SKECa+", 0.01) != make_cache_key(
            ["a"], "SKECa+", 0.1
        )

    def test_algorithm_distinguishes_keys(self):
        assert make_cache_key(["a"], "GKG", 0.01) != make_cache_key(
            ["a"], "EXACT", 0.01
        )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(QueryError):
            make_cache_key(["a"], "quantum", 0.01)


class TestHitMiss:
    def test_miss_then_hit(self):
        cache = ResultCache(max_size=4)
        key = make_cache_key(["a"], "GKG", 0.01)
        assert cache.get(key) is None
        cache.put(key, "value")
        assert cache.get(key) == "value"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_contains_does_not_touch_counters(self):
        cache = ResultCache(max_size=4)
        cache.put("k", "v")
        assert "k" in cache
        assert "missing" not in cache
        stats = cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0

    def test_zero_size_disables_storage(self):
        cache = ResultCache(max_size=0)
        cache.put("k", "v")
        assert cache.get("k") is None
        assert len(cache) == 0


class TestLRUEviction:
    def test_least_recently_used_goes_first(self):
        cache = ResultCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_eviction_counter_monotone(self):
        cache = ResultCache(max_size=1)
        for i in range(5):
            cache.put(i, i)
        assert cache.stats()["evictions"] == 4
        assert len(cache) == 1


class TestTTL:
    def test_entries_expire(self):
        clock = FakeClock()
        cache = ResultCache(max_size=4, ttl_seconds=10.0, clock=clock)
        cache.put("k", "v")
        clock.advance(9.9)
        assert cache.get("k") == "v"
        clock.advance(0.2)
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats["expirations"] == 1
        # The expired lookup counts as a miss, not a hit.
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = ResultCache(max_size=4, ttl_seconds=None, clock=clock)
        cache.put("k", "v")
        clock.advance(1e9)
        assert cache.get("k") == "v"

    def test_purge_expired(self):
        clock = FakeClock()
        cache = ResultCache(max_size=8, ttl_seconds=5.0, clock=clock)
        for i in range(3):
            cache.put(i, i)
        clock.advance(6.0)
        cache.put("fresh", 1)
        assert cache.purge_expired() == 3
        assert len(cache) == 1
        assert cache.stats()["expirations"] == 3

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(ttl_seconds=0.0)
        with pytest.raises(ValueError):
            ResultCache(ttl_seconds=-1.0)


class TestExpiredEntriesAreDropped:
    """Regression: expired entries must not stay resident in memory."""

    def test_contains_drops_expired_entry(self):
        clock = FakeClock()
        cache = ResultCache(max_size=4, ttl_seconds=5.0, clock=clock)
        cache.put("k", "v")
        clock.advance(6.0)
        assert "k" not in cache
        # Before the fix the dead entry stayed resident after the probe.
        assert len(cache) == 0
        assert cache.stats()["expirations"] == 1

    def test_contains_live_entry_untouched(self):
        clock = FakeClock()
        cache = ResultCache(max_size=4, ttl_seconds=5.0, clock=clock)
        cache.put("k", "v")
        assert "k" in cache
        assert len(cache) == 1
        assert cache.stats()["expirations"] == 0

    def test_put_prefers_dropping_expired_over_evicting_live(self):
        clock = FakeClock()
        cache = ResultCache(max_size=3, ttl_seconds=5.0, clock=clock)
        cache.put("old1", 1)
        cache.put("old2", 2)
        clock.advance(6.0)          # old1/old2 now dead
        cache.put("live", 3)
        cache.put("new", 4)         # over capacity: drop the dead, keep live
        assert cache.get("live") == 3
        assert cache.get("new") == 4
        stats = cache.stats()
        assert stats["expirations"] == 2
        assert stats["evictions"] == 0

    def test_put_still_evicts_lru_when_nothing_expired(self):
        clock = FakeClock()
        cache = ResultCache(max_size=2, ttl_seconds=5.0, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["expirations"] == 0


class TestKeywordGenerations:
    def test_stamp_is_sum_not_max(self):
        from repro.serving.cache import KeywordGenerations

        gen = KeywordGenerations()
        gen.bump(["a"])
        gen.bump(["a"])
        gen.bump(["a"])
        gen.bump(["a"])
        gen.bump(["a"])
        before = gen.stamp(["a", "b"])
        gen.bump(["b"])  # max(gen) would stay 5 and miss this bump
        assert gen.stamp(["a", "b"]) == before + 1

    def test_never_bumped_keyword_is_zero(self):
        from repro.serving.cache import KeywordGenerations

        gen = KeywordGenerations()
        assert gen.stamp(["x", "y"]) == 0
        assert gen.generation("x") == 0

    def test_bumps_counter(self):
        from repro.serving.cache import KeywordGenerations

        gen = KeywordGenerations()
        gen.bump(["a", "b"])
        gen.bump(["a"])
        assert gen.bumps == 3


class TestKeywordInvalidation:
    def _cache(self):
        from repro.serving.cache import KeywordGenerations

        gen = KeywordGenerations()
        return ResultCache(max_size=8, generations=gen), gen

    def test_bump_invalidates_on_next_get(self):
        cache, gen = self._cache()
        key = make_cache_key(["hotel", "shop"], "EXACT", 0.01)
        cache.put(key, "answer")
        assert cache.get(key) == "answer"
        gen.bump(["shop"])
        assert cache.get(key) is None
        assert cache.stats()["invalidations"] == 1

    def test_disjoint_keywords_stay_hot(self):
        cache, gen = self._cache()
        touched = make_cache_key(["hotel", "shop"], "EXACT", 0.01)
        disjoint = make_cache_key(["restaurant"], "EXACT", 0.01)
        cache.put(touched, 1)
        cache.put(disjoint, 2)
        gen.bump(["shop"])
        assert cache.get(touched) is None
        assert cache.get(disjoint) == 2
        assert cache.stats()["invalidations"] == 1

    def test_probe_stamp_closes_mutation_during_execution_race(self):
        cache, gen = self._cache()
        key = make_cache_key(["hotel"], "EXACT", 0.01)
        stamp = cache.probe_stamp(key)  # captured before "executing"
        gen.bump(["hotel"])             # mutation lands mid-execution
        cache.put(key, "possibly-stale", stamp=stamp)
        # The stale fill must not be trusted on its next lookup.
        assert cache.get(key) is None
        assert cache.stats()["invalidations"] == 1

    def test_contains_drops_generation_stale_entry(self):
        cache, gen = self._cache()
        key = make_cache_key(["hotel"], "EXACT", 0.01)
        cache.put(key, "v")
        gen.bump(["hotel"])
        assert key not in cache
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1

    def test_eager_invalidate_keywords_sweep(self):
        cache, _gen = self._cache()
        a = make_cache_key(["hotel", "shop"], "EXACT", 0.01)
        b = make_cache_key(["restaurant"], "EXACT", 0.01)
        cache.put(a, 1)
        cache.put(b, 2)
        assert cache.invalidate_keywords(["shop"]) == 1
        assert cache.get(a) is None
        assert cache.get(b) == 2

    def test_foreign_keys_are_never_keyword_invalidated(self):
        cache, gen = self._cache()
        cache.put("opaque-key", "v")
        gen.bump(["anything"])
        assert cache.get("opaque-key") == "v"


class TestConservation:
    """inserts == live + evictions + expirations + invalidations, always."""

    @staticmethod
    def _balanced(cache):
        st = cache.stats()
        return st["inserts"] == (
            st["size"] + st["evictions"] + st["expirations"]
            + st["invalidations"]
        )

    def test_mixed_workload_books_balance(self):
        from repro.serving.cache import KeywordGenerations

        clock = FakeClock()
        gen = KeywordGenerations()
        cache = ResultCache(
            max_size=3, ttl_seconds=10.0, clock=clock, generations=gen
        )
        keys = [make_cache_key([t], "EXACT", 0.01) for t in "abcdef"]
        for k in keys[:3]:
            cache.put(k, 1)
        cache.put(keys[0], 2)          # overwrite -> eviction
        cache.put(keys[3], 1)          # over capacity -> LRU eviction
        clock.advance(11.0)
        cache.get(keys[3])             # expired on probe
        cache.put(keys[4], 1)
        gen.bump(["e"])
        cache.get(keys[4])             # invalidated on probe
        cache.put(keys[5], 1)
        cache.clear()                  # everything left -> evictions
        st = cache.stats()
        assert st["invalidations"] == 1
        assert st["expirations"] >= 1
        assert self._balanced(cache), st

    def test_every_single_operation_keeps_balance(self):
        from repro.serving.cache import KeywordGenerations

        clock = FakeClock()
        gen = KeywordGenerations()
        cache = ResultCache(
            max_size=2, ttl_seconds=5.0, clock=clock, generations=gen
        )
        keys = [make_cache_key([t], "EXACT", 0.01) for t in "abcd"]
        ops = [
            lambda: cache.put(keys[0], 1),
            lambda: cache.put(keys[1], 1),
            lambda: cache.put(keys[2], 1),      # evicts
            lambda: cache.get(keys[1]),
            lambda: gen.bump(["b"]),
            lambda: cache.get(keys[1]),          # invalidates
            lambda: clock.advance(6.0),
            lambda: cache.get(keys[2]),          # expires
            lambda: cache.put(keys[3], 1),
            lambda: cache.purge_expired(),
            lambda: keys[3] in cache,
            lambda: cache.clear(),
        ]
        for op in ops:
            op()
            assert self._balanced(cache), cache.stats()

    def test_on_invalidate_callback_counts_drops(self):
        from repro.serving.cache import KeywordGenerations

        dropped = []
        gen = KeywordGenerations()
        cache = ResultCache(
            max_size=4, generations=gen, on_invalidate=dropped.append
        )
        a = make_cache_key(["x"], "EXACT", 0.01)
        b = make_cache_key(["x", "y"], "EXACT", 0.01)
        cache.put(a, 1)
        cache.put(b, 1)
        gen.bump(["x"])
        cache.get(a)
        cache.get(b)
        assert dropped == [1, 1]
        # Evictions and expirations never fire the invalidation callback.
        cache.clear()
        assert dropped == [1, 1]
