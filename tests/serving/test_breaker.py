"""CircuitBreaker under concurrency: half-open admits exactly one probe."""

from __future__ import annotations

import threading

import pytest

from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _hammer_allow(breaker: CircuitBreaker, n_threads: int = 16):
    """Race ``n_threads`` through ``allow()`` from a barrier; return admits."""
    barrier = threading.Barrier(n_threads)
    admitted = []
    lock = threading.Lock()

    def attempt():
        barrier.wait()
        if breaker.allow():
            with lock:
                admitted.append(threading.get_ident())

    threads = [threading.Thread(target=attempt) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return admitted


class TestHalfOpenConcurrency:
    def test_exactly_one_probe_admitted_per_half_open_window(self):
        clock = FakeClock()
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=1,
            cooldown_seconds=1.0,
            clock=clock,
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        rounds = 5
        for _ in range(rounds):
            breaker.record_failure()
            assert breaker.state == OPEN
            clock.advance(1.5)  # cooldown elapsed: next allow() probes
            admitted = _hammer_allow(breaker, n_threads=16)
            assert len(admitted) == 1, (
                f"half-open admitted {len(admitted)} concurrent probes"
            )
            breaker.record_success()
            assert breaker.state == CLOSED
        assert transitions.count((CLOSED, OPEN)) == rounds
        assert transitions.count((OPEN, HALF_OPEN)) == rounds
        assert transitions.count((HALF_OPEN, CLOSED)) == rounds

    def test_failed_probe_reopens_and_no_second_probe_leaks(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()  # the probe
        # While the probe is in flight every other caller is refused.
        assert not any(_hammer_allow(breaker, n_threads=8))
        breaker.record_failure()  # probe failed: full cooldown again
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(1.5)
        admitted = _hammer_allow(breaker, n_threads=8)
        assert len(admitted) == 1

    def test_open_breaker_admits_nobody_under_contention(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown_seconds=30.0, clock=clock
        )
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert _hammer_allow(breaker, n_threads=16) == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
