"""QueryService graceful degradation under deadline pressure."""

import pytest

from repro.serving import MetricsRegistry, QueryService
from repro.testing import faults

QUERY = ["shrine", "shop", "restaurant", "hotel"]


@pytest.fixture
def service(kyoto_engine):
    with QueryService(kyoto_engine, metrics=MetricsRegistry()) as svc:
        yield svc


class TestDefaultModeDegrades:
    def test_timeout_returns_quality_tagged_group(self, service, kyoto_dataset):
        with faults.injected(
            "core.deadline.clock", skew=1e9, after=2, times=None
        ):
            result = service.query(QUERY, algorithm="EXACT", timeout=60.0)
        assert result.ok
        assert result.error is None
        assert result.degraded
        assert result.stats.degraded
        assert result.stats.quality == result.group.quality
        assert result.group.quality  # tagged
        assert result.group.covers(kyoto_dataset, QUERY)

    def test_degraded_answer_not_cached(self, service):
        with faults.injected(
            "core.deadline.clock", skew=1e9, after=2, times=None
        ):
            degraded = service.query(QUERY, algorithm="EXACT", timeout=60.0)
        assert degraded.degraded
        assert service.cache.stats()["size"] == 0
        # The same query without pressure completes, is better-or-equal,
        # and is cached normally.
        full = service.query(QUERY, algorithm="EXACT", timeout=60.0)
        assert not full.degraded
        assert full.group.diameter <= degraded.group.diameter + 1e-9
        assert service.cache.stats()["size"] == 1

    def test_degraded_counter_in_prometheus(self, service):
        with faults.injected(
            "core.deadline.clock", skew=1e9, after=2, times=None
        ):
            result = service.query(QUERY, algorithm="EXACT", timeout=60.0)
        assert result.degraded
        prom = service.metrics.to_prometheus()
        assert "mck_degraded_total{" in prom
        assert (
            service.metrics.degraded_counter.value(
                algorithm="EXACT", quality=result.stats.quality
            )
            == 1.0
        )

    def test_degraded_flag_in_stats_dict(self, service):
        with faults.injected(
            "core.deadline.clock", skew=1e9, after=2, times=None
        ):
            result = service.query(QUERY, algorithm="EXACT", timeout=60.0)
        record = result.stats.as_dict()
        assert record["degraded"] is True
        assert record["quality"] == result.group.quality
        agg = service.metrics.as_dict()["algorithms"]["EXACT"]
        assert agg["degraded"] == 1

    def test_no_incumbent_timeout_still_fails(self, service):
        with faults.injected("core.deadline.clock", skew=1e9, times=None):
            result = service.query(QUERY, algorithm="EXACT", timeout=60.0)
        assert not result.ok
        assert "exceeded time budget" in result.error


class TestStrictMode:
    def test_strict_timeouts_fail_hard(self, kyoto_engine):
        with QueryService(
            kyoto_engine, metrics=MetricsRegistry(), strict_timeouts=True
        ) as svc:
            with faults.injected(
                "core.deadline.clock", skew=1e9, after=2, times=None
            ):
                result = svc.query(QUERY, algorithm="EXACT", timeout=60.0)
            assert not result.ok
            assert not result.degraded
            assert "exceeded time budget" in result.error
            assert svc.cache.stats()["size"] == 0

    def test_untimed_queries_unaffected(self, kyoto_engine, kyoto_dataset):
        with QueryService(
            kyoto_engine, metrics=MetricsRegistry(), strict_timeouts=True
        ) as svc:
            result = svc.query(QUERY, algorithm="SKECa+")
            assert result.ok and not result.degraded
            assert result.group.covers(kyoto_dataset, QUERY)
