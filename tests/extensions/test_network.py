"""Tests for mCK under road-network distances."""

import itertools
import math
import random

import networkx as nx
import pytest

from repro.core.objects import Dataset
from repro.exceptions import DatasetError, InfeasibleQueryError, QueryError
from repro.extensions.network import (
    RoadNetwork,
    network_exact,
    network_gkg,
)


def _grid_graph(n=6):
    g = nx.grid_2d_graph(n, n)
    for node in g.nodes:
        g.nodes[node]["pos"] = (float(node[0]), float(node[1]))
    return g


def _random_city(seed, n_objects=20, grid=6, vocab="abcd"):
    rng = random.Random(seed)
    records = []
    for _ in range(n_objects):
        records.append(
            (
                rng.uniform(0, grid - 1),
                rng.uniform(0, grid - 1),
                rng.sample(list(vocab), rng.randint(1, 2)),
            )
        )
    ds = Dataset.from_records(records)
    return RoadNetwork(_grid_graph(grid), ds), ds


def _bruteforce_network_optimum(network, ds, keywords):
    relevant = [o.oid for o in ds if set(o.keywords) & set(keywords)]
    best = math.inf
    for size in range(1, len(keywords) + 1):
        for combo in itertools.combinations(relevant, size):
            covered = set()
            for oid in combo:
                covered |= ds[oid].keywords
            if not set(keywords) <= covered:
                continue
            best = min(best, network.group_diameter(list(combo)))
    return best


class TestRoadNetwork:
    def test_snapping(self):
        ds = Dataset.from_records([(0.2, 0.3, ["a"]), (4.8, 4.9, ["b"])])
        net = RoadNetwork(_grid_graph(), ds)
        assert net.vertex_of(0) == (0, 0)
        assert net.vertex_of(1) == (5, 5)

    def test_distance_is_manhattan_on_grid(self):
        ds = Dataset.from_records([(0, 0, ["a"]), (3, 4, ["b"])])
        net = RoadNetwork(_grid_graph(), ds)
        assert net.distance(0, 1) == pytest.approx(7.0)  # grid path

    def test_distance_symmetric(self):
        net, ds = _random_city(1)
        for a in range(0, 6):
            for b in range(a, 6):
                assert net.distance(a, b) == pytest.approx(net.distance(b, a))

    def test_disconnected_is_infinite(self):
        g = nx.Graph()
        g.add_node(0, pos=(0.0, 0.0))
        g.add_node(1, pos=(10.0, 10.0))
        ds = Dataset.from_records([(0, 0, ["a"]), (10, 10, ["b"])])
        net = RoadNetwork(g, ds)
        assert net.distance(0, 1) == math.inf

    def test_missing_pos_rejected(self):
        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(DatasetError):
            RoadNetwork(g, Dataset.from_records([(0, 0, ["a"])]))

    def test_empty_graph_rejected(self):
        with pytest.raises(DatasetError):
            RoadNetwork(nx.Graph(), Dataset.from_records([(0, 0, ["a"])]))

    def test_explicit_weights_respected(self):
        g = nx.Graph()
        g.add_node(0, pos=(0.0, 0.0))
        g.add_node(1, pos=(1.0, 0.0))
        g.add_edge(0, 1, weight=42.0)
        ds = Dataset.from_records([(0, 0, ["a"]), (1, 0, ["b"])])
        net = RoadNetwork(g, ds)
        assert net.distance(0, 1) == pytest.approx(42.0)


class TestNetworkExact:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_bruteforce(self, seed):
        net, ds = _random_city(seed)
        keywords = ["a", "b", "c"]
        try:
            got = network_exact(net, keywords)
        except InfeasibleQueryError:
            return
        want = _bruteforce_network_optimum(net, ds, keywords)
        assert got.diameter == pytest.approx(want, abs=1e-9)

    def test_network_optimum_differs_from_euclidean(self):
        """A wall in the road graph makes Euclidean neighbours far apart."""
        g = nx.Graph()
        # A C-shaped road: 0-1-2-3-4; vertices 0 and 4 are Euclidean-close.
        positions = [(0.0, 0.0), (0.0, 2.0), (2.0, 2.0), (2.0, 0.0), (0.5, 0.0)]
        for i, pos in enumerate(positions):
            g.add_node(i, pos=pos)
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            g.add_edge(a, b)
        ds = Dataset.from_records(
            [(0.0, 0.0, ["a"]), (0.5, 0.0, ["b"]), (0.0, 2.0, ["b"])]
        )
        net = RoadNetwork(g, ds)
        got = network_exact(net, ["a", "b"])
        # Euclidean would pick the 0.5-away 'b'; network distance to it is
        # the long way around (2+2+1.5=5.5... edges: 0-1=2,1-2=2,2-3=2,3-4=1.5
        # so dist(0,4)=7.5) while the 'b' at (0,2) is 2 away by road.
        assert set(got.object_ids) == {0, 2}
        assert got.diameter == pytest.approx(2.0)

    def test_infeasible(self):
        net, ds = _random_city(2)
        with pytest.raises(InfeasibleQueryError):
            network_exact(net, ["a", "zzz"])

    def test_empty_query(self):
        net, ds = _random_city(3)
        with pytest.raises(QueryError):
            network_exact(net, [])


class TestNetworkGkg:
    @pytest.mark.parametrize("seed", range(6))
    def test_factor_two_bound(self, seed):
        net, ds = _random_city(seed + 10)
        keywords = ["a", "b"]
        try:
            greedy = network_gkg(net, keywords)
            exact = network_exact(net, keywords)
        except InfeasibleQueryError:
            return
        assert exact.diameter <= greedy.diameter + 1e-9
        assert greedy.diameter <= 2.0 * exact.diameter + 1e-9

    def test_single_object_cover(self):
        ds = Dataset.from_records([(1, 1, ["a", "b"]), (4, 4, ["a"])])
        net = RoadNetwork(_grid_graph(), ds)
        got = network_gkg(net, ["a", "b"])
        assert got.diameter == 0.0
