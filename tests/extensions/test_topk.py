"""Tests for the top-k mCK extension."""

import pytest

from repro.core.objects import Dataset
from repro.exceptions import QueryError
from repro.extensions.topk import top_k_mck
from tests.conftest import feasible_query, make_random_dataset


@pytest.fixture
def two_cluster_dataset():
    """Two clean clusters each covering {a, b}, one tighter than the other."""
    return Dataset.from_records(
        [
            (0.0, 0.0, ["a"]),
            (1.0, 0.0, ["b"]),       # cluster 1, diameter 1
            (50.0, 50.0, ["a"]),
            (53.0, 50.0, ["b"]),     # cluster 2, diameter 3
            (200.0, 200.0, ["a"]),   # stragglers
            (260.0, 200.0, ["b"]),
        ]
    )


class TestDisjointPolicy:
    def test_returns_clusters_in_order(self, two_cluster_dataset):
        groups = top_k_mck(two_cluster_dataset, ["a", "b"], k=2)
        assert len(groups) == 2
        assert set(groups[0].object_ids) == {0, 1}
        assert set(groups[1].object_ids) == {2, 3}
        assert groups[0].diameter <= groups[1].diameter

    def test_groups_disjoint(self, two_cluster_dataset):
        groups = top_k_mck(two_cluster_dataset, ["a", "b"], k=3)
        seen = set()
        for g in groups:
            assert not (seen & set(g.object_ids))
            seen.update(g.object_ids)

    def test_stops_when_exhausted(self, two_cluster_dataset):
        groups = top_k_mck(two_cluster_dataset, ["a", "b"], k=10)
        assert len(groups) == 3  # three a/b pairs exist

    def test_diameters_non_decreasing(self):
        ds = make_random_dataset(1, n=60)
        query = feasible_query(ds, 1, 3)
        groups = top_k_mck(ds, query, k=4)
        for a, b in zip(groups, groups[1:]):
            assert a.diameter <= b.diameter + 1e-9

    def test_every_group_feasible(self):
        ds = make_random_dataset(2, n=50)
        query = feasible_query(ds, 2, 3)
        for g in top_k_mck(ds, query, k=3):
            assert g.covers(ds, query)


class TestDistinctPolicy:
    def test_groups_differ(self, two_cluster_dataset):
        groups = top_k_mck(
            two_cluster_dataset, ["a", "b"], k=3, policy="distinct"
        )
        sets = [frozenset(g.object_ids) for g in groups]
        assert len(sets) == len(set(sets))

    def test_first_group_is_optimum(self, two_cluster_dataset):
        groups = top_k_mck(
            two_cluster_dataset, ["a", "b"], k=1, policy="distinct"
        )
        assert groups[0].diameter == pytest.approx(1.0)


class TestSolvers:
    def test_skeca_plus_solver(self, two_cluster_dataset):
        groups = top_k_mck(
            two_cluster_dataset, ["a", "b"], k=2, algorithm="SKECa+"
        )
        assert len(groups) == 2
        # Each group is within the approximation guarantee of its residual
        # optimum; the first residual optimum is 1.0.
        assert groups[0].diameter <= (2 / 3**0.5 + 0.01) * 1.0 + 1e-9


class TestValidation:
    def test_k_must_be_positive(self, two_cluster_dataset):
        with pytest.raises(QueryError):
            top_k_mck(two_cluster_dataset, ["a", "b"], k=0)

    def test_unknown_policy(self, two_cluster_dataset):
        with pytest.raises(QueryError):
            top_k_mck(two_cluster_dataset, ["a", "b"], k=1, policy="weird")

    def test_unknown_solver(self, two_cluster_dataset):
        with pytest.raises(QueryError):
            top_k_mck(two_cluster_dataset, ["a", "b"], k=1, algorithm="GKG")
