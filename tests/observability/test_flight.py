"""FlightRecorder tests: tail-based retention, ring bounds, dumping."""

from __future__ import annotations

import json
import random

import pytest

from repro.observability.flight import FlightRecorder, TraceOutcome
from repro.observability.tracer import Tracer


def span_dict(trace_id: str, name: str = "s", **attrs):
    return FlightRecorder.synthetic_span(name, trace_id=trace_id, **attrs)


class TestRetentionReasons:
    @pytest.mark.parametrize(
        "kwargs, reason",
        [
            (dict(rejected=True), "rejected"),
            (dict(error="boom"), "error"),
            (dict(degraded=True), "degraded"),
            (dict(fault_hits=2), "fault"),
        ],
    )
    def test_flagged_outcomes_always_retained(self, kwargs, reason):
        rec = FlightRecorder()
        trace = rec.complete("t1", **kwargs)
        assert trace is not None
        assert reason in trace.reasons
        assert rec.get("t1") is trace

    def test_boring_dropped(self):
        rec = FlightRecorder()
        assert rec.complete("t1", latency_seconds=0.01) is None
        assert rec.get("t1") is None
        assert rec.stats()["dropped_boring"] == 1

    def test_boring_keep_rate_samples(self):
        rec = FlightRecorder(boring_keep_rate=1.0, rng=random.Random(0))
        trace = rec.complete("t1", latency_seconds=0.01)
        assert trace is not None and trace.reasons == ("sampled",)

    def test_reasons_accumulate_in_order(self):
        rec = FlightRecorder()
        trace = rec.complete("t1", rejected=True, error="x", degraded=True)
        assert trace.reasons == ("rejected", "error", "degraded")


class TestSlownessDetector:
    def test_no_slow_retention_before_warmup(self):
        rec = FlightRecorder(min_samples=10)
        for i in range(9):
            rec.complete(f"t{i}", latency_seconds=0.001)
        assert rec.rolling_p99() is None
        assert len(rec) == 0

    def test_slow_outlier_retained_after_warmup(self):
        rec = FlightRecorder(min_samples=10)
        for i in range(20):
            rec.complete(f"t{i}", latency_seconds=0.001)
        trace = rec.complete("slow", latency_seconds=5.0)
        assert trace is not None and "slow" in trace.reasons
        # The outlier itself joined the window only after the comparison.
        assert rec.rolling_p99() is not None

    def test_rejected_latency_not_fed_to_window(self):
        rec = FlightRecorder(min_samples=2)
        for i in range(5):
            rec.complete(f"t{i}", rejected=True, latency_seconds=100.0)
        assert rec.rolling_p99() is None


class TestBoundedMemory:
    def test_retained_ring_evicts_oldest(self):
        rec = FlightRecorder(max_traces=3)
        for i in range(5):
            rec.complete(f"t{i}", degraded=True)
        assert len(rec) == 3
        assert rec.trace_ids() == ["t2", "t3", "t4"]
        assert rec.stats()["evicted"] == 2

    def test_pending_bound_evicts_never_completed_traces(self):
        rec = FlightRecorder(max_pending=2)
        for i in range(4):
            rec.on_span(span_dict(f"t{i}"))
        stats = rec.stats()
        assert stats["pending"] == 2
        assert stats["pending_evicted"] == 2


class TestTracerWiring:
    def test_attach_collects_spans_and_complete_retains_tree(self):
        tracer = Tracer()
        rec = FlightRecorder().attach(tracer)
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        trace = rec.complete(root.trace_id, degraded=True)
        assert {s["name"] for s in trace.spans} == {"root", "child"}

    def test_attach_is_idempotent(self):
        tracer = Tracer()
        rec = FlightRecorder()
        rec.attach(tracer)
        rec.attach(tracer)
        with tracer.span("root") as root:
            pass
        trace = rec.complete(root.trace_id, degraded=True)
        assert len(trace.spans) == 1

    def test_detach_stops_collection(self):
        tracer = Tracer()
        rec = FlightRecorder().attach(tracer)
        rec.detach()
        with tracer.span("root") as root:
            pass
        assert rec.complete(root.trace_id, degraded=True).spans == []

    def test_extra_spans_appended_for_rejections(self):
        rec = FlightRecorder()
        sp = span_dict("tr", name="serve.rejected", reason="queue_full")
        trace = rec.complete("tr", rejected=True, extra_spans=[sp])
        assert trace.spans[0]["name"] == "serve.rejected"


class TestDumping:
    def test_chrome_dump_roundtrip(self, tmp_path):
        tracer = Tracer()
        rec = FlightRecorder().attach(tracer)
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        rec.complete(root.trace_id, degraded=True)
        path = tmp_path / "dump.json"
        events = rec.dump(str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == events
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"root", "child"} <= names

    def test_auto_dump_on_triggered_retention(self, tmp_path):
        rec = FlightRecorder(auto_dump_dir=str(tmp_path), auto_dump_limit=1)
        rec.complete("t1", degraded=True, extra_spans=[span_dict("t1")])
        rec.complete("t2", degraded=True, extra_spans=[span_dict("t2")])
        files = list(tmp_path.glob("trace-*.json"))
        assert [f.name for f in files] == ["trace-t1.json"]
        assert rec.stats()["auto_dumps"] == 1

    def test_outcome_object_accepted(self):
        rec = FlightRecorder()
        trace = rec.complete("t", TraceOutcome(degraded=True, algorithm="GKG"))
        assert trace.outcome.algorithm == "GKG"
        assert trace.as_dict()["algorithm"] == "GKG"
