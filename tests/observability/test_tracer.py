"""Tracer unit tests: nesting, threads, sampling, the disabled fast path."""

from __future__ import annotations

import random
import threading

import pytest

from repro.observability.tracer import (
    NULL_SPAN,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    traced,
)


def make_tracer(**kwargs):
    """A tracer with a deterministic fake clock ticking 10 ns per read."""
    state = {"now": 0}

    def clock():
        state["now"] += 10
        return state["now"]

    return Tracer(clock_ns=clock, **kwargs)


class TestNesting:
    def test_parent_child_links(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        spans = {s["name"]: s for s in tracer.finished_spans()}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["inner"]["trace_id"] == spans["outer"]["trace_id"]
        assert spans["outer"]["parent_id"] is None
        assert outer.span_id != inner.span_id

    def test_children_finish_before_parents(self):
        tracer = make_tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        names = [s["name"] for s in tracer.finished_spans()]
        assert names == ["c", "b", "a"]

    def test_sibling_roots_get_distinct_traces(self):
        tracer = make_tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        ids = {s["trace_id"] for s in tracer.finished_spans()}
        assert len(ids) == 2

    def test_durations_are_monotonic_and_nested(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {s["name"]: s for s in tracer.finished_spans()}
        inner, outer = spans["inner"], spans["outer"]
        assert outer["start_ns"] < inner["start_ns"]
        assert inner["end_ns"] < outer["end_ns"]
        assert inner["end_ns"] > inner["start_ns"]

    def test_exception_records_error_attribute(self):
        tracer = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        (sp,) = tracer.finished_spans()
        assert sp["attributes"]["error"] == "ValueError"

    def test_attributes_and_set_attribute(self):
        tracer = make_tracer()
        with tracer.span("step", pole=7) as sp:
            sp.set_attribute("found", True)
        (rec,) = tracer.finished_spans()
        assert rec["attributes"] == {"pole": 7, "found": True}

    def test_record_complete_joins_current_parent(self):
        tracer = make_tracer()
        with tracer.span("request") as root:
            tracer.record_complete("queue", 1, 5)
        spans = {s["name"]: s for s in tracer.finished_spans()}
        assert spans["queue"]["parent_id"] == root.span_id
        assert spans["queue"]["start_ns"] == 1
        assert spans["queue"]["end_ns"] == 5


class TestThreadIsolation:
    def test_threads_do_not_share_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(name):
            with tracer.span(name):
                barrier.wait(timeout=5)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.finished_spans()
        assert len(spans) == 2
        # Both overlapped in time, yet neither parents the other.
        assert all(s["parent_id"] is None for s in spans)
        assert len({s["trace_id"] for s in spans}) == 2


class TestDisabledFastPath:
    def test_disabled_tracer_returns_the_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        assert tracer.span("other", key=1) is NULL_SPAN
        with tracer.span("x") as sp:
            sp.set_attribute("ignored", 1)
        assert len(tracer) == 0

    def test_global_span_without_tracer_is_the_null_singleton(self):
        assert get_tracer() is None
        assert span("hot.loop") is NULL_SPAN

    def test_null_span_is_reusable_and_inert(self):
        with NULL_SPAN as a:
            with NULL_SPAN as b:
                assert a is b is NULL_SPAN


class TestSampling:
    def test_unsampled_root_drops_children_too(self):
        tracer = make_tracer(sample_rate=0.0)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert len(tracer) == 0

    def test_sampled_traces_are_structurally_complete(self):
        tracer = make_tracer(sample_rate=0.5, rng=random.Random(7))
        for _ in range(50):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        spans = tracer.finished_spans()
        assert 0 < len(spans) < 100
        roots = [s for s in spans if s["parent_id"] is None]
        children = [s for s in spans if s["parent_id"] is not None]
        # Every recorded child has its recorded root; never orphans.
        assert len(roots) == len(children)
        root_ids = {s["span_id"] for s in roots}
        assert all(c["parent_id"] in root_ids for c in children)


class TestBufferManagement:
    def test_max_spans_counts_drops(self):
        tracer = make_tracer(max_spans=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_drain_and_ingest_round_trip(self):
        source = make_tracer()
        with source.span("work", pole=3):
            pass
        shipped = source.drain()
        assert len(source) == 0
        sink = make_tracer()
        sink.ingest(shipped)
        assert [s["name"] for s in sink.finished_spans()] == ["work"]

    def test_set_trace_id_pins_the_next_root(self):
        tracer = make_tracer()
        tracer.set_trace_id("abc123")
        with tracer.span("root"):
            pass
        (sp,) = tracer.finished_spans()
        assert sp["trace_id"] == "abc123"


class TestGlobalRegistration:
    def test_set_tracer_and_traced_decorator(self):
        tracer = make_tracer()
        previous = set_tracer(tracer)
        try:

            @traced("decorated.fn")
            def fn(x):
                return x + 1

            assert fn(1) == 2
            with span("manual"):
                pass
        finally:
            set_tracer(previous)
        names = {s["name"] for s in tracer.finished_spans()}
        assert names == {"decorated.fn", "manual"}
        assert get_tracer() is previous
