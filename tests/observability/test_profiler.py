"""Stack-sampling profiler tests: output format, bounds, overhead."""

from __future__ import annotations

import threading
import time

import pytest

from repro.observability.profiler import StackProfiler


def burn(deadline):
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestSampling:
    def test_captures_busy_thread_stacks(self):
        with StackProfiler(interval=0.002) as prof:
            burn(time.perf_counter() + 0.15)
        counts = prof.collapsed()
        assert counts, "no stacks sampled"
        assert any("burn" in stack for stack in counts)
        stats = prof.stats()
        assert stats["samples"] > 10
        assert stats["wall_seconds"] > 0.1

    def test_collapsed_format_is_semicolon_separated(self):
        with StackProfiler(interval=0.002) as prof:
            burn(time.perf_counter() + 0.05)
        text = prof.render_collapsed()
        line = text.splitlines()[0]
        stack, count = line.rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in stack and "." in stack

    def test_write_collapsed(self, tmp_path):
        with StackProfiler(interval=0.002) as prof:
            burn(time.perf_counter() + 0.05)
        path = tmp_path / "out.folded"
        n = prof.write_collapsed(str(path))
        assert n == len(path.read_text().splitlines())

    def test_idle_threads_filtered_by_default(self):
        stop = threading.Event()
        idler = threading.Thread(target=stop.wait, daemon=True)
        idler.start()
        try:
            with StackProfiler(interval=0.002) as prof:
                time.sleep(0.05)
            # The main thread sleeps and the idler waits: both leaves are
            # idle, so nothing should be recorded.
            assert all(
                not s.endswith(".wait") and not s.endswith(".sleep")
                for s in prof.collapsed()
            )
        finally:
            stop.set()


class TestBoundsAndLifecycle:
    def test_max_stacks_folds_into_other(self):
        prof = StackProfiler(interval=0.002, max_stacks=1)
        prof._counts["existing"] = 1
        with prof:
            burn(time.perf_counter() + 0.05)
        counts = prof.collapsed()
        assert set(counts) <= {"existing", "(other)"}

    def test_double_start_rejected(self):
        prof = StackProfiler(interval=0.01).start()
        try:
            with pytest.raises(RuntimeError):
                prof.start()
        finally:
            prof.stop()
        prof.stop()  # idempotent

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            StackProfiler(interval=0.0)

    def test_overhead_fraction_reported_and_small(self):
        with StackProfiler(interval=0.02) as prof:
            burn(time.perf_counter() + 0.2)
        stats = prof.stats()
        assert 0.0 <= stats["overhead_fraction"] < 0.5
        assert stats["sampling_seconds"] <= stats["wall_seconds"]
