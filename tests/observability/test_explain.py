"""EXPLAIN assembly tests: span forest, phases, sections, rendering."""

from __future__ import annotations

from repro.observability.explain import (
    build_explain,
    collect_trace_spans,
    render_explain,
)
from repro.observability.tracer import Tracer


def make_spans():
    """A small realistic span forest via a real tracer."""
    tracer = Tracer()
    with tracer.span("serve.request") as root:
        with tracer.span("serve.queue"):
            pass
        with tracer.span("serve.execute"):
            with tracer.span("engine.algorithm", kernel="scalar"):
                pass
    return tracer.finished_spans(), root.trace_id


class TestBuildExplain:
    def test_minimal_report_shape(self):
        report = build_explain(
            keywords=("a", "b"), algorithm="GKG", epsilon=0.01
        )
        assert report["query"]["m"] == 2
        assert report["outcome"]["status"] == "ok"
        assert report["execution"]["kernel_mode"] == "unknown"
        assert report["span_count"] == 0
        assert report["tree"] == []

    def test_span_tree_structure_and_phases(self):
        spans, _tid = make_spans()
        report = build_explain(
            keywords=("a",), algorithm="GKG", epsilon=0.01, spans=spans
        )
        (root,) = report["tree"]
        assert root["name"] == "serve.request"
        assert {c["name"] for c in root["children"]} == {
            "serve.queue",
            "serve.execute",
        }
        phases = {p["name"]: p for p in report["phases"]}
        assert phases["serve.request"]["count"] == 1
        # Self time subtracts direct children.
        assert (
            phases["serve.request"]["self_seconds"]
            <= phases["serve.request"]["total_seconds"]
        )

    def test_kernel_mode_from_span_attribute_wins(self):
        spans, _tid = make_spans()
        report = build_explain(
            keywords=("a",),
            algorithm="GKG",
            epsilon=0.01,
            spans=spans,
            counters={"kernel_vectorized": 1.0},
        )
        assert report["execution"]["kernel_mode"] == "scalar"

    def test_kernel_mode_falls_back_to_counter(self):
        report = build_explain(
            keywords=("a",),
            algorithm="GKG",
            epsilon=0.01,
            counters={"kernel_vectorized": 1.0},
        )
        assert report["execution"]["kernel_mode"] == "vectorized"

    def test_orphan_spans_become_roots(self):
        spans = [
            {
                "name": "lost-child",
                "trace_id": "t",
                "span_id": "s1",
                "parent_id": "missing",
                "start_ns": 0,
                "end_ns": 10,
                "duration_ns": 10,
                "attributes": {},
            }
        ]
        report = build_explain(
            keywords=("a",), algorithm="GKG", epsilon=0.01, spans=spans
        )
        assert [n["name"] for n in report["tree"]] == ["lost-child"]

    def test_counters_split_key_vs_other(self):
        report = build_explain(
            keywords=("a",),
            algorithm="SKECA+",
            epsilon=0.01,
            counters={"circle_scans": 7.0, "weird_counter": 3.0, "epoch": 4.0},
        )
        assert report["counters"]["key"] == {"circle_scans": 7.0}
        assert report["counters"]["other"] == {"weird_counter": 3.0}
        assert report["execution"]["epoch"] == 4

    def test_nan_diameter_becomes_none(self):
        report = build_explain(
            keywords=("a",),
            algorithm="GKG",
            epsilon=0.01,
            diameter=float("nan"),
        )
        assert report["outcome"]["diameter"] is None


class TestCollect:
    def test_collect_filters_by_trace_id(self):
        tracer = Tracer()
        with tracer.span("first") as a:
            pass
        with tracer.span("second"):
            pass
        spans = collect_trace_spans(tracer, a.trace_id)
        assert [s["name"] for s in spans] == ["first"]


class TestRender:
    def test_render_contains_key_sections(self):
        spans, tid = make_spans()
        report = build_explain(
            keywords=("alpha", "beta"),
            algorithm="SKECA+",
            epsilon=0.01,
            spans=spans,
            counters={"circle_scans": 3.0},
            timings={"total_seconds": 0.5},
            trace_id=tid,
            diameter=12.5,
            group_size=3,
            object_ids=(1, 2, 3),
        )
        text = render_explain(report)
        assert "EXPLAIN" in text and tid in text
        assert "alpha, beta" in text
        assert "circle_scans=3" in text
        assert "serve.request" in text and "engine.algorithm" in text

    def test_render_caps_wide_trees(self):
        tracer = Tracer()
        with tracer.span("root") as r:
            for i in range(20):
                with tracer.span(f"c{i}"):
                    pass
        report = build_explain(
            keywords=("a",),
            algorithm="GKG",
            epsilon=0.01,
            spans=tracer.finished_spans(),
            trace_id=r.trace_id,
        )
        text = render_explain(report)
        assert "more)" in text  # elision marker, output stays bounded

    def test_render_error_status(self):
        report = build_explain(
            keywords=("a",),
            algorithm="GKG",
            epsilon=0.01,
            status="error",
            error="deadline exceeded",
        )
        text = render_explain(report)
        assert "error" in text and "deadline exceeded" in text
