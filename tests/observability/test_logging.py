"""Structured-logging tests: JSON lines, correlation ids, idempotency."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.observability.logging import (
    JsonFormatter,
    configure_logging,
    correlation_scope,
    get_correlation_id,
    get_logger,
    new_correlation_id,
    set_correlation_id,
)


@pytest.fixture
def capture():
    """Attach a JSON handler on a StringIO; detach afterwards."""
    stream = io.StringIO()
    handler = configure_logging(stream=stream, level=logging.DEBUG)
    try:
        yield stream
    finally:
        logging.getLogger("repro").removeHandler(handler)
        logging.getLogger("repro").setLevel(logging.WARNING)


def emitted(stream) -> list:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestCorrelationIds:
    def test_shape(self):
        cid = new_correlation_id()
        assert cid.startswith("q-")
        assert len(cid) == 14

    def test_scope_binds_and_restores(self):
        assert get_correlation_id() == ""
        with correlation_scope() as cid:
            assert get_correlation_id() == cid
            with correlation_scope("q-nested") as inner:
                assert inner == "q-nested"
                assert get_correlation_id() == "q-nested"
            assert get_correlation_id() == cid
        assert get_correlation_id() == ""

    def test_set_correlation_id(self):
        set_correlation_id("q-manual")
        try:
            assert get_correlation_id() == "q-manual"
        finally:
            set_correlation_id("")


class TestStructuredLogger:
    def test_json_lines_with_fields(self, capture):
        log = get_logger("serving")
        log.info("query.served", algorithm="SKECa+", seconds=0.25, hit=False)
        (record,) = emitted(capture)
        assert record["event"] == "query.served"
        assert record["logger"] == "repro.serving"
        assert record["level"] == "info"
        assert record["algorithm"] == "SKECa+"
        assert record["seconds"] == 0.25
        assert record["hit"] is False
        assert "ts" in record

    def test_correlation_id_lands_in_records(self, capture):
        log = get_logger("serving")
        with correlation_scope("q-abc") as cid:
            log.info("inside")
        log.info("outside")
        inside, outside = emitted(capture)
        assert inside["correlation_id"] == "q-abc"
        assert "correlation_id" not in outside

    def test_levels_filtered(self, capture):
        logging.getLogger("repro").setLevel(logging.WARNING)
        log = get_logger("x")
        log.debug("hidden")
        log.warning("shown", detail=1)
        (record,) = emitted(capture)
        assert record["event"] == "shown"

    def test_nonserializable_fields_degrade_to_str(self, capture):
        log = get_logger("x")
        log.info("weird", value=object(), nan=float("nan"))
        (record,) = emitted(capture)
        assert isinstance(record["value"], str)
        assert isinstance(record["nan"], str)

    def test_logger_name_prefixing(self):
        assert get_logger("serving").raw.name == "repro.serving"
        assert get_logger("repro.core").raw.name == "repro.core"


class TestConfigureLogging:
    def test_idempotent(self):
        s1, s2 = io.StringIO(), io.StringIO()
        h1 = configure_logging(stream=s1, level=logging.INFO)
        h2 = configure_logging(stream=s2, level=logging.INFO)
        try:
            logger = logging.getLogger("repro")
            marked = [
                h for h in logger.handlers
                if getattr(h, "_repro_json_handler", False)
            ]
            assert marked == [h2]
            get_logger("x").info("once")
            assert s1.getvalue() == ""
            assert len(emitted(s2)) == 1
        finally:
            logging.getLogger("repro").removeHandler(h2)
            logging.getLogger("repro").setLevel(logging.WARNING)

    def test_formatter_handles_exceptions(self):
        formatter = JsonFormatter()
        try:
            raise KeyError("nope")
        except KeyError:
            import sys

            record = logging.LogRecord(
                "repro.t", logging.ERROR, __file__, 1, "boom", (), sys.exc_info()
            )
        document = json.loads(formatter.format(record))
        assert document["exception"] == "KeyError"
        assert document["event"] == "boom"
