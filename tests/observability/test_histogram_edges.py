"""Histogram percentile edge cases and exemplar plumbing.

The percentile estimator must never return NaN: empty children return
``None``, and every estimate is clamped to the observed min/max.
"""

from __future__ import annotations

import math

from repro.observability.metrics import Histogram


class TestPercentileEdges:
    def test_empty_child_returns_none(self):
        hist = Histogram("h", label_names=("algo",))
        hist.observe(0.5, algo="GKG")
        assert hist.percentile(99.0, algo="EXACT") is None
        assert hist.percentile(0.0, algo="EXACT") is None

    def test_single_bucket_histogram_no_nan(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.25)
        for q in (0.0, 50.0, 99.0, 100.0):
            p = hist.percentile(q)
            assert p is not None and not math.isnan(p)
            assert p == 0.25  # clamped to the only observed value

    def test_all_overflow_returns_max_not_nan(self):
        hist = Histogram("h", buckets=(0.001,))
        for v in (10.0, 20.0, 30.0):
            hist.observe(v)
        for q in (0.0, 50.0, 99.9, 100.0):
            p = hist.percentile(q)
            assert p is not None and not math.isnan(p)
        assert hist.percentile(100.0) == 30.0

    def test_zero_percentile_on_populated_histogram(self):
        hist = Histogram("h")
        hist.observe(0.005)
        p = hist.percentile(0.0)
        assert p is not None and not math.isnan(p)

    def test_mixed_labels_do_not_leak(self):
        hist = Histogram("h", label_names=("algo",))
        hist.observe(0.001, algo="GKG")
        hist.observe(100.0, algo="EXACT")
        assert hist.percentile(99.0, algo="GKG") <= 0.01


class TestExemplars:
    def test_observe_with_exemplar_recorded_on_bucket(self):
        hist = Histogram("h", buckets=(0.01, 1.0))
        hist.observe(0.5, exemplar={"trace_id": "abc123"})
        exemplars = hist.exemplars()
        assert any(e[0] == {"trace_id": "abc123"} for e in exemplars)

    def test_last_exemplar_per_bucket_wins(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.5, exemplar={"trace_id": "first"})
        hist.observe(0.6, exemplar={"trace_id": "second"})
        labels = [e[0]["trace_id"] for e in hist.exemplars()]
        assert labels == ["second"]

    def test_overflow_exemplar_lands_in_inf_bucket(self):
        hist = Histogram("h", buckets=(0.001,))
        hist.observe(10.0, exemplar={"trace_id": "big"})
        assert [e[0]["trace_id"] for e in hist.exemplars()] == ["big"]

    def test_samples_with_exemplars_only_on_buckets(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.5, exemplar={"trace_id": "t"})
        rows = hist.samples_with_exemplars()
        for name, _labels, bucket, _value, exemplar in rows:
            if exemplar is not None:
                assert name.endswith("_bucket")
