"""Exporter golden tests: Prometheus text and Chrome trace JSON."""

from __future__ import annotations

import json

from repro.observability.exporters import (
    chrome_trace,
    render_prometheus,
    write_chrome_trace,
)
from repro.observability.metrics import Counter, Gauge, Histogram
from repro.observability.tracer import Tracer


def make_tracer():
    state = {"now": 0}

    def clock():
        state["now"] += 1000
        return state["now"]

    return Tracer(clock_ns=clock)


class TestPrometheus:
    def test_counter_golden(self):
        c = Counter("mck_queries_total", help="Served queries.", label_names=("algo",))
        c.inc(3, algo="GKG")
        text = render_prometheus([c])
        assert text == (
            "# HELP mck_queries_total Served queries.\n"
            "# TYPE mck_queries_total counter\n"
            'mck_queries_total{algo="GKG"} 3\n'
        )

    def test_gauge_without_labels(self):
        g = Gauge("mck_cache_size")
        g.set(42.0)
        text = render_prometheus([g])
        assert "# TYPE mck_cache_size gauge\n" in text
        assert "mck_cache_size 42\n" in text

    def test_histogram_exposition_grammar(self):
        h = Histogram(
            "mck_latency", label_names=("algorithm", "cache"), buckets=(0.1, 1.0)
        )
        h.observe(0.05, algorithm="SKECa+", cache="miss")
        h.observe(0.5, algorithm="SKECa+", cache="miss")
        text = render_prometheus([h])
        lines = text.splitlines()
        assert "# TYPE mck_latency histogram" in lines
        assert (
            'mck_latency_bucket{algorithm="SKECa+",cache="miss",le="0.1"} 1'
            in lines
        )
        assert (
            'mck_latency_bucket{algorithm="SKECa+",cache="miss",le="1"} 2'
            in lines
        )
        assert (
            'mck_latency_bucket{algorithm="SKECa+",cache="miss",le="+Inf"} 2'
            in lines
        )
        assert 'mck_latency_count{algorithm="SKECa+",cache="miss"} 2' in lines
        (sum_line,) = [l for l in lines if l.startswith("mck_latency_sum")]
        assert float(sum_line.rsplit(" ", 1)[1]) == 0.55

    def test_label_escaping(self):
        c = Counter("c", label_names=("q",))
        c.inc(q='say "hi"\nplease\\now')
        text = render_prometheus([c])
        assert r'q="say \"hi\"\nplease\\now"' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus([]) == ""


def span_events(document):
    return [e for e in document["traceEvents"] if e["ph"] == "X"]


class TestChromeTrace:
    def test_round_trips_through_json(self, tmp_path):
        tracer = make_tracer()
        with tracer.span("outer", algorithm="SKECa+"):
            with tracer.span("inner", pole=3):
                pass
        path = tmp_path / "trace.json"
        count = write_chrome_trace(tracer, str(path))
        document = json.loads(path.read_text())
        assert count == len(document["traceEvents"])
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        events = span_events(document)
        assert [e["name"] for e in events] == ["outer", "inner"]  # by start
        for event in events:
            assert event["dur"] > 0
            assert event["cat"] == event["name"]
        inner = events[1]
        assert inner["args"]["pole"] == 3
        assert inner["args"]["parent_id"] == events[0]["args"]["span_id"]
        assert inner["args"]["trace_id"] == events[0]["args"]["trace_id"]

    def test_metadata_events_label_processes_and_threads(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            pass
        events = chrome_trace(tracer)["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        # Metadata precedes every span event.
        assert events[: len(metadata)] == metadata
        (process,) = [e for e in metadata if e["name"] == "process_name"]
        assert process["args"]["name"].startswith("coordinator (pid ")
        (thread,) = [e for e in metadata if e["name"] == "thread_name"]
        assert thread["pid"] == process["pid"]
        assert thread["args"]["name"]

    def test_foreign_pid_labelled_pool_worker(self):
        span = {
            "name": "engine.query",
            "start_ns": 0,
            "end_ns": 1000,
            "pid": 999_999_999,
            "thread_id": 1,
            "attributes": {},
        }
        metadata = [
            e for e in chrome_trace([span])["traceEvents"] if e["ph"] == "M"
        ]
        (process,) = [e for e in metadata if e["name"] == "process_name"]
        assert process["args"]["name"] == "pool-worker (pid 999999999)"

    def test_category_is_name_prefix(self):
        tracer = make_tracer()
        with tracer.span("serve.request"):
            pass
        (event,) = span_events(chrome_trace(tracer))
        assert event["cat"] == "serve"

    def test_accepts_plain_span_dicts(self):
        tracer = make_tracer()
        with tracer.span("work"):
            pass
        shipped = tracer.drain()
        document = chrome_trace(shipped)
        assert [e["name"] for e in span_events(document)] == ["work"]

    def test_nonfinite_and_object_attributes_become_json_safe(self):
        tracer = make_tracer()
        with tracer.span("s", bad=float("nan"), obj=object(), ok=1.5):
            pass
        document = chrome_trace(tracer)
        text = json.dumps(document, allow_nan=False)  # must not raise
        args = span_events(json.loads(text))[0]["args"]
        assert isinstance(args["bad"], str)
        assert isinstance(args["obj"], str)
        assert args["ok"] == 1.5

    def test_events_sorted_by_start_time(self):
        tracer = make_tracer()
        spans = [
            {"name": "b", "start_ns": 2000, "end_ns": 3000, "attributes": {}},
            {"name": "a", "start_ns": 1000, "end_ns": 1500, "attributes": {}},
        ]
        names = [e["name"] for e in span_events(chrome_trace(spans))]
        assert names == ["a", "b"]
