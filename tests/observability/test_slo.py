"""SLO tracker tests: classification, burn rates, alerts, budget, gauges."""

from __future__ import annotations

import pytest

from repro.observability.slo import (
    SLObjective,
    SLOTracker,
    default_objectives,
)
from repro.serving.stats import MetricsRegistry, QueryStats


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def stats(success=True, rejected=False, total_seconds=0.01):
    return QueryStats(
        keywords=("a",),
        algorithm="GKG",
        epsilon=0.01,
        success=success,
        rejected=rejected,
        total_seconds=total_seconds,
    )


def make_tracker(**kwargs):
    kwargs.setdefault("clock", FakeClock())
    return SLOTracker(default_objectives(latency_target=0.1), **kwargs)


class TestClassification:
    def test_success_is_good_everywhere(self):
        tracker = make_tracker()
        verdicts = tracker.record(stats())
        assert verdicts == {"availability": True, "latency": True}

    def test_rejection_bad_for_availability_excluded_from_latency(self):
        tracker = make_tracker()
        verdicts = tracker.record(stats(success=False, rejected=True))
        assert verdicts["availability"] is False
        assert "latency" not in verdicts

    def test_slow_success_fails_latency_only(self):
        tracker = make_tracker()
        verdicts = tracker.record(stats(total_seconds=5.0))
        assert verdicts == {"availability": True, "latency": False}

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SLObjective("x", "availability", objective=1.5)
        with pytest.raises(ValueError):
            SLObjective("x", "latency", objective=0.9)  # no target
        with pytest.raises(ValueError):
            SLObjective("x", "nonsense", objective=0.9)


class TestBurnRate:
    def test_empty_window_is_zero_not_nan(self):
        tracker = make_tracker()
        assert tracker.burn_rate("availability", 60) == 0.0
        assert tracker.error_budget_remaining("availability") == 1.0

    def test_burn_rate_math(self):
        # 10% bad against a 99% objective = 10x burn.
        clock = FakeClock()
        tracker = SLOTracker(
            (SLObjective("avail", "availability", objective=0.99),),
            clock=clock,
        )
        for i in range(90):
            tracker.record_event("avail", True)
        for i in range(10):
            tracker.record_event("avail", False)
        assert tracker.burn_rate("avail", 60) == pytest.approx(10.0)

    def test_events_age_out_of_window(self):
        clock = FakeClock()
        tracker = SLOTracker(
            (SLObjective("avail", "availability", objective=0.99),),
            windows=(60,),
            clock=clock,
        )
        tracker.record_event("avail", False)
        assert tracker.burn_rate("avail", 60) > 0
        clock.advance(120)
        assert tracker.burn_rate("avail", 60) == 0.0

    def test_budget_remaining_clamped(self):
        clock = FakeClock()
        tracker = SLOTracker(
            (SLObjective("avail", "availability", objective=0.99),),
            clock=clock,
        )
        for _ in range(100):
            tracker.record_event("avail", False)  # 100x over budget
        assert tracker.error_budget_remaining("avail") == 0.0


class TestAlerts:
    def test_alert_requires_both_windows_burning(self):
        clock = FakeClock()
        tracker = SLOTracker(
            (SLObjective("avail", "availability", objective=0.99),),
            alert_policies=((60, 300, 10.0),),
            clock=clock,
        )
        # Sustained 100% failure burns both the short and long window.
        for _ in range(50):
            tracker.record_event("avail", False)
        alerts = tracker.alerts("avail")
        assert len(alerts) == 1
        assert alerts[0]["short_window"] == 60
        # After 4 quiet minutes the short window empties: alert clears.
        clock.advance(240)
        assert tracker.alerts("avail") == []


class TestGaugesAndDict:
    def test_bound_registry_exports_burn_and_budget(self):
        registry = MetricsRegistry()
        tracker = make_tracker(registry=registry)
        tracker.record(stats(success=False))
        tracker.refresh_gauges()
        prom = registry.to_prometheus()
        assert "mck_slo_burn_rate" in prom
        assert "mck_slo_error_budget_remaining" in prom
        assert "mck_slo_events_total" in prom

    def test_as_dict_shape(self):
        tracker = make_tracker()
        tracker.record(stats())
        d = tracker.as_dict()
        assert set(d) == {"availability", "latency"}
        avail = d["availability"]
        assert avail["events"]["good"] == 1
        assert "60" in avail["windows"]
        assert avail["error_budget_remaining"] == 1.0
        assert avail["alerts"] == []
