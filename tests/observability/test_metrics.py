"""Histogram/Counter/Gauge family tests: buckets, percentiles, labels."""

from __future__ import annotations

import math
import threading

import pytest

from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    log_buckets,
)


class TestLogBuckets:
    def test_geometry(self):
        bounds = log_buckets(1e-3, 1.0, per_decade=2)
        assert bounds[0] == pytest.approx(1e-3)
        assert bounds[-1] >= 1.0
        for a, b in zip(bounds, bounds[1:]):
            assert b / a == pytest.approx(10 ** 0.5)

    def test_default_latency_buckets_span_1us_to_100s(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 100.0

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 0.5)
        with pytest.raises(ValueError):
            log_buckets(1.0, 2.0, per_decade=0)


class TestHistogram:
    def test_observe_and_count(self):
        hist = Histogram("h", label_names=("algo",))
        for v in (0.001, 0.002, 0.004):
            hist.observe(v, algo="GKG")
        assert hist.count(algo="GKG") == 3
        assert hist.count(algo="EXACT") == 0

    def test_percentile_none_when_empty(self):
        hist = Histogram("h", label_names=("algo",))
        assert hist.percentile(95.0, algo="GKG") is None

    def test_percentile_clamped_to_observed_extremes(self):
        hist = Histogram("h")
        for _ in range(100):
            hist.observe(0.0015)
        # Interpolation inside the bucket would spread estimates across the
        # bucket; the clamp pins them to the single observed value.
        assert hist.percentile(50.0) == pytest.approx(0.0015)
        assert hist.percentile(99.0) == pytest.approx(0.0015)

    def test_percentile_orders_correctly(self):
        hist = Histogram("h")
        for _ in range(95):
            hist.observe(0.001)
        for _ in range(5):
            hist.observe(1.0)
        p50, p99 = hist.percentile(50.0), hist.percentile(99.0)
        assert p50 < 0.01 < p99
        assert p99 <= 1.0

    def test_overflow_lands_in_inf_bucket(self):
        hist = Histogram("h", buckets=(0.1, 1.0))
        hist.observe(50.0)
        (sample,) = [s for s in hist.samples() if s[2] == ("le", "+Inf")]
        assert sample[3] == 1.0
        assert hist.percentile(99.0) == pytest.approx(50.0)

    def test_rejects_percentile_out_of_range(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.percentile(101.0)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 0.5))

    def test_label_validation(self):
        hist = Histogram("h", label_names=("algo",))
        with pytest.raises(ValueError):
            hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.observe(1.0, algo="GKG", extra="nope")

    def test_snapshot_shape(self):
        hist = Histogram("h", label_names=("algo",))
        hist.observe(0.002, algo="GKG")
        snap = hist.snapshot()
        assert snap["kind"] == "histogram"
        (series,) = snap["series"]
        assert series["labels"] == {"algo": "GKG"}
        assert series["count"] == 1
        assert series["p50"] is not None
        assert series["buckets"][-1]["count"] == 1

    def test_cumulative_bucket_samples(self):
        hist = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        bucket_counts = [s[3] for s in hist.samples() if s[0] == "_bucket"]
        assert bucket_counts == [1.0, 2.0, 3.0, 3.0]  # cumulative + +Inf
        (total,) = [s[3] for s in hist.samples() if s[0] == "_count"]
        assert total == 3.0

    def test_thread_safety_no_lost_updates(self):
        hist = Histogram("h")

        def hammer():
            for _ in range(500):
                hist.observe(0.01)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count() == 2000


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("c", label_names=("kind",))
        c.inc(kind="a")
        c.inc(2.5, kind="a")
        assert c.value(kind="a") == pytest.approx(3.5)
        assert c.value(kind="b") == 0.0

    def test_rejects_negative(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_samples(self):
        c = Counter("c", label_names=("kind",))
        c.inc(kind="x")
        ((suffix, labels, extra, value),) = list(c.samples())
        assert (suffix, labels, extra, value) == ("", {"kind": "x"}, None, 1.0)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10.0)
        g.inc(5.0)
        g.dec(2.0)
        assert g.value() == pytest.approx(13.0)

    def test_gauge_can_go_negative(self):
        g = Gauge("g")
        g.dec(4.0)
        assert g.value() == pytest.approx(-4.0)


class TestFiniteness:
    def test_snapshot_has_no_nan(self):
        hist = Histogram("h")
        hist.observe(0.5)
        snap = hist.snapshot()
        for series in snap["series"]:
            for key in ("sum", "min", "max", "p50", "p95", "p99"):
                value = series[key]
                assert value is None or math.isfinite(value)
