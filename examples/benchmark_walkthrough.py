"""Experiment-harness walkthrough: reproduce a paper figure interactively.

Shows the moving parts the benchmark suite wires together — synthetic
datasets (Table 1 substitutes), the §6.1 query generator, the timed
runner with the paper's success-rate censoring, and the per-figure entry
points.

Run with::

    python examples/benchmark_walkthrough.py
"""

import _bootstrap  # noqa: F401  (sys.path shim for fresh checkouts)

from repro.datasets import generate_queries, make_la_like, table1_stats
from repro.experiments import ExperimentRunner, fig7_vary_epsilon, summarize


def main() -> None:
    # 1. A scaled-down LA-like dataset (see DESIGN.md §3 for why synthetic).
    dataset = make_la_like(scale=0.05)
    (stats,) = table1_stats([dataset])
    print(
        f"dataset: {stats.name}, {stats.n_objects} objects, "
        f"{stats.unique_words} unique words, "
        f"{stats.words_per_object:.2f} words/object\n"
    )

    # 2. Queries per the paper's §6.1 recipe: diameter-bounded circles,
    #    frequency-weighted term sampling.
    queries = generate_queries(
        dataset, m=6, count=5, diameter_fraction=0.2, seed=1
    )
    print("query sample:", ", ".join(queries[0].keywords))

    # 3. Run four algorithms under a timeout; ratios use the exact optimum.
    runner = ExperimentRunner(dataset, epsilon=0.01)
    measurements = runner.run_suite(
        ["GKG", "SKECa+", "EXACT", "VirbR"], queries, timeout=30.0
    )
    print("\nper-algorithm summary (5 queries):")
    for s in summarize(measurements):
        ratio = f"{s.mean_ratio:.4f}" if s.mean_ratio is not None else "-"
        print(
            f"  {s.algorithm:7s} runtime {s.mean_runtime * 1e3:8.2f} ms   "
            f"ratio {ratio}   success {s.success_rate:.0%}"
        )

    # 4. Or regenerate a full paper figure in one call.
    print("\nregenerating Figure 7 (epsilon study), tiny scale:")
    for figure in fig7_vary_epsilon(scale=0.03, queries_per_set=3):
        print()
        print(figure.render())


if __name__ == "__main__":
    main()
