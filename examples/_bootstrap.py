"""Make ``import repro`` work when running examples from a fresh checkout.

Each example starts with ``import _bootstrap``; Python puts the script's
own directory on ``sys.path``, so this module is always importable no
matter the working directory.  When ``repro`` is already installed (or
``PYTHONPATH`` points at ``src/``) this is a no-op.
"""

import sys
from pathlib import Path

try:  # pragma: no cover - trivially environment-dependent
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    _src = Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir():
        sys.path.insert(0, str(_src))
