"""Batch serving: answer many mCK queries through the cached QueryService.

Builds a small NY-like dataset, replays the same workload three times
through :class:`repro.serving.QueryService`, and prints the cache and
latency metrics that accumulate along the way.

Run with::

    python examples/batch_serving.py
"""

import _bootstrap  # noqa: F401  (sys.path shim for fresh checkouts)

from repro.datasets.queries import generate_queries
from repro.datasets.synthetic import make_ny_like
from repro.serving import QueryRequest, QueryService


def main() -> None:
    dataset = make_ny_like(scale=0.01, seed=7)
    workload = generate_queries(dataset, m=3, count=12, seed=7)
    requests = [QueryRequest(q.keywords, algorithm="SKECa+") for q in workload]
    print(
        f"dataset: {dataset.name} ({len(dataset)} objects), "
        f"workload: {len(requests)} queries x 3 rounds\n"
    )

    with QueryService(dataset, cache_size=256) as service:
        for round_no in range(1, 4):
            results = service.query_many(requests)
            hits = sum(r.stats.cache_hit for r in results)
            ok = sum(r.ok for r in results)
            mean_ms = (
                sum(r.stats.total_seconds for r in results) / len(results) * 1e3
            )
            print(
                f"round {round_no}: {ok}/{len(results)} answered, "
                f"{hits} cache hits, mean {mean_ms:.2f} ms/query"
            )

        # One EXACT request rides along to show per-request knobs.
        exact = service.query(requests[0].keywords, algorithm="EXACT")
        print(
            f"\nEXACT check on the first query: diameter "
            f"{exact.group.diameter:.2f} vs served "
            f"{service.query(requests[0].keywords).group.diameter:.2f}"
        )

        metrics = service.metrics_dict()

    cache = metrics["cache"]
    print(
        f"\ncache: {cache['hits']} hits / {cache['misses']} misses "
        f"({cache['size']} entries)"
    )
    for name, agg in sorted(metrics["algorithms"].items()):
        lat = agg["latency_seconds"]
        print(
            f"{name:7s} executed={agg['executed']:3d} "
            f"cache_hits={agg['cache_hits']:3d} "
            f"p50={lat['p50'] * 1e3:7.2f} ms  p95={lat['p95'] * 1e3:7.2f} ms"
        )
    scans = metrics["algorithms"]["SKECa+"]["counters"].get("circle_scans", 0)
    print(f"\nSKECa+ ran {scans:.0f} circleScan sweeps across the workload.")


if __name__ == "__main__":
    main()
