"""Render an mCK answer as an SVG map.

Builds a synthetic city, answers one query, and writes ``mck_result.svg``
next to this script: grey dots are POIs, blue dots hold a query keyword,
red dots are the chosen group inside its minimum covering circle — the
picture of the paper's Figure 1.

Run with::

    python examples/visualize_query.py
"""

from pathlib import Path

import _bootstrap  # noqa: F401  (sys.path shim for fresh checkouts)

from repro import MCKEngine
from repro.datasets import generate_queries, make_ny_like
from repro.viz import render_result


def main() -> None:
    dataset = make_ny_like(scale=0.05)
    engine = MCKEngine(dataset)
    (query,) = generate_queries(dataset, m=5, count=1, seed=8)

    group = engine.query(query.keywords, algorithm="EXACT")
    svg = render_result(dataset, group, query_keywords=query.keywords)

    out = Path.cwd() / "mck_result.svg"
    out.write_text(svg, encoding="utf-8")

    print(f"query     : {', '.join(query.keywords)}")
    print(f"group     : {len(group)} objects, diameter {group.diameter:.0f} m")
    print(f"rendered  : {out} ({len(svg)} bytes)")
    print("Open it in any browser; hover a dot for its keywords.")


if __name__ == "__main__":
    main()
