"""NP-hardness in action: solving 3-SAT with an mCK engine (Theorem 1).

The paper proves mCK NP-hard by reducing 3-SAT to it (Appendix A).  This
example runs the reduction in the forward direction — encoding a formula
as points on a circle, answering one mCK query, and reading a satisfying
assignment off the returned group — and cross-checks the verdict against
a DPLL solver.

Run with::

    python examples/np_hardness_demo.py
"""

import _bootstrap  # noqa: F401  (sys.path shim for fresh checkouts)

from repro.hardness import (
    decide_3sat_via_mck,
    dpll_satisfiable,
    random_3sat,
    reduce_3sat_to_mck,
)


def main() -> None:
    formula = random_3sat(n_variables=6, n_clauses=14, seed=2026)
    print(f"3-SAT instance: {formula.n_variables} variables, "
          f"{formula.n_clauses} clauses")
    for i, clause in enumerate(formula.clauses[:4], start=1):
        lits = " v ".join(f"x{l}" if l > 0 else f"~x{-l}" for l in clause)
        print(f"  C{i}: ({lits})")
    print("  ...")

    reduction = reduce_3sat_to_mck(formula)
    print(
        f"\nreduction: {len(reduction.dataset)} points on a circle, "
        f"query of {len(reduction.query_keywords)} keywords, "
        f"decision threshold d = {reduction.threshold:.4f} "
        f"(antipodal distance d' = {reduction.antipodal_distance:.4f})"
    )

    sat_mck, model = decide_3sat_via_mck(formula)
    sat_dpll, _ = dpll_satisfiable(formula)

    print(f"\nmCK verdict : {'SATISFIABLE' if sat_mck else 'UNSATISFIABLE'}")
    print(f"DPLL verdict: {'SATISFIABLE' if sat_dpll else 'UNSATISFIABLE'}")
    assert sat_mck == sat_dpll, "the reduction must agree with DPLL"

    if sat_mck:
        assignment = " ".join(
            f"x{v}={'T' if val else 'F'}" for v, val in sorted(model.items())
        )
        print(f"assignment  : {assignment}")
        assert formula.evaluate(model)
        print("\nThe group returned by EXACT picked one point per variable "
              "pair (diameter <= d), which is exactly a satisfying assignment.")
    else:
        print("\nEvery feasible group needs both points of some variable "
              "pair (diameter d' > d): no assignment exists.")


if __name__ == "__main__":
    main()
