"""Trip planning — the paper's Figure-1 Kyoto scenario at city scale.

A tourist wants an area where a shrine, a shop, a restaurant and a hotel
are all within walking distance of one another.  That is exactly an mCK
query: the returned group's diameter is the worst walk between any two of
the chosen places.

The example runs the query over a synthetic city and compares the fast
approximations with the exact answer, printing the walking-distance
guarantee each algorithm provides.

Run with::

    python examples/trip_planning.py
"""

import random

import _bootstrap  # noqa: F401  (sys.path shim for fresh checkouts)

from repro import Dataset, MCKEngine

WISH_LIST = ["shrine", "shop", "restaurant", "hotel"]
CITY_EXTENT = 8_000.0  # metres


def build_city(seed: int = 42) -> Dataset:
    """A city of typed POIs with a few naturally walkable quarters."""
    rng = random.Random(seed)
    kinds = WISH_LIST + ["cafe", "museum", "office", "garden"]
    records = []

    # Dense quarters: POIs of all kinds packed into ~400 m.
    quarters = [(rng.uniform(500, CITY_EXTENT - 500),
                 rng.uniform(500, CITY_EXTENT - 500)) for _ in range(6)]
    for qx, qy in quarters:
        for _ in range(rng.randint(8, 16)):
            records.append(
                (
                    qx + rng.gauss(0, 200),
                    qy + rng.gauss(0, 200),
                    [rng.choice(kinds)],
                )
            )

    # Scattered single POIs.
    for _ in range(300):
        records.append(
            (
                rng.uniform(0, CITY_EXTENT),
                rng.uniform(0, CITY_EXTENT),
                [rng.choice(kinds)],
            )
        )
    return Dataset.from_records(records, name="kyoto-like")


def main() -> None:
    dataset = build_city()
    engine = MCKEngine(dataset)

    print(f"wish list: {WISH_LIST}")
    print(f"city     : {len(dataset)} POIs\n")

    results = {}
    for algorithm in ("GKG", "SKECa+", "EXACT"):
        group = engine.query(WISH_LIST, algorithm=algorithm)
        results[algorithm] = group
        print(
            f"{algorithm:7s} worst walk {group.diameter:6.0f} m   "
            f"({group.elapsed_seconds * 1e3:6.2f} ms)"
        )

    best = results["EXACT"]
    print("\nrecommended places:")
    for obj in best.objects(dataset):
        print(f"  ({obj.x:6.0f}, {obj.y:6.0f})  {', '.join(sorted(obj.keywords))}")

    ratio = results["SKECa+"].diameter / max(best.diameter, 1e-9)
    print(
        f"\nSKECa+ answered {results['SKECa+'].elapsed_seconds * 1e3:.1f} ms "
        f"with a walk only {ratio:.3f}x the optimum — the (2/sqrt(3) + eps) "
        "guarantee of Theorem 6 in action."
    )


if __name__ == "__main__":
    main()
