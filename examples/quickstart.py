"""Quickstart: build a dataset, run every mCK algorithm, compare answers.

Run with::

    python examples/quickstart.py
"""

import _bootstrap  # noqa: F401  (sys.path shim for fresh checkouts)

from repro import Dataset, MCKEngine

# A handful of geo-textual objects: (x, y, keywords).  Coordinates are in
# metres (any planar frame works; real lat/lon data should be converted
# with repro.datasets.load_latlon_records first).
RECORDS = [
    (100.0, 100.0, ["hotel"]),
    (130.0, 110.0, ["restaurant", "bar"]),
    (120.0, 140.0, ["shop"]),
    (150.0, 135.0, ["shrine"]),
    (900.0, 900.0, ["hotel", "spa"]),
    (950.0, 910.0, ["restaurant"]),
    (910.0, 960.0, ["shop"]),
    (500.0, 100.0, ["shrine", "museum"]),
    (110.0, 820.0, ["bar"]),
    (400.0, 400.0, ["museum"]),
]


def main() -> None:
    dataset = Dataset.from_records(RECORDS, name="quickstart")
    engine = MCKEngine(dataset)

    query = ["hotel", "restaurant", "shop", "shrine"]
    print(f"mCK query: {query}\n")

    for algorithm in ("GKG", "SKEC", "SKECa", "SKECa+", "EXACT"):
        group = engine.query(query, algorithm=algorithm)
        members = ", ".join(
            f"#{o.oid}({'/'.join(sorted(o.keywords))})"
            for o in group.objects(dataset)
        )
        print(
            f"{algorithm:7s} diameter={group.diameter:8.2f} "
            f"time={group.elapsed_seconds * 1e3:7.2f} ms  members: {members}"
        )

    exact = engine.query(query, algorithm="EXACT")
    print(
        f"\nThe optimal group has diameter {exact.diameter:.2f}; every "
        "approximation above is within its proven ratio "
        "(2 for GKG, 2/sqrt(3)+eps for the SKEC family)."
    )


if __name__ == "__main__":
    main()
