"""Locating a photo from its tags — the paper's §1 motivating application.

A photo is tagged with a handful of words but carries no GPS data.
Issuing an mCK query with the tags over a geo-textual POI database finds
the tightest group of places that jointly mention all tags; the area of
that group is the likely shooting location (Zhang et al. [21, 22]).

This example builds a synthetic city, plants a distinctive "neighbourhood"
whose POIs carry the photo's tags close together, and shows that the mCK
answer pinpoints it even though each individual tag also appears all over
the city.

Run with::

    python examples/location_detection.py
"""

import random

import _bootstrap  # noqa: F401  (sys.path shim for fresh checkouts)

from repro import Dataset, MCKEngine
from repro.geometry.mcc import minimum_covering_circle

PHOTO_TAGS = ["lighthouse", "fishmarket", "ferry"]

CITY_EXTENT = 10_000.0  # metres
NEIGHBOURHOOD = (7_600.0, 2_400.0)  # where the photo was actually taken


def build_city(seed: int = 7) -> Dataset:
    rng = random.Random(seed)
    records = []

    # Background POIs: each photo tag also appears scattered city-wide,
    # so no single tag gives the location away.
    generic = ["cafe", "park", "station", "school", "office"]
    for _ in range(400):
        x, y = rng.uniform(0, CITY_EXTENT), rng.uniform(0, CITY_EXTENT)
        tags = [rng.choice(generic)]
        if rng.random() < 0.10:
            tags.append(rng.choice(PHOTO_TAGS))
        records.append((x, y, tags))

    # The harbour neighbourhood: all three tags within ~150 m.
    nx, ny = NEIGHBOURHOOD
    records.append((nx, ny, ["lighthouse", "viewpoint"]))
    records.append((nx + 120, ny + 40, ["fishmarket"]))
    records.append((nx + 60, ny + 130, ["ferry", "pier"]))
    return Dataset.from_records(records, name="harbour-city")


def main() -> None:
    dataset = build_city()
    engine = MCKEngine(dataset)

    print(f"photo tags: {PHOTO_TAGS}")
    print(f"database  : {len(dataset)} POIs over {CITY_EXTENT / 1000:.0f} km\n")

    group = engine.query(PHOTO_TAGS, algorithm="EXACT")
    circle = minimum_covering_circle(
        dataset.location_of(oid) for oid in group.object_ids
    )

    print(f"detected area : centre ({circle.cx:.0f}, {circle.cy:.0f}) m")
    print(f"area radius   : {circle.r:.0f} m")
    print(f"group diameter: {group.diameter:.0f} m")
    print(f"true location : {NEIGHBOURHOOD}")
    err = ((circle.cx - NEIGHBOURHOOD[0]) ** 2 + (circle.cy - NEIGHBOURHOOD[1]) ** 2) ** 0.5
    print(f"error         : {err:.0f} m")

    print("\nmatched POIs:")
    for obj in group.objects(dataset):
        print(f"  ({obj.x:7.0f}, {obj.y:7.0f})  {', '.join(sorted(obj.keywords))}")

    assert err < 500, "detection should land in the harbour neighbourhood"
    print("\nThe tight tag cluster wins over the scattered decoys.")


if __name__ == "__main__":
    main()
