"""mCK on a road network: walking distance beats straight-line distance.

Builds a small city with a river crossed by one bridge.  Two POI groups
cover the query: one hugs both river banks (close as the crow flies, far
on foot), the other sits entirely on one bank.  Euclidean mCK picks the
river-straddling group; network mCK correctly picks the walkable one.

Run with::

    python examples/road_network_mck.py
"""

import networkx as nx

import _bootstrap  # noqa: F401  (sys.path shim for fresh checkouts)

from repro import Dataset, MCKEngine
from repro.extensions import RoadNetwork, network_exact


def build_city():
    """A 9x9 street grid split by a river along x=4, bridged at y=8."""
    g = nx.Graph()
    for x in range(9):
        for y in range(9):
            g.add_node((x, y), pos=(float(x * 100), float(y * 100)))
    for x in range(9):
        for y in range(9):
            if x < 8 and not (x == 3 and y != 8):  # river: no x=3->4 edges
                g.add_edge((x, y), (x + 1, y))
            if y < 8:
                g.add_edge((x, y), (x, y + 1))

    records = [
        # Group A: straddles the river at y=0 (Euclidean diameter ~200 m,
        # but the only bridge is 800 m north).
        (300.0, 0.0, ["cafe"]),
        (500.0, 0.0, ["museum"]),
        # Group B: same bank, a bit wider apart (Euclidean diameter 300 m).
        (600.0, 400.0, ["cafe"]),
        (800.0, 500.0, ["museum"]),
    ]
    return g, Dataset.from_records(records, name="river-city")


def main() -> None:
    graph, dataset = build_city()
    query = ["cafe", "museum"]

    euclid = MCKEngine(dataset).query(query, algorithm="EXACT")
    print("Euclidean mCK :", euclid.object_ids, f"diameter {euclid.diameter:.0f} m")

    network = RoadNetwork(graph, dataset)
    walk = network_exact(network, query)
    print("Network mCK   :", walk.object_ids, f"walk {walk.diameter:.0f} m")

    crow_pair_walk = network.group_diameter(list(euclid.object_ids))
    print(
        f"\nThe straight-line winner {euclid.object_ids} needs a "
        f"{crow_pair_walk:.0f} m walk over the bridge;\n"
        f"the network answer {walk.object_ids} is reachable in "
        f"{walk.diameter:.0f} m on foot."
    )
    assert walk.object_ids != euclid.object_ids
    assert walk.diameter < crow_pair_walk


if __name__ == "__main__":
    main()
