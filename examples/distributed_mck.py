"""Distributed mCK — the paper's §8 future work, simulated.

Splits a city across a grid of workers and answers mCK queries with the
two-round protocol of ``repro.distributed``: a cheap local-bound round
(GKG per partition) fixes the halo width, then every worker solves EXACT
on its core+halo view and the coordinator keeps the global minimum.  The
result is provably identical to the centralized answer; the interesting
part is the accounting — replication, messages, and the parallel
makespan vs the centralized runtime.

Run with::

    python examples/distributed_mck.py
"""

import time

import _bootstrap  # noqa: F401  (sys.path shim for fresh checkouts)

from repro import MCKEngine
from repro.datasets import generate_queries, make_la_like
from repro.distributed import DistributedMCKEngine


def main() -> None:
    dataset = make_la_like(scale=0.08)
    queries = generate_queries(dataset, m=4, count=4, seed=11)
    print(f"dataset: {len(dataset)} objects\n")

    central = MCKEngine(dataset)
    references = {}
    total_central = 0.0
    for query in queries:
        started = time.perf_counter()
        references[query.keywords] = central.query(
            query.keywords, algorithm="EXACT"
        )
        total_central += time.perf_counter() - started
    print(f"centralized EXACT: {total_central * 1e3:7.1f} ms for {len(queries)} queries\n")

    for n_workers in (1, 4, 16):
        distributed = DistributedMCKEngine(dataset, n_workers=n_workers)
        total_makespan = 0.0
        total_bytes = 0
        for query in queries:
            reference = references[query.keywords]
            result = distributed.query(query.keywords)
            assert abs(result.group.diameter - reference.diameter) < 1e-9, (
                "distributed answer must equal the centralized optimum"
            )
            total_makespan += result.makespan_seconds
            total_bytes += result.bytes_shipped

        print(
            f"{distributed.n_workers:2d} worker(s): simulated makespan "
            f"{total_makespan * 1e3:7.1f} ms   shipped {total_bytes / 1024:7.1f} KiB"
        )

    print(
        "\nEvery distributed answer matched the centralized EXACT optimum; "
        "the halo width adapts per query to the GKG bound, which is what "
        "keeps the protocol exact."
    )


if __name__ == "__main__":
    main()
