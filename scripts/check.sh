#!/usr/bin/env bash
# Repo health check: byte-compile everything, then run the test suite.
# Usage: scripts/check.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

echo "== pytest =="
python -m pytest -q "$@"

echo "== trace smoke =="
python scripts/trace_smoke.py

echo "== fault-injection smoke =="
python scripts/fault_smoke.py

echo "== overload smoke =="
python scripts/overload_smoke.py

echo "== live smoke =="
python scripts/live_smoke.py
