#!/usr/bin/env bash
# Repo health check: byte-compile everything, then run the test suite.
# Usage: scripts/check.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

echo "== pytest =="
python -m pytest -q "$@"

echo "== trace smoke =="
python scripts/trace_smoke.py

echo "== fault-injection smoke =="
python scripts/fault_smoke.py

echo "== overload smoke =="
python scripts/overload_smoke.py

echo "== live smoke =="
python scripts/live_smoke.py

echo "== restart smoke =="
python scripts/restart_smoke.py

echo "== forensics smoke =="
python scripts/forensics_smoke.py

echo "== http smoke =="
python scripts/http_smoke.py

echo "== replication smoke =="
python scripts/replication_smoke.py

echo "== perf gate (smoke scale) =="
# Fast variant: parity + counter checks on the pinned seed without a
# latency baseline (host speed varies; CI gates against the committed
# small-scale baseline instead).
python benchmarks/perf_gate.py --scale smoke
