#!/usr/bin/env python
"""Observability smoke check: run ``mck trace`` on a tiny synthetic dataset
and validate both exporter outputs.

Checks, in order:

1. ``mck trace`` exits 0 and writes both files;
2. the Chrome trace is valid JSON whose ``traceEvents`` hold complete
   ("ph": "X") spans — including a ``serve.request`` root and at least
   one algorithm-level span — plus ``process_name``/``thread_name``
   metadata ("ph": "M") events naming the coordinator process;
3. the Prometheus text parses line-by-line: every sample line matches the
   exposition grammar (with or without a trailing ``# {...}`` OpenMetrics
   exemplar), ``mck_query_latency_seconds`` has cumulative histogram
   buckets and both ``cache="hit"`` and ``cache="miss"`` series.

Run from the repo root: ``python scripts/trace_smoke.py [algorithm]``.
"""

import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})? -?(?:[0-9.e+-]+|\+Inf|NaN)"
    r"(?: # \{[^}]*\} -?(?:[0-9.e+-]+|\+Inf|NaN))?$"
)


def fail(message):
    print(f"trace-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    algorithm = sys.argv[1] if len(sys.argv) > 1 else "SKECa+"
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.json"
        prom_path = Path(tmp) / "metrics.prom"
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "trace",
            "--preset",
            "NY",
            "--scale",
            "0.005",
            "--m",
            "3",
            "--queries",
            "3",
            "--repeat",
            "2",
            "--algorithm",
            algorithm,
            "--trace-out",
            str(trace_path),
            "--prom-out",
            str(prom_path),
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + (
            ":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(cmd, cwd=REPO, env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            fail(f"mck trace exited {proc.returncode}:\n{proc.stderr}")

        # -- Chrome trace ------------------------------------------------ #
        document = json.loads(trace_path.read_text())
        events = document.get("traceEvents")
        if not isinstance(events, list) or not events:
            fail("traceEvents missing or empty")
        spans = [e for e in events if e.get("ph") == "X"]
        metadata = [e for e in events if e.get("ph") == "M"]
        names = {e["name"] for e in spans}
        for event in spans:
            for field in ("name", "ph", "ts", "dur", "pid", "tid"):
                if field not in event:
                    fail(f"trace event missing {field!r}: {event}")
        for event in events:
            if event.get("ph") not in ("X", "M"):
                fail(f"unexpected phase {event.get('ph')!r}")
        if not metadata:
            fail("no metadata (ph=M) events naming processes/threads")
        meta_names = {e["name"] for e in metadata}
        if "process_name" not in meta_names:
            fail(f"no process_name metadata event in {sorted(meta_names)}")
        if not any(
            "coordinator" in e.get("args", {}).get("name", "")
            for e in metadata
            if e["name"] == "process_name"
        ):
            fail("process_name metadata does not label the coordinator")
        if "serve.request" not in names:
            fail(f"no serve.request span in {sorted(names)}")
        algo_spans = {
            "skecaplus.binary_step",
            "skeca.binary_step",
            "circlescan",
            "gkg.anchor_round",
            "gkg.run",
            "exact.search",
            "skec.pole",
        }
        if not (names & algo_spans):
            fail(f"no algorithm-level spans in {sorted(names)}")

        # -- Prometheus text --------------------------------------------- #
        prom = prom_path.read_text()
        hit = miss = buckets = 0
        for line in prom.splitlines():
            if not line or line.startswith("#"):
                continue
            if not SAMPLE_RE.match(line):
                fail(f"malformed exposition line: {line!r}")
            if line.startswith("mck_query_latency_seconds_bucket"):
                buckets += 1
                if 'cache="hit"' in line:
                    hit += 1
                if 'cache="miss"' in line:
                    miss += 1
        if buckets == 0:
            fail("no mck_query_latency_seconds buckets")
        if miss == 0:
            fail("no cache=miss latency series")
        if hit == 0:
            fail("no cache=hit latency series (repeat>=2 should produce hits)")

    print(
        f"trace-smoke: OK ({len(spans)} spans + {len(metadata)} metadata "
        f"events, {len(names)} span names, {buckets} latency buckets, "
        f"hit/miss series present)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
