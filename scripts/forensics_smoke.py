#!/usr/bin/env python
"""Tail-latency forensics smoke check: flight recorder, EXPLAIN, SLO,
profiler — end to end under injected faults.

Scenarios (deterministic where faults are involved — they trigger by
call count, never wall clock):

1. **Mixed workload with faults.** A clock-skew fault degrades part of an
   EXACT workload while an overloaded admission queue sheds requests.
   Every degraded and every rejected query must have a retained flight
   trace AND a renderable EXPLAIN (rejections render from the report the
   service would build for them); the recorder's memory stays within its
   configured bounds.
2. **SLO + exemplars.** The same run's SLO tracker exports burn-rate and
   error-budget gauges to Prometheus, and the latency histogram's
   exemplar trace ids resolve to retained flight traces.
3. **EXPLAIN everywhere.** All five algorithms produce a complete text
   report on a sealed engine, and the live engine's report carries the
   snapshot epoch.
4. **Profiler overhead.** The workload timed bare vs. under a 25 ms
   sampling profiler differs by < 5% (min-of-repeats on both sides).

Run from the repo root: ``python scripts/forensics_smoke.py``.
"""

import re
import sys
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.datasets.synthetic import make_ny_like  # noqa: E402
from repro.exceptions import QueryRejected  # noqa: E402
from repro.observability.explain import (  # noqa: E402
    build_explain,
    render_explain,
)
from repro.observability.flight import FlightRecorder  # noqa: E402
from repro.observability.profiler import StackProfiler  # noqa: E402
from repro.observability.slo import SLOTracker, default_objectives  # noqa: E402
from repro.observability.tracer import Tracer  # noqa: E402
from repro.serving import MetricsRegistry, QueryService  # noqa: E402
from repro.testing import faults  # noqa: E402


def fail(message):
    print(f"forensics-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition, message):
    if not condition:
        fail(message)


def main():
    dataset = make_ny_like(scale=0.008, seed=5)
    from repro.datasets.queries import generate_queries

    workload = generate_queries(dataset, m=3, count=8, seed=5)
    queries = [list(q.keywords) for q in workload]

    # ------------------------------------------------------------------ #
    # 1. Mixed workload with injected faults + overload shedding.
    # ------------------------------------------------------------------ #
    tracer = Tracer()
    flight = FlightRecorder(max_traces=64)
    slo = SLOTracker(default_objectives(latency_target=0.25))
    registry = MetricsRegistry()
    degraded_results = []
    rejected_errors = []
    ok_results = []
    faults.arm_spec("clock-skew:after=2,skew=1000")
    try:
        with QueryService(
            dataset,
            metrics=registry,
            tracer=tracer,
            flight=flight,
            slo=slo,
            max_workers=1,
            admission_capacity=2,
        ) as service:
            lock = threading.Lock()

            def run_one(kws):
                try:
                    result = service.query(
                        kws, algorithm="EXACT", timeout=5.0
                    )
                except QueryRejected as exc:
                    with lock:
                        rejected_errors.append(exc)
                    return
                with lock:
                    if result.degraded:
                        degraded_results.append(result)
                    elif result.ok:
                        ok_results.append(result)

            threads = [
                threading.Thread(target=run_one, args=(kws,))
                for kws in queries * 3
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            prom = registry.to_prometheus(exemplars=True)
    finally:
        faults.reset()

    check(degraded_results, "fault injection produced no degraded queries")
    check(rejected_errors, "overload produced no rejections")
    print(
        f"forensics-smoke: workload ok={len(ok_results)} "
        f"degraded={len(degraded_results)} rejected={len(rejected_errors)}"
    )

    for result in degraded_results:
        trace_id = result.stats.trace_id
        check(trace_id, "degraded result carries no trace id")
        retained = flight.get(trace_id)
        check(retained is not None, f"degraded trace {trace_id} not retained")
        check(
            "degraded" in retained.reasons or "fault" in retained.reasons,
            f"degraded trace retained for wrong reasons: {retained.reasons}",
        )
        report = build_explain(
            keywords=result.request.keywords,
            algorithm=result.stats.algorithm,
            epsilon=result.stats.epsilon,
            spans=retained.spans,
            counters=result.stats.counters,
            status="degraded",
            quality=result.stats.quality,
            trace_id=trace_id,
        )
        text = render_explain(report)
        check("EXPLAIN" in text and trace_id in text, "degraded EXPLAIN broken")

    for exc in rejected_errors:
        trace_id = getattr(exc, "trace_id", "")
        check(trace_id, "rejection carries no trace id")
        retained = flight.get(trace_id)
        check(retained is not None, f"rejected trace {trace_id} not retained")
        check(retained.outcome.rejected, "rejected trace not flagged rejected")
        report = build_explain(
            keywords=(),
            algorithm="EXACT",
            epsilon=0.01,
            spans=retained.spans,
            status="rejected",
            error=str(exc),
            trace_id=trace_id,
        )
        check(
            "rejected" in render_explain(report),
            "rejected EXPLAIN not renderable",
        )

    stats = flight.stats()
    check(
        stats["retained"] <= flight.max_traces,
        f"recorder exceeded its ring bound: {stats}",
    )
    check(
        stats["pending"] <= flight.max_pending,
        f"recorder leaked pending traces: {stats}",
    )
    print(
        f"forensics-smoke: flight retained={stats['retained']} "
        f"by_reason={ {k: v for k, v in stats['by_reason'].items() if v} }"
    )

    # ------------------------------------------------------------------ #
    # 2. SLO gauges + exemplar resolvability.
    # ------------------------------------------------------------------ #
    check("mck_slo_burn_rate" in prom, "SLO burn-rate gauge missing")
    check(
        "mck_slo_error_budget_remaining" in prom,
        "SLO error-budget gauge missing",
    )
    d = slo.as_dict()
    check(
        d["availability"]["events"]["bad"] >= len(rejected_errors),
        "SLO tracker missed rejected events",
    )
    exemplar_ids = set(re.findall(r'trace_id="([0-9a-f]+)"', prom))
    check(exemplar_ids, "no exemplars in Prometheus exposition")
    resolvable = [t for t in exemplar_ids if flight.get(t) is not None]
    check(
        resolvable,
        "no exemplar trace id resolves to a retained flight trace",
    )
    print(
        f"forensics-smoke: exemplars={len(exemplar_ids)} "
        f"resolvable={len(resolvable)}"
    )

    # ------------------------------------------------------------------ #
    # 3. EXPLAIN for every algorithm, sealed and live.
    # ------------------------------------------------------------------ #
    kws = queries[0]
    with QueryService(dataset, metrics=MetricsRegistry()) as service:
        for algorithm in ("GKG", "SKEC", "SKECa", "SKECa+", "EXACT"):
            result = service.query(kws, algorithm=algorithm, explain=True)
            check(
                result.explain is not None,
                f"{algorithm}: no EXPLAIN report",
            )
            check(
                result.explain["execution"]["kernel_mode"] != "unknown",
                f"{algorithm}: kernel mode unresolved",
            )
            text = render_explain(result.explain)
            check(
                "engine.algorithm" in text,
                f"{algorithm}: EXPLAIN tree incomplete",
            )
    from repro.live import LiveMCKEngine

    engine = LiveMCKEngine.from_dataset(dataset)
    try:
        with QueryService(engine, metrics=MetricsRegistry()) as service:
            result = service.query(kws, explain=True)
            check(
                result.explain["execution"]["engine"] == "live",
                "live EXPLAIN not marked live",
            )
            check(
                result.explain["execution"]["epoch"] is not None,
                "live EXPLAIN missing snapshot epoch",
            )
    finally:
        engine.close()
    print("forensics-smoke: EXPLAIN complete for all five algorithms + live")

    # ------------------------------------------------------------------ #
    # 4. Profiler overhead < 5% (min-of-repeats both sides).
    # ------------------------------------------------------------------ #
    def run_workload():
        # Long enough (tens of ms) that timer noise cannot dominate the
        # 5% comparison below.
        with QueryService(
            dataset, metrics=MetricsRegistry(), cache_size=0
        ) as service:
            for kws in queries * 5:
                service.query(kws, algorithm="SKECa+")

    def timed(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    run_workload()  # warm caches, imports, index builds
    bare = timed(run_workload)

    prof_stats = {}

    def profiled():
        with StackProfiler(interval=0.025) as prof:
            run_workload()
        prof_stats.update(prof.stats())

    with_profiler = timed(profiled)
    # The hard gate is the profiler's self-measured cost: time inside the
    # sampling loop over wall time profiled.  The wall-clock A/B is
    # printed for context only — at tens of milliseconds per run its
    # scheduler noise (±10%) swamps a 5% signal.
    fraction = prof_stats["overhead_fraction"]
    delta = (with_profiler - bare) / bare if bare > 0 else 0.0
    print(
        f"forensics-smoke: bare={bare * 1000:.1f}ms "
        f"profiled={with_profiler * 1000:.1f}ms (wall delta {delta:+.1%}) "
        f"sampling overhead={fraction:.2%} of wall"
    )
    check(
        fraction < 0.05,
        f"profiler sampling overhead {fraction:.2%} exceeds the 5% gate",
    )

    print("forensics-smoke: OK")


if __name__ == "__main__":
    main()
