#!/usr/bin/env python
"""Restart smoke check: checkpointed durability under real process kills.

Three scenarios, all deterministic given ``--seed``:

1. **Kill-anywhere.** For each checkpoint fault site
   (``segment_write`` / ``manifest_rename`` / ``wal_truncate``, order
   shuffled by the seed), a child process builds a checkpointed engine,
   applies a scripted mutation plan with one clean mid-way checkpoint,
   then dies with ``os._exit(137)`` — a real SIGKILL-style death, no
   cleanup — at the armed site during a second checkpoint.  The parent
   restarts from the directory and asserts the recovered state equals a
   clean brute-force rebuild of the full plan, and that recovery
   replayed *fewer* WAL records than the plan wrote (the checkpoint
   earned its keep).
2. **Instant-restart bound.** 20 000 objects are checkpointed, then a
   short tail of mutations lands; a cold reopen must replay exactly the
   tail — asserted through the ``mck_recovery_wal_records_replayed``
   gauge, along with ``mck_checkpoints_total`` and
   ``mck_recovery_seconds``.
3. **Degraded restart.** The newest segment is bit-flipped; the reopen
   falls back (counted in ``mck_segment_crc_failures_total``) and still
   recovers the identical state.

Run from the repo root: ``python scripts/restart_smoke.py [--seed N]``.
"""

import argparse
import os
import random
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.live import LiveMCKEngine  # noqa: E402
from repro.live.checkpoint import SEGMENT_DIR, read_manifest  # noqa: E402
from repro.serving.stats import MetricsRegistry  # noqa: E402
from repro.testing import faults  # noqa: E402

RECORDS = [
    (0.0, 0.0, ["shrine"]),
    (1.0, 1.0, ["shop"]),
    (2.0, 0.5, ["restaurant"]),
    (40.0, 40.0, ["shrine", "hotel"]),
    (41.0, 41.0, ["shop"]),
]

KEYWORDS = ["shrine", "shop", "restaurant", "hotel", "cafe", "bar"]

CRASH_SITES = [
    "live.checkpoint.segment_write",
    "live.checkpoint.manifest_rename",
    "live.checkpoint.wal_truncate",
]

KILL_EXIT = 137


def fail(message):
    print(f"restart-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def mutation_plan(seed, n=60):
    """Deterministic op list: the child and the parent derive the same one."""
    rng = random.Random(seed)
    ops = []
    live = list(range(len(RECORDS)))
    next_oid = len(RECORDS)
    for _ in range(n):
        if live and rng.random() < 0.25:
            ops.append(("delete", live.pop(rng.randrange(len(live)))))
        else:
            kw = rng.sample(KEYWORDS, rng.randint(1, 3))
            ops.append(("insert", rng.uniform(0, 50), rng.uniform(0, 50), kw))
            live.append(next_oid)
            next_oid += 1
    return ops


def apply_plan(engine, ops):
    for op in ops:
        if op[0] == "insert":
            engine.insert(op[1], op[2], op[3])
        else:
            engine.delete(op[1])


def plan_model(ops):
    model = {
        i: (float(x), float(y), frozenset(kw))
        for i, (x, y, kw) in enumerate(RECORDS)
    }
    next_oid = len(RECORDS)
    for op in ops:
        if op[0] == "insert":
            model[next_oid] = (op[1], op[2], frozenset(op[3]))
            next_oid += 1
        else:
            del model[op[1]]
    return model


def engine_state(engine):
    return {
        (oid, x, y, tuple(sorted(kw)))
        for oid, x, y, kw in engine.snapshot().view().records()
    }


def model_state(model):
    return {
        (oid, x, y, tuple(sorted(kw))) for oid, (x, y, kw) in model.items()
    }


# --------------------------------------------------------------------- #
# Child: build, mutate, die mid-checkpoint.
# --------------------------------------------------------------------- #


def run_child(data_dir, site, seed):
    def _kill():
        # A real process death: no exception unwinding, no close(), no
        # flush beyond what the protocol already made durable.
        os._exit(KILL_EXIT)

    engine = LiveMCKEngine.from_records(
        RECORDS,
        name="restart",
        data_dir=data_dir,
        wal_sync_every=1,
        compact_threshold=10**9,
        auto_compact=False,
    )
    ops = mutation_plan(seed)
    half = len(ops) // 2
    apply_plan(engine, ops[:half])
    if not engine.checkpoint():
        os._exit(3)  # the clean mid-way checkpoint must land
    apply_plan(engine, ops[half:])
    faults.arm(site, error=_kill)
    engine.checkpoint()  # dies inside the protocol
    os._exit(4)  # unreachable unless the fault never fired


# --------------------------------------------------------------------- #
# Parent scenarios.
# --------------------------------------------------------------------- #


def check_kill_anywhere(seed):
    sites = CRASH_SITES[:]
    random.Random(seed).shuffle(sites)
    ops = mutation_plan(seed)
    want = model_state(plan_model(ops))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    for site in sites:
        with tempfile.TemporaryDirectory() as data_dir:
            proc = subprocess.run(
                [
                    sys.executable,
                    __file__,
                    "--child",
                    data_dir,
                    site,
                    str(seed),
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=600,
            )
            if proc.returncode != KILL_EXIT:
                fail(
                    f"child for {site} exited {proc.returncode}, wanted "
                    f"{KILL_EXIT}: {proc.stderr[-800:]}"
                )
            metrics = MetricsRegistry()
            with LiveMCKEngine.open(
                data_dir, name="restart", metrics=metrics
            ) as engine:
                report = engine.recovery_report
                if not report.complete:
                    fail(f"recovery incomplete after {site}: {report.state}")
                got = engine_state(engine)
                if got != want:
                    fail(
                        f"state diverged after kill at {site}: "
                        f"missing={sorted(want - got)[:3]} "
                        f"extra={sorted(got - want)[:3]}"
                    )
                if report.wal_records_replayed >= len(ops):
                    fail(
                        f"{site}: replayed {report.wal_records_replayed} "
                        f"records, checkpoint saved nothing over {len(ops)}"
                    )
                gauge = metrics.recovery_replayed_gauge.value()
                if gauge != float(report.wal_records_replayed):
                    fail(f"replay gauge {gauge} != report {report}")
        print(
            f"  kill at {site.split('.')[-1]}: recovered "
            f"{len(want)} objects, replayed "
            f"{report.wal_records_replayed}/{len(ops)} WAL records"
        )


def check_instant_restart(seed):
    rng = random.Random(seed + 1)
    big = 20_000
    tail = 50
    with tempfile.TemporaryDirectory() as data_dir:
        with LiveMCKEngine.from_records(
            RECORDS,
            name="restart",
            data_dir=data_dir,
            wal_sync_every=0,
            compact_threshold=10**9,
            auto_compact=False,
        ) as engine:
            engine.apply_batch(
                inserts=[
                    (
                        rng.uniform(0, 1000),
                        rng.uniform(0, 1000),
                        rng.sample(KEYWORDS, 2),
                    )
                    for _ in range(big)
                ]
            )
            if not engine.checkpoint():
                fail("big checkpoint did not land")
            for _ in range(tail):
                engine.insert(
                    rng.uniform(0, 1000),
                    rng.uniform(0, 1000),
                    rng.sample(KEYWORDS, 2),
                )
            total = len(engine)
            want_answer = engine.query(
                ["shrine", "cafe"], algorithm="SKECa+"
            ).diameter
        metrics = MetricsRegistry()
        with LiveMCKEngine.open(
            data_dir, name="restart", metrics=metrics
        ) as engine:
            replayed = metrics.recovery_replayed_gauge.value()
            if replayed != float(tail):
                fail(
                    f"cold restart replayed {replayed} WAL records, "
                    f"expected exactly the {tail}-record tail"
                )
            if metrics.recovery_seconds_gauge.value() <= 0.0:
                fail("recovery seconds gauge never set")
            if metrics.segment_crc_failures_counter.value() != 0.0:
                fail("clean restart counted CRC failures")
            if len(engine) != total:
                fail(f"object count {len(engine)} != {total}")
            got = engine.query(["shrine", "cafe"], algorithm="SKECa+").diameter
            if got != want_answer:
                fail(f"answer drifted across restart: {got} != {want_answer}")
            if not engine.checkpoint():
                fail("post-restart checkpoint did not land")
            if metrics.checkpoints_counter.value(outcome="ok") < 1.0:
                fail("mck_checkpoints_total{outcome=ok} not counted")
    print(
        f"  instant restart: {big + len(RECORDS)} objects from segment, "
        f"replayed only the {tail}-record tail"
    )


def check_degraded_restart(seed):
    ops = mutation_plan(seed, n=30)
    want = model_state(plan_model(ops))
    with tempfile.TemporaryDirectory() as data_dir:
        with LiveMCKEngine.from_records(
            RECORDS,
            name="restart",
            data_dir=data_dir,
            wal_sync_every=1,
            compact_threshold=10**9,
            auto_compact=False,
        ) as engine:
            apply_plan(engine, ops)
            if not engine.checkpoint():
                fail("checkpoint did not land")
        manifest = read_manifest(os.path.join(data_dir, "MANIFEST"))
        newest = manifest["checkpoints"][-1]["segment"]
        seg_path = os.path.join(data_dir, SEGMENT_DIR, newest)
        blob = bytearray(open(seg_path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(seg_path, "wb").write(bytes(blob))

        metrics = MetricsRegistry()
        with LiveMCKEngine.open(
            data_dir, name="restart", metrics=metrics
        ) as engine:
            report = engine.recovery_report
            if not report.complete:
                fail(f"degraded recovery incomplete: {report.state}")
            if report.segment_failures < 1:
                fail("corrupt segment not counted")
            if metrics.segment_crc_failures_counter.value() < 1.0:
                fail("mck_segment_crc_failures_total not counted")
            if engine_state(engine) != want:
                fail("degraded recovery lost state")
    print(
        "  degraded restart: corrupt newest segment skipped "
        f"({report.segment_failures} failure), state intact via "
        f"{report.source}"
    )


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--child", nargs=3, metavar=("DIR", "SITE", "SEED"))
    args = parser.parse_args()
    if args.child:
        run_child(args.child[0], args.child[1], int(args.child[2]))
        return
    print("== restart smoke ==")
    check_kill_anywhere(args.seed)
    check_instant_restart(args.seed)
    check_degraded_restart(args.seed)
    print("restart-smoke: OK")


if __name__ == "__main__":
    main()
