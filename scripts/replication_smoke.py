#!/usr/bin/env python
"""Scale-out replication smoke: failover, tailing, stragglers, splits.

Four scenarios over the replication subsystem (``repro.replication``):

1. **Kill-a-primary failover parity.**  Two identical 4-shard routers
   run the same deterministic mutation plan; halfway through, the
   hottest shard's primary in one of them is abandoned (SIGKILL
   semantics: file handles closed, no final flush).  The next write to
   that shard must auto-promote the most caught-up replica, and at the
   end the crashed router must answer all five algorithms identically
   to the never-crashed twin — same live set, same groups, same
   diameters.

2. **Lag-bounded tailing.**  A replication group with two replicas
   takes bursts of writes; between syncs the lag watermark must equal
   exactly the unshipped record count, and after each sync it must
   return to zero (records and seconds).  The lag gauges must render
   with ``shard=``/``replica=`` labels.

3. **Straggler partial-merge.**  One shard is grown until an EXACT
   query over it takes real wall time, while the other shards hold
   tight feasible groups.  Under an aggressive deadline the router must
   keep whatever finished and tag the merged answer ``partial`` (with
   ``shards_missed`` accounted) instead of erroring — and the partial
   answer must still cover the query keywords.

4. **Hot-shard split.**  A skewed insert workload pushes one shard past
   ``split_threshold``; ``maybe_split`` must migrate half of it into a
   new group without losing objects or changing query answers, new
   inserts in the moved region must land on the new shard, and the
   split/lag metrics must render.

Usage: scripts/replication_smoke.py [--seed N]
"""

from __future__ import annotations

import argparse
import random
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.common import QUALITY_PARTIAL  # noqa: E402
from repro.exceptions import (  # noqa: E402
    AlgorithmTimeout,
    InfeasibleQueryError,
)
from repro.replication import (  # noqa: E402
    ReplicatedShardRouter,
    ReplicationGroup,
)
from repro.serving.stats import MetricsRegistry  # noqa: E402

VOCAB = ["a", "b", "c", "d", "e"]
EXTENT = 100.0
ALGORITHMS = ["GKG", "SKEC", "SKECa", "SKECa+", "EXACT"]
QUERY_SETS = [["a", "b"], ["a", "b", "c"], ["c", "d", "e"], ["nosuchword"]]


def fail(message):
    print(f"replication-smoke: FAIL: {message}")
    sys.exit(1)


def base_records(seed, n=60):
    rng = random.Random(seed)
    records = [
        (rng.uniform(0.0, EXTENT), rng.uniform(0.0, EXTENT), rng.sample(VOCAB, 2))
        for _ in range(n)
    ]
    # Pin the extent corners so the routing grid covers the full square.
    records.append((0.0, 0.0, ["a"]))
    records.append((EXTENT, EXTENT, ["b"]))
    return records


def mutation_plan(seed, n=60):
    """A deterministic list of insert/delete ops (delete targets are
    indices into the caller's live-oid list, so two routers replaying
    the same plan stay byte-identical)."""
    rng = random.Random(seed * 7 + 1)
    ops = []
    live = 62  # base_records() size; only used to bias the mix
    for _ in range(n):
        if live > 20 and rng.random() < 0.3:
            ops.append(("delete", rng.randrange(10**6)))
            live -= 1
        else:
            ops.append(
                (
                    "insert",
                    rng.uniform(0.0, EXTENT),
                    rng.uniform(0.0, EXTENT),
                    rng.sample(VOCAB, 2),
                )
            )
            live += 1
    return ops


def apply_plan(router, ops, live):
    for op in ops:
        if op[0] == "insert":
            live.append(router.insert(op[1], op[2], op[3]))
        elif live:
            router.delete(live.pop(op[1] % len(live)))


def router_state(router):
    out = set()
    for group in router.live_groups():
        for oid, x, y, kws in group.primary_engine.dataset.records():
            out.add((oid, round(x, 9), round(y, 9), tuple(sorted(kws))))
    return out


def point_in_shard(router, gid):
    """A probe point the router routes to shard ``gid``."""
    step = EXTENT / 20.0
    for i in range(21):
        for j in range(21):
            x, y = i * step, j * step
            if router.route(x, y) == gid:
                return x, y
    fail(f"no probe point routes to shard {gid}")


# --------------------------------------------------------------------- #
# 1. Kill-a-primary failover: parity vs a never-crashed twin.
# --------------------------------------------------------------------- #


def check_failover_parity(seed):
    records = base_records(seed)
    ops = mutation_plan(seed)
    half = len(ops) // 2
    crashed = ReplicatedShardRouter(
        records, n_shards=4, replicas_per_shard=1, name="smoke-crashed"
    )
    twin = ReplicatedShardRouter(
        records, n_shards=4, replicas_per_shard=1, name="smoke-twin"
    )
    try:
        live_a, live_b = [], []
        apply_plan(crashed, ops[:half], live_a)
        apply_plan(twin, ops[:half], live_b)
        crashed.sync_replicas()

        sizes = crashed.shard_sizes()
        hot = max(sizes, key=lambda g: (sizes[g], -g))
        crashed.groups[hot].crash_primary()

        # The rest of the workload rides straight through the failover.
        apply_plan(crashed, ops[half:], live_a)
        apply_plan(twin, ops[half:], live_b)
        # Guarantee at least one write reached the killed shard (the
        # plan almost surely did already; this makes it deterministic).
        px, py = point_in_shard(crashed, hot)
        crashed.insert(px, py, ["e"])
        twin.insert(px, py, ["e"])
        # Drain replication on both sides: reads are offloaded to
        # replicas within the lag bound, so parity is only meaningful
        # once both routers' replicas are caught up.
        crashed.sync_replicas()
        twin.sync_replicas()

        failovers = sum(g.failovers for g in crashed.live_groups())
        if failovers < 1:
            fail("killing a shard primary never triggered a failover")
        if crashed.groups[hot].primary_dead():
            fail("the killed shard's primary was never replaced")
        if live_a != live_b:
            fail("oid allocation diverged between crashed and twin routers")

        got, want = router_state(crashed), router_state(twin)
        if got != want:
            fail(
                "live set diverged after failover: "
                f"missing={sorted(want - got)[:3]} extra={sorted(got - want)[:3]}"
            )

        for algorithm in ALGORITHMS:
            for keywords in QUERY_SETS:
                try:
                    expect = twin.query(keywords, algorithm=algorithm)
                except (InfeasibleQueryError, AlgorithmTimeout) as err:
                    try:
                        crashed.query(keywords, algorithm=algorithm)
                    except type(err):
                        continue
                    fail(
                        f"{algorithm}/{keywords}: twin raised "
                        f"{type(err).__name__} but the crashed router answered"
                    )
                answer = crashed.query(keywords, algorithm=algorithm)
                if sorted(answer.object_ids) != sorted(expect.object_ids):
                    fail(
                        f"{algorithm}/{keywords}: groups diverged "
                        f"({sorted(answer.object_ids)} vs {sorted(expect.object_ids)})"
                    )
                if abs(answer.diameter - expect.diameter) > 1e-9:
                    fail(
                        f"{algorithm}/{keywords}: diameter diverged "
                        f"({answer.diameter} vs {expect.diameter})"
                    )
    finally:
        crashed.close()
        twin.close()


# --------------------------------------------------------------------- #
# 2. Lag-bounded tailing.
# --------------------------------------------------------------------- #


def check_lag_bounded_tailing(seed):
    registry = MetricsRegistry()
    seed_records = [
        (i, float(i), float(i), [VOCAB[i % len(VOCAB)]]) for i in range(4)
    ]
    with tempfile.TemporaryDirectory() as tmp:
        with ReplicationGroup(
            seed_records,
            dir=tmp,
            n_replicas=2,
            name="smoke-lag",
            metrics=registry,
        ) as group:
            rng = random.Random(seed + 1)
            for burst in range(3):
                burst_size = 5 + burst
                for _ in range(burst_size):
                    group.insert(
                        rng.uniform(0.0, EXTENT),
                        rng.uniform(0.0, EXTENT),
                        rng.sample(VOCAB, 2),
                    )
                # Unsynced: the watermark must equal the unshipped count.
                for rid, lag_records, _secs in group.lag_watermarks():
                    if lag_records != burst_size:
                        fail(
                            f"replica {rid} lag {lag_records} != "
                            f"unshipped burst {burst_size}"
                        )
                group.sync_replicas()
                for rid, lag_records, lag_seconds in group.lag_watermarks():
                    if lag_records != 0 or lag_seconds != 0.0:
                        fail(
                            f"replica {rid} still lags after sync: "
                            f"{lag_records} records / {lag_seconds}s"
                        )
            for replica in group.replicas:
                if len(replica.engine) != len(group):
                    fail("replica object count diverged from primary")
            rendered = registry.to_prometheus()
            for needle in (
                'mck_replication_lag_records{replica="0",shard="0"} 0',
                'mck_replication_lag_seconds{replica="1",shard="0"} 0',
                "mck_shard_objects",
            ):
                if needle not in rendered:
                    fail(f"lag metric missing from /metrics render: {needle}")


# --------------------------------------------------------------------- #
# 3. Straggler partial-merge under an aggressive deadline.
# --------------------------------------------------------------------- #


def _straggler_records(seed, n_per):
    rng = random.Random(seed + 2)
    records = [(0.0, 0.0, ["a"]), (EXTENT, EXTENT, ["b"])]
    # Three cool quadrants each hold a tight feasible pair for p/q/r.
    for bx, by in ((10.0, 10.0), (80.0, 10.0), (10.0, 80.0)):
        records.append((bx, by, ["p", "q"]))
        records.append((bx + 0.5, by + 0.5, ["r"]))
    # The hot quadrant gets one cluster per keyword, far apart: every
    # cross-cluster combination is a near-tie, so EXACT cannot prune
    # and has real combinatorial work to do there.  (A dense mixed
    # cluster would backfire: a tiny optimum prunes the search flat.)
    for keyword, (cx, cy) in zip("pqr", ((58.0, 58.0), (92.0, 58.0), (58.0, 92.0))):
        for _ in range(n_per):
            records.append(
                (
                    cx + rng.uniform(-3.0, 3.0),
                    cy + rng.uniform(-3.0, 3.0),
                    [keyword],
                )
            )
    return records


def check_straggler_partial_merge(seed):
    keywords = ["p", "q", "r"]
    for n_per in (20, 30, 45, 70):
        with ReplicatedShardRouter(
            _straggler_records(seed, n_per), n_shards=4, name="smoke-straggler"
        ) as router:
            started = time.perf_counter()
            full = router.query(keywords, algorithm="EXACT")
            elapsed = time.perf_counter() - started
            if full.stats["shards_answered"] != 4.0:
                fail("untimed straggler query did not hear from all shards")
            if elapsed < 0.1:
                continue  # hot shard not slow enough yet; grow it
            for divisor in (8, 16, 32, 64, 4):
                try:
                    answer = router.query(
                        keywords, algorithm="EXACT", timeout=elapsed / divisor
                    )
                except AlgorithmTimeout:
                    continue  # deadline too tight for every shard; relax
                if (
                    answer.quality == QUALITY_PARTIAL
                    and answer.stats["shards_missed"] >= 1
                    and answer.stats["degraded"] == 1.0
                ):
                    covered = set()
                    for oid in answer.object_ids:
                        covered |= set(router.dataset[oid].keywords)
                    if not set(keywords) <= covered:
                        fail("partial answer does not cover the query")
                    return
            fail(
                "no aggressive deadline produced a partial-tagged merge "
                f"(untimed EXACT took {elapsed:.3f}s)"
            )
    fail("could not grow a hot shard slow enough to straggle")


# --------------------------------------------------------------------- #
# 4. Hot-shard split under a skewed workload.
# --------------------------------------------------------------------- #


def check_hot_shard_split(seed):
    registry = MetricsRegistry()
    rng = random.Random(seed + 3)
    with ReplicatedShardRouter(
        base_records(seed, n=40),
        n_shards=4,
        replicas_per_shard=1,
        split_threshold=60,
        name="smoke-split",
        metrics=registry,
    ) as router:
        # A skewed burst: everything lands in one quadrant.
        for _ in range(90):
            router.insert(
                rng.uniform(55.0, 95.0),
                rng.uniform(55.0, 95.0),
                rng.sample(VOCAB, 2),
            )
        before = router.query(["a", "b"], algorithm="GKG")
        total = len(router)
        report = router.maybe_split()
        if report is None:
            fail("skewed workload never tripped the split threshold")
        if report.moved_objects <= 0:
            fail("split moved no objects")
        if len(router) != total:
            fail(
                f"split changed the object count ({len(router)} != {total})"
            )
        after = router.query(["a", "b"], algorithm="GKG")
        if after.object_ids != before.object_ids or abs(
            after.diameter - before.diameter
        ) > 1e-9:
            fail("query answer changed across the split")
        # New inserts in the migrated region must land on the new shard.
        mid_x = (report.move_region.x1 + report.move_region.x2) / 2
        mid_y = (report.move_region.y1 + report.move_region.y2) / 2
        oid = router.insert(mid_x, mid_y, ["e"])
        if router.shard_of(oid) != report.new_shard:
            fail("post-split insert in the moved region missed the new shard")
        router.sync_replicas()
        rendered = registry.to_prometheus()
        for needle in (
            'mck_shard_splits_total{outcome="ok"} 1',
            f'mck_shard_objects{{shard="{report.new_shard}"}}',
            "mck_replication_lag_records",
        ):
            if needle not in rendered:
                fail(f"split metric missing from /metrics render: {needle}")


# --------------------------------------------------------------------- #


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=20260808)
    args = parser.parse_args()

    scenarios = [
        ("kill-a-primary failover parity", check_failover_parity),
        ("lag-bounded tailing", check_lag_bounded_tailing),
        ("straggler partial-merge", check_straggler_partial_merge),
        ("hot-shard split", check_hot_shard_split),
    ]
    for name, scenario in scenarios:
        started = time.perf_counter()
        scenario(args.seed)
        print(
            f"replication-smoke: {name}: ok "
            f"({time.perf_counter() - started:.2f}s)"
        )
    print("replication-smoke: OK")


if __name__ == "__main__":
    main()
