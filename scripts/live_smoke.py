#!/usr/bin/env python
"""Live-updates smoke check: WAL, snapshots, compaction, invalidation.

Five scenarios, all deterministic:

1. **Snapshot isolation.** A reader pins an epoch, a writer deletes an
   object the pinned view contains: the pinned view still serves it, a
   fresh query does not, and the superseded epoch retires only after the
   pin is released.
2. **WAL crash recovery.** Mutations through a WAL, the file's tail torn
   mid-record: reopening replays exactly the valid prefix, the torn
   record is gone, and appends continue from the recovered sequence.
3. **Compaction under faults.** An armed ``compaction-fail`` fault
   aborts the fold; the store keeps answering correctly on the
   uncompacted snapshot, and the next (disarmed) attempt folds the delta
   into a fresh sealed base with identical answers.
4. **Keyword-scoped invalidation.** Through a live ``QueryService``: a
   mutation touching keyword A drops exactly the cached entries
   mentioning A (misses on re-ask), leaves disjoint entries hot, and the
   cache's conservation identity holds.
5. **CLI.** ``mck live-bench --wal ... --inject-fault compaction-fail``
   runs in a subprocess; its JSON dump carries WAL/epoch/compaction
   counters and the cache invalidation count.

Run from the repo root: ``python scripts/live_smoke.py``.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.exceptions import InfeasibleQueryError  # noqa: E402
from repro.live import LiveMCKEngine, WriteAheadLog  # noqa: E402
from repro.serving import QueryService  # noqa: E402
from repro.testing import faults  # noqa: E402


def fail(message):
    print(f"live-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


RECORDS = [
    (0.0, 0.0, ["shrine"]),
    (1.0, 1.0, ["shop"]),
    (2.0, 0.5, ["restaurant"]),
    (40.0, 40.0, ["shrine", "hotel"]),
    (41.0, 41.0, ["shop"]),
]


def check_snapshot_isolation():
    engine = LiveMCKEngine.from_records(RECORDS)
    guard = engine.pin()
    pinned = guard.snapshot
    engine.delete(1)  # the (1,1) shop
    assert pinned.view().get(1) is not None, "pinned view lost its object"
    group = engine.query(["shrine", "shop"], algorithm="EXACT")
    assert 1 not in group.object_ids, "fresh query saw a deleted object"
    assert engine._epochs.retired_epochs() == [], "pinned epoch retired early"
    guard.release()
    assert 0 in engine._epochs.retired_epochs(), "drained epoch not retired"
    engine.close()
    print("  snapshot isolation: pinned reads stable, retirement on drain")


def check_wal_recovery(tmpdir):
    path = os.path.join(tmpdir, "crash.wal")
    with LiveMCKEngine.from_records(RECORDS, wal_path=path) as engine:
        engine.insert(0.5, 0.5, ["cafe"])
        engine.insert(0.6, 0.6, ["cafe"])
        engine.delete(2)
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:  # tear the last record mid-body
        fh.truncate(size - 7)
    with LiveMCKEngine.from_records(RECORDS, wal_path=path) as engine:
        assert engine.wal.torn_reason is not None, "torn tail undetected"
        assert len(engine.wal.recovered) == 2, "valid prefix not replayed"
        view = engine.dataset
        assert view.get(5) is not None and view.get(6) is not None
        assert view.get(2) is not None, "torn delete partially applied"
        engine.insert(3.0, 3.0, ["bar"])  # appends continue cleanly
    with LiveMCKEngine.from_records(RECORDS, wal_path=path) as engine:
        assert len(engine.wal.recovered) == 3, "post-recovery append lost"
    print("  WAL recovery: torn tail truncated, valid prefix replayed")


def check_compaction_fault():
    engine = LiveMCKEngine.from_records(RECORDS, compact_threshold=4,
                                        auto_compact=False)
    for i in range(6):
        engine.insert(0.1 * i, 0.1 * i, ["cafe"])
    fault = faults.arm_spec("compaction-fail")
    try:
        assert engine.compact() is False, "compaction succeeded under fault"
    finally:
        faults.disarm(fault)
    assert engine.compactor.failures == 1
    before = sorted(engine.query(["shrine", "cafe"], algorithm="EXACT").object_ids)
    assert engine.compact() is True, "disarmed compaction did not run"
    assert engine.delta_size == 0, "delta survived compaction"
    after = sorted(engine.query(["shrine", "cafe"], algorithm="EXACT").object_ids)
    assert before == after, f"answers changed across compaction: {before} vs {after}"
    engine.close()
    print("  compaction: fault aborts cleanly, retry folds with equal answers")


def check_invalidation():
    engine = LiveMCKEngine.from_records(RECORDS)
    with QueryService(engine, max_workers=2) as service:
        r1 = service.query(["shrine", "shop"])
        r2 = service.query(["restaurant"])
        assert not r1.stats.cache_hit and not r2.stats.cache_hit
        assert service.query(["shrine", "shop"]).stats.cache_hit
        service.insert(0.2, 0.2, ["shop"])
        miss = service.query(["shrine", "shop"])
        assert not miss.stats.cache_hit, "stale cached answer served"
        assert service.query(["restaurant"]).stats.cache_hit, \
            "disjoint entry was invalidated"
        st = service.cache.stats()
        assert st["invalidations"] >= 1
        assert st["inserts"] == st["size"] + st["evictions"] \
            + st["expirations"] + st["invalidations"], f"conservation: {st}"
    engine.close()
    print("  invalidation: keyword-scoped, conservation counters balance")


def check_cli(tmpdir):
    out = os.path.join(tmpdir, "live-bench.json")
    wal = os.path.join(tmpdir, "bench.wal")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "live-bench",
         "--scale", "0.01", "--operations", "60", "--queries", "8",
         "--compact-threshold", "12", "--wal", wal,
         "--inject-fault", "compaction-fail:times=1",
         "--seed", "3", "--output", out],
        env=env, capture_output=True, text=True, timeout=600,
    )
    if proc.returncode != 0:
        fail(f"live-bench exited {proc.returncode}: {proc.stderr[-800:]}")
    dump = json.loads(Path(out).read_text())
    live = dump["live"]
    if not (live["wal_records"] and live["wal_records"] > 0):
        fail(f"no WAL records in dump: {live}")
    if live["epoch"] < 1:
        fail(f"no epochs published: {live}")
    if live["compaction_failures"] < 1:
        fail(f"injected compaction fault never fired: {live}")
    if dump["workload"]["failures"] != 0:
        fail(f"queries failed: {dump['workload']}")
    st = dump["cache"]
    if st["inserts"] != st["size"] + st["evictions"] + st["expirations"] \
            + st["invalidations"]:
        fail(f"CLI cache conservation broken: {st}")
    print("  CLI: live-bench JSON carries WAL/epoch/compaction/invalidation "
          "counters")


def main():
    print("== live smoke ==")
    check_snapshot_isolation()
    with tempfile.TemporaryDirectory() as tmpdir:
        check_wal_recovery(tmpdir)
    check_compaction_fault()
    check_invalidation()
    with tempfile.TemporaryDirectory() as tmpdir:
        check_cli(tmpdir)
    print("live-smoke: OK")


if __name__ == "__main__":
    main()
