#!/usr/bin/env python
"""Overload-protection smoke check: admission, shedding, adaptive limits.

Four scenarios over a single-worker service (deterministic queueing):

1. **Burst.** A 10x open-loop Poisson burst against a capacity-32
   admission queue: requests are shed (``QueryRejected``, never a hang),
   the accepted requests' execution p95 stays within 2x the unloaded p95,
   and the conservation counters balance at quiescence.
2. **Limiter.** An injected circleScan slowdown drags latency past the
   AIMD tolerance: the concurrency limit backs off multiplicatively, then
   recovers to near its pre-incident level once the fault is disarmed.
3. **Policy.** The same burst under ``deadline-aware`` vs
   ``reject-newest``: the deadline-aware policy sheds requests that could
   not have met their deadline anyway, so a strictly higher fraction of
   its *accepted* requests finish inside the deadline.
4. **CLI.** ``mck serve-bench --arrival-rate ... --admission-capacity
   ... --shed-policy ...`` runs open-loop in a subprocess; its JSON dump
   carries the rejection counts and conserved admission counters, and its
   ``--prom-out`` exposition carries every admission metric family.

Run from the repo root: ``python scripts/overload_smoke.py``.
"""

import json
import logging
import os
import random
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

# Thousands of intentional rejections would otherwise flood stderr with
# per-request warnings; the smoke asserts on counters, not log lines.
logging.getLogger("repro").setLevel(logging.ERROR)

from repro import Dataset  # noqa: E402
from repro.exceptions import QueryRejected  # noqa: E402
from repro.serving import MetricsRegistry, QueryService  # noqa: E402
from repro.testing import faults  # noqa: E402

QUERY = ["shrine", "shop", "restaurant", "hotel"]
VOCAB = [
    "shrine", "shop", "restaurant", "hotel", "cafe", "museum",
    "park", "bar", "gym", "pier", "temple", "market",
]


def fail(message):
    print(f"overload-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def make_dataset(seed: int = 7, n: int = 250) -> Dataset:
    """A dataset big enough that one query costs a few milliseconds."""
    rng = random.Random(seed)
    records = []
    for _ in range(n):
        kws = rng.sample(VOCAB, rng.randint(1, 3))
        records.append((rng.uniform(0, 100), rng.uniform(0, 100), kws))
    return Dataset.from_records(records, name="overload-smoke")


def percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[index]


def assert_conserved(snapshot):
    if snapshot["submitted"] != snapshot["accepted"] + snapshot["rejected"]:
        fail(f"conservation broken: submitted != accepted + rejected: {snapshot}")
    if snapshot["accepted"] != snapshot["completed"] + snapshot["failed"]:
        fail(f"conservation broken: accepted != completed + failed: {snapshot}")


def check_burst(dataset):
    with QueryService(
        dataset,
        max_workers=1,
        cache_size=0,
        admission_capacity=32,
        metrics=MetricsRegistry(),
    ) as service:
        unloaded = []
        for _ in range(20):
            result = service.query(QUERY, algorithm="SKECa+")
            if not result.ok:
                fail(f"unloaded query failed: {result.error}")
            unloaded.append(result.stats.total_seconds)
        unloaded_p95 = percentile(unloaded, 95)

        rate = 10.0 / max(unloaded_p95, 1e-4)  # 10x the service rate
        rng = random.Random(1)
        futures = []
        for _ in range(200):
            time.sleep(rng.expovariate(rate))
            try:
                futures.append(service.submit(QUERY, algorithm="SKECa+"))
            except QueryRejected:
                pass  # counted by the controller; the point is no hang
        loaded = []
        for future in futures:
            try:
                result = future.result(timeout=120)
            except QueryRejected:
                continue
            if result.ok:
                loaded.append(result.stats.total_seconds)
        snapshot = service.admission_dict()

    if snapshot["rejected"] == 0:
        fail("a 10x burst against capacity 32 shed nothing")
    if not loaded:
        fail("the burst completed no accepted queries")
    loaded_p95 = percentile(loaded, 95)
    bound = 2.0 * max(unloaded_p95, 1e-3)
    if loaded_p95 > bound:
        fail(
            f"accepted execution p95 {loaded_p95 * 1e3:.2f}ms exceeds "
            f"2x unloaded p95 {unloaded_p95 * 1e3:.2f}ms"
        )
    assert_conserved(snapshot)
    print(
        f"  burst: unloaded_p95={unloaded_p95 * 1e3:.2f}ms "
        f"accepted_p95={loaded_p95 * 1e3:.2f}ms "
        f"rejected={snapshot['rejected']}/{snapshot['submitted']}"
    )


def check_limiter_adaptation(dataset):
    with QueryService(
        dataset, max_workers=1, cache_size=0, metrics=MetricsRegistry()
    ) as service:
        for _ in range(10):
            service.query(QUERY, algorithm="SKECa+")
        pre_incident = service.limiter.limit

        with faults.injected("core.circlescan", delay=0.01, times=None):
            for _ in range(8):
                service.query(QUERY, algorithm="SKECa+")
        dipped = service.limiter.limit
        if dipped >= pre_incident:
            fail(
                f"limit did not back off under slowdown: "
                f"{pre_incident:.2f} -> {dipped:.2f}"
            )
        if service.limiter.decreases == 0:
            fail("slowdown triggered no multiplicative decreases")

        for _ in range(40):
            service.query(QUERY, algorithm="SKECa+")
        recovered = service.limiter.limit
    if recovered <= dipped:
        fail(f"limit never recovered: dipped {dipped:.2f}, now {recovered:.2f}")
    if recovered < 0.75 * pre_incident:
        fail(
            f"limit recovered only to {recovered:.2f} "
            f"(pre-incident {pre_incident:.2f})"
        )
    print(
        f"  limiter: pre={pre_incident:.2f} dipped={dipped:.2f} "
        f"recovered={recovered:.2f}"
    )


def _run_policy(dataset, policy):
    """Burst one policy; return (accepted, met_deadline, rejected)."""
    with QueryService(
        dataset,
        max_workers=1,
        cache_size=0,
        admission_capacity=40,
        shed_policy=policy,
        metrics=MetricsRegistry(),
    ) as service:
        warm = []
        for _ in range(15):
            result = service.query(QUERY, algorithm="SKECa+")
            warm.append(result.stats.total_seconds)
        # Prime the p95 histogram, then give each burst request ~10
        # service times of end-to-end budget.
        deadline = 10.0 * max(percentile(warm, 95), 1e-3)

        done_at = {}
        entries = []
        rejected = 0
        for _ in range(120):
            submitted_at = time.monotonic()
            try:
                future = service.submit(
                    QUERY, algorithm="SKECa+", timeout=deadline
                )
            except QueryRejected:
                rejected += 1
                continue
            future.add_done_callback(
                lambda f: done_at.setdefault(f, time.monotonic())
            )
            entries.append((submitted_at, future))

        accepted = met = 0
        for submitted_at, future in entries:
            try:
                result = future.result(timeout=120)
            except QueryRejected:
                rejected += 1
                continue
            if not result.ok:
                continue
            accepted += 1
            if done_at[future] - submitted_at <= deadline:
                met += 1
    return accepted, met, rejected


def check_deadline_aware_beats_reject_newest(dataset):
    newest_accepted, newest_met, _ = _run_policy(dataset, "reject-newest")
    aware_accepted, aware_met, aware_rejected = _run_policy(
        dataset, "deadline-aware"
    )
    if aware_accepted == 0:
        fail("deadline-aware accepted nothing")
    if aware_rejected == 0:
        fail("deadline-aware shed nothing under a 120-request burst")
    newest_frac = newest_met / newest_accepted if newest_accepted else 0.0
    aware_frac = aware_met / aware_accepted
    if aware_frac <= newest_frac:
        fail(
            f"deadline-aware met {aware_frac:.2%} of accepted deadlines, "
            f"reject-newest met {newest_frac:.2%} — no improvement"
        )
    print(
        f"  policy: deadline-aware met {aware_met}/{aware_accepted} "
        f"({aware_frac:.0%}), reject-newest met {newest_met}/"
        f"{newest_accepted} ({newest_frac:.0%})"
    )


def check_cli(tmp):
    json_path = os.path.join(tmp, "overload.json")
    prom_path = os.path.join(tmp, "overload.prom")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve-bench",
            "--scale", "0.01",
            "--queries", "30",
            "--repeat", "2",
            "--m", "3",
            "--workers", "1",
            "--cache-size", "0",
            "--algorithms", "SKECa+",
            "--arrival-rate", "5000",
            "--admission-capacity", "4",
            "--shed-policy", "reject-newest",
            "--seed", "3",
            "--output", json_path,
            "--prom-out", prom_path,
        ],
        env=env,
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=300,
    )
    if proc.returncode != 0:
        fail(f"serve-bench exited {proc.returncode}: {proc.stderr[-800:]}")
    dump = json.loads(Path(json_path).read_text())
    workload = dump["workload"]
    if workload["shed_policy"] != "reject-newest":
        fail("shed policy not recorded in the workload summary")
    if workload["admission_capacity"] != 4:
        fail("admission capacity not recorded in the workload summary")
    if workload["rejected"] < 1:
        fail("open-loop overload at capacity 4 rejected nothing")
    assert_conserved(dump["admission"])
    prom = Path(prom_path).read_text()
    for family in (
        "mck_admission_rejected_total",
        "mck_queue_depth",
        "mck_inflight",
        "mck_concurrency_limit",
    ):
        if family not in prom:
            fail(f"{family} missing from serve-bench --prom-out")
    print(
        f"  cli: rejected={workload['rejected']} of "
        f"{workload['requests_total']} prom={len(prom.splitlines())} lines"
    )


def main() -> int:
    dataset = make_dataset()
    print("overload-smoke: scenarios")
    check_burst(dataset)
    check_limiter_adaptation(dataset)
    check_deadline_aware_beats_reject_newest(dataset)
    with tempfile.TemporaryDirectory() as tmp:
        check_cli(tmp)
    print("overload-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
