"""Fill EXPERIMENTS.md's MEASURED_* placeholders from bench_output.txt.

Maintainer tool: after a full ``pytest benchmarks/ --benchmark-only -s``
run captured to bench_output.txt, re-run this script to refresh the
measured sections of EXPERIMENTS.md.

Usage: python scripts/fill_experiments.py [bench_output.txt] [EXPERIMENTS.md]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def extract_block(text: str, figure_id: str) -> str:
    """The rendered ASCII table for one figure id, verbatim."""
    pattern = re.compile(
        rf"^== {re.escape(figure_id)}.*?(?=^==|^\.|\Z)", re.M | re.S
    )
    match = pattern.search(text)
    if not match:
        return f"(block {figure_id} not found in bench output)"
    return match.group(0).rstrip()


def extract_table1_row(text: str, name: str) -> str:
    match = re.search(rf"^{re.escape(name)}\s+(\S+)\s+(\S+)\s+(\S+)\s+(\S+)", text, re.M)
    if not match:
        return "(not found)"
    objects, unique, total, wpo = match.groups()
    return f"{objects} objects / {unique} unique / {total} total ({wpo} w/obj)"


def extract_ablation(text: str) -> str:
    rows = []
    for key in ("test_exact_with_skeca_bound", "test_virbr_tree_enumeration",
                "test_bruteforce_unreduced"):
        match = re.search(rf"^{key}\s+([\d,.]+)", text, re.M)
        rows.append(f"{key}: min {match.group(1)} (units per bench table)"
                    if match else f"{key}: not found")
    return "; ".join(rows)


def main() -> int:
    bench_path = Path(sys.argv[1]) if len(sys.argv) > 1 else REPO / "bench_output.txt"
    exp_path = Path(sys.argv[2]) if len(sys.argv) > 2 else REPO / "EXPERIMENTS.md"
    bench = bench_path.read_text(encoding="utf-8")
    doc = exp_path.read_text(encoding="utf-8")

    replacements = {
        "MEASURED_T1_NY": extract_table1_row(bench, "NY-like"),
        "MEASURED_T1_LA": extract_table1_row(bench, "LA-like"),
        "MEASURED_T1_TW": extract_table1_row(bench, "TW-like"),
        "MEASURED_FIG7_RATIO": extract_block(bench, "Fig7b"),
        "MEASURED_FIG8_LA": (
            extract_block(bench, "Fig8-runtime-LA")
            + "\n\n"
            + extract_block(bench, "Fig8-ratio-LA")
        ),
        "MEASURED_FIG9": (
            extract_block(bench, "Fig9a") + "\n\n" + extract_block(bench, "Fig9b")
        ),
        "MEASURED_FIG10": (
            extract_block(bench, "Fig10-exact-runtime-LA")
            + "\n\n"
            + extract_block(bench, "Fig10-success-LA")
        ),
        "MEASURED_FIG11": (
            extract_block(bench, "Fig11a") + "\n\n" + extract_block(bench, "Fig11b")
        ),
        "MEASURED_FIG12": (
            extract_block(bench, "Fig12a") + "\n\n" + extract_block(bench, "Fig12d")
        ),
        "MEASURED_FIG13": (
            extract_block(bench, "Fig13a") + "\n\n" + extract_block(bench, "Fig13b")
        ),
        "MEASURED_ABLATION": extract_ablation(bench),
    }
    for placeholder, value in replacements.items():
        doc = doc.replace(placeholder, value)
    exp_path.write_text(doc, encoding="utf-8")
    missing = [p for p in replacements if p in doc]
    if missing:
        print(f"warning: placeholders still present: {missing}")
    print(f"EXPERIMENTS.md updated from {bench_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
