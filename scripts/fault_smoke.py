#!/usr/bin/env python
"""Fault-injection smoke check: graceful degradation end to end.

Six scenarios, each deterministic (faults trigger by call count, never by
wall clock):

1. **Degrade.** A skewed deadline clock expires an EXACT query mid-search;
   the service returns a feasible, quality-tagged degraded answer (no
   error) and ``mck_degraded_total`` appears in the Prometheus output.
2. **Strict.** The same fault under ``strict_timeouts=True`` fails the
   query with the timeout message — the paper's §6.2.3 semantics.
3. **Pool retry.** An injected pool rejection is retried; the query
   completes undegraded and ``mck_pool_retries_total`` counts 1.
4. **Breaker + fallback.** A persistently broken pool trips the circuit
   breaker; queries degrade to in-process SKECa+ answers and
   ``mck_circuit_open`` reads 1.
5. **Worker crash.** A distributed worker crashes once; the coordinator
   respawns it and the answer matches the healthy run.
6. **CLI.** ``mck serve-bench --inject-fault slow-scan --prom-out`` runs
   in a subprocess; its JSON reports degraded queries and its Prometheus
   file carries the degradation counter.

Run from the repo root: ``python scripts/fault_smoke.py``.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from concurrent.futures.process import BrokenProcessPool  # noqa: E402

from repro import Dataset  # noqa: E402
from repro.distributed.coordinator import DistributedMCKEngine  # noqa: E402
from repro.exceptions import WorkerCrashed  # noqa: E402
from repro.serving import MetricsRegistry, QueryService  # noqa: E402
from repro.testing import faults  # noqa: E402

QUERY = ["shrine", "shop", "restaurant", "hotel"]


def fail(message):
    print(f"fault-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def make_dataset() -> Dataset:
    records = [
        (10.0, 10.0, ["shrine"]),
        (11.0, 10.5, ["shop"]),
        (10.5, 11.0, ["restaurant"]),
        (11.2, 11.2, ["hotel"]),
        (50.0, 50.0, ["shrine"]),
        (52.0, 50.0, ["shop"]),
        (90.0, 10.0, ["restaurant"]),
        (10.0, 90.0, ["hotel"]),
        (60.0, 60.0, ["shop", "cafe"]),
        (0.0, 0.0, ["museum"]),
    ]
    return Dataset.from_records(records, name="smoke")


def check_degrade(dataset):
    with QueryService(dataset, metrics=MetricsRegistry()) as service:
        with faults.injected(
            "core.deadline.clock", skew=1e9, after=2, times=None
        ):
            result = service.query(QUERY, algorithm="EXACT", timeout=60.0)
        if not result.ok:
            fail(f"degraded query failed outright: {result.error}")
        if not result.degraded:
            fail("expired deadline did not mark the answer degraded")
        if not result.group.covers(dataset, QUERY):
            fail("degraded answer does not cover the query keywords")
        if not result.stats.quality:
            fail("degraded answer carries no quality tag")
        prom = service.metrics.to_prometheus()
        if "mck_degraded_total{" not in prom:
            fail("mck_degraded_total missing from Prometheus output")
    print(f"  degrade: quality={result.stats.quality} "
          f"diameter={result.group.diameter:.4f}")


def check_strict(dataset):
    with QueryService(
        dataset, metrics=MetricsRegistry(), strict_timeouts=True
    ) as service:
        with faults.injected(
            "core.deadline.clock", skew=1e9, after=2, times=None
        ):
            result = service.query(QUERY, algorithm="EXACT", timeout=60.0)
        if result.ok:
            fail("strict mode returned an answer on an expired deadline")
        if "exceeded time budget" not in (result.error or ""):
            fail(f"strict-mode error looks wrong: {result.error!r}")
    print(f"  strict: error={result.error!r}")


def check_pool_retry(dataset):
    with QueryService(
        dataset,
        metrics=MetricsRegistry(),
        use_processes_for_exact=True,
        process_workers=1,
        pool_retry_backoff=0.0,
    ) as service:
        with faults.injected(
            "serving.pool.submit", error=BrokenProcessPool, times=1
        ):
            result = service.query(QUERY, algorithm="EXACT", timeout=60.0)
        if not result.ok or result.degraded:
            fail("retried pool query should complete undegraded")
        retries = service.metrics.pool_retry_counter.value(algorithm="EXACT")
        if retries != 1.0:
            fail(f"expected 1 pool retry, counted {retries}")
    print(f"  pool-retry: retries={retries:g}")


def check_breaker_fallback(dataset):
    with QueryService(
        dataset,
        metrics=MetricsRegistry(),
        use_processes_for_exact=True,
        process_workers=1,
        pool_retries=1,
        pool_retry_backoff=0.0,
        breaker_threshold=2,
    ) as service:
        with faults.injected(
            "serving.pool.submit", error=BrokenProcessPool, times=None
        ):
            result = service.query(QUERY, algorithm="EXACT", timeout=60.0)
        if not result.ok or not result.degraded:
            fail("breaker fallback should serve a degraded answer")
        if result.group.stats.get("pool_fallback") != 1.0:
            fail("fallback answer not marked pool_fallback")
        if service.breaker.state != "open":
            fail(f"breaker should be open, is {service.breaker.state}")
        prom = service.metrics.to_prometheus()
        if "mck_circuit_open 1" not in prom:
            fail("mck_circuit_open gauge not 1 in Prometheus output")
        if "mck_pool_fallbacks_total{" not in prom:
            fail("mck_pool_fallbacks_total missing from Prometheus output")
    print(f"  breaker: state={service.breaker.state} "
          f"quality={result.stats.quality}")


def check_worker_crash(dataset):
    engine = DistributedMCKEngine(
        dataset, n_workers=4, metrics=MetricsRegistry(), retry_backoff_seconds=0.0
    )
    baseline = engine.query(QUERY)
    with faults.injected(
        "distributed.worker.answer",
        error=lambda: WorkerCrashed(-1, "injected"),
        times=1,
    ):
        result = engine.query(QUERY)
    if result.worker_crashes != 1 or result.worker_retries != 1:
        fail(
            f"expected 1 crash / 1 retry, got {result.worker_crashes} / "
            f"{result.worker_retries}"
        )
    if abs(result.group.diameter - baseline.group.diameter) > 1e-9:
        fail("answer after respawn differs from the healthy run")
    crashes = engine.metrics.counter("mck_worker_crashes_total").value(
        round="bound"
    )
    if crashes != 1.0:
        fail(f"mck_worker_crashes_total should read 1, reads {crashes}")
    print(f"  worker-crash: crashes={result.worker_crashes} "
          f"retries={result.worker_retries} diameter={result.group.diameter:.4f}")


def check_cli(tmp):
    json_path = os.path.join(tmp, "bench.json")
    prom_path = os.path.join(tmp, "bench.prom")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve-bench",
            "--scale", "0.01",
            "--queries", "6",
            "--repeat", "1",
            "--m", "3",
            "--algorithms", "SKECa+",
            "--timeout", "0.002",
            "--inject-fault", "slow-scan:delay=0.01,times=0",
            "--output", json_path,
            "--prom-out", prom_path,
        ],
        env=env,
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=300,
    )
    if proc.returncode != 0:
        fail(f"serve-bench exited {proc.returncode}: {proc.stderr[-800:]}")
    dump = json.loads(Path(json_path).read_text())
    degraded = dump["workload"]["degraded"]
    if degraded < 1:
        fail("serve-bench under slow-scan + tight timeout degraded nothing")
    if dump["workload"]["injected_faults"] != ["slow-scan:delay=0.01,times=0"]:
        fail("injected fault spec not recorded in the workload summary")
    prom = Path(prom_path).read_text()
    if "mck_degraded_total{" not in prom:
        fail("mck_degraded_total missing from serve-bench --prom-out")
    print(f"  cli: degraded={degraded} prom={len(prom.splitlines())} lines")


def main() -> int:
    dataset = make_dataset()
    print("fault-smoke: scenarios")
    check_degrade(dataset)
    check_strict(dataset)
    check_pool_retry(dataset)
    check_breaker_fallback(dataset)
    check_worker_crash(dataset)
    with tempfile.TemporaryDirectory() as tmp:
        check_cli(tmp)
    print("fault-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
