#!/usr/bin/env python
"""HTTP serving-tier smoke check: the network contract, over real sockets.

Five scenarios against in-process servers on loopback:

1. **Wire basics.** Health, readiness, a query answered over the wire
   matching the in-process engine's answer, top-k, Prometheus metrics
   exposition carrying the HTTP families.
2. **Mutations.** A live-engine server applies inserts/deletes over the
   wire; a follow-up query sees the new object; a sealed-dataset server
   answers 409.
3. **Overload.** An injected admission-rejection burst surfaces as HTTP
   429 with a sane ``Retry-After``; ``/readyz`` flips unready (503)
   strictly *before* the admission queue saturates, so a load balancer
   sheds first while arriving requests are still admitted.
4. **Forensics.** A slow over-the-wire query (injected circleScan delay +
   clock skew) comes back degraded with its quality tag, the flight
   recorder retains its trace, and EXPLAIN rides the response body.
5. **Open loop.** The Poisson load generator completes a short run and
   reports p50/p95 and per-status counts.

Run from the repo root: ``python scripts/http_smoke.py``.
"""

import json
import logging
import sys
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

logging.getLogger("repro").setLevel(logging.ERROR)

from repro import Dataset  # noqa: E402
from repro.live import LiveMCKEngine  # noqa: E402
from repro.observability.flight import FlightRecorder  # noqa: E402
from repro.server import MCKServer, run_http_load  # noqa: E402
from repro.serving import MetricsRegistry, QueryService  # noqa: E402
from repro.testing import faults  # noqa: E402

QUERY = ["shrine", "shop", "restaurant", "hotel"]
RECORDS = [
    (10.0, 10.0, ["shrine"]),
    (11.0, 10.5, ["shop"]),
    (10.5, 11.0, ["restaurant"]),
    (11.2, 11.2, ["hotel"]),
    (50.0, 50.0, ["shrine", "cafe"]),
    (52.0, 50.0, ["shop"]),
    (90.0, 10.0, ["restaurant"]),
    (10.0, 90.0, ["hotel"]),
    (60.0, 60.0, ["cafe"]),
]


def fail(message):
    print(f"http-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def call(handle, method, path, body=None, timeout=60):
    conn = HTTPConnection(handle.host, handle.port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body).encode()
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        raw = response.read()
        headers = dict(response.getheaders())
    finally:
        conn.close()
    try:
        document = json.loads(raw)
    except ValueError:
        document = raw.decode("utf-8", "replace")
    return response.status, document, headers


def check_wire_basics():
    dataset = Dataset.from_records(RECORDS, name="smoke")
    service = QueryService(dataset, max_workers=2, metrics=MetricsRegistry())
    handle = MCKServer(service, owns_service=True).run_in_thread()
    try:
        status, body, _ = call(handle, "GET", "/healthz")
        if status != 200:
            fail(f"healthz returned {status}")
        status, body, _ = call(handle, "GET", "/readyz")
        if status != 200 or body["ready"] is not True:
            fail(f"readyz not ready while idle: {status} {body}")

        status, body, _ = call(
            handle, "POST", "/query",
            {"keywords": QUERY, "algorithm": "EXACT"},
        )
        if status != 200 or body["status"] != "ok":
            fail(f"query failed over the wire: {status} {body}")
        direct = service.engine.query(QUERY, algorithm="EXACT")
        if sorted(body["object_ids"]) != sorted(direct.object_ids):
            fail(
                f"wire answer {body['object_ids']} != "
                f"inline {list(direct.object_ids)}"
            )
        if abs(body["diameter"] - direct.diameter) > 1e-9:
            fail("wire diameter diverges from inline answer")

        status, body, _ = call(
            handle, "GET", "/topk?keywords=shrine,shop&k=2&algorithm=EXACT"
        )
        if status != 200 or not body["groups"]:
            fail(f"topk failed: {status} {body}")

        status, text, _ = call(handle, "GET", "/metrics")
        for family in ("mck_http_requests_total", "mck_server_ready",
                       "mck_query_latency_seconds"):
            if family not in text:
                fail(f"/metrics is missing {family}")

        status, _, _ = call(handle, "GET", "/no-such-route")
        if status != 404:
            fail(f"unknown route returned {status}, want 404")
    finally:
        handle.stop()
    print("http-smoke: wire basics OK (query/topk/metrics/readyz)")


def check_mutations():
    engine = LiveMCKEngine.from_records(RECORDS, name="smoke-live")
    service = QueryService(engine, max_workers=2, metrics=MetricsRegistry())
    handle = MCKServer(service, owns_service=True).run_in_thread()
    try:
        status, body, _ = call(
            handle, "POST", "/mutate",
            {"inserts": [[10.6, 10.6, ["tearoom"]]], "deletes": [8]},
        )
        if status != 200 or len(body["oids"]) != 1:
            fail(f"mutation failed: {status} {body}")
        new_oid = body["oids"][0]
        status, body, _ = call(
            handle, "POST", "/query", {"keywords": ["shrine", "tearoom"]}
        )
        if status != 200 or new_oid not in body["object_ids"]:
            fail(f"query does not see the wire-inserted object: {body}")
    finally:
        handle.stop()

    dataset = Dataset.from_records(RECORDS, name="smoke-sealed")
    service = QueryService(dataset, metrics=MetricsRegistry())
    handle = MCKServer(service, owns_service=True).run_in_thread()
    try:
        status, _, _ = call(
            handle, "POST", "/mutate", {"inserts": [[0.0, 0.0, ["x"]]]}
        )
        if status != 409:
            fail(f"sealed-dataset mutation returned {status}, want 409")
    finally:
        handle.stop()
    print("http-smoke: mutations OK (wire insert/delete visible, sealed=409)")


def check_overload():
    dataset = Dataset.from_records(RECORDS, name="smoke-overload")
    service = QueryService(
        dataset,
        max_workers=1,
        admission_capacity=8,
        cache_size=0,
        metrics=MetricsRegistry(),
    )
    handle = MCKServer(
        service, ready_fraction=0.5, owns_service=True
    ).run_in_thread()
    try:
        # --- readiness flips before rejections saturate ---------------
        gate = threading.Event()
        parked = [service.admission.submit(gate.wait)]
        time.sleep(0.05)  # worker picks up the gated task
        for _ in range(4):  # depth 4 == ceil(0.5 * 8): unready, not full
            parked.append(service.admission.submit(gate.wait))
        status, body, _ = call(handle, "GET", "/readyz")
        if status != 503 or body["ready"] is not False:
            fail(f"readyz did not flip under queue pressure: {status} {body}")
        if body["queue_depth"] >= body["capacity"]:
            fail("readyz flipped only at saturation; must flip before")
        # Still admitted below capacity: shedding belongs to the balancer
        # at this depth, not to 429s.
        parked.append(service.admission.submit(gate.wait))
        gate.set()
        for future in parked:
            future.result(timeout=30)
        deadline = time.time() + 5.0
        while time.time() < deadline:
            status, body, _ = call(handle, "GET", "/readyz")
            if status == 200:
                break
            time.sleep(0.02)
        else:
            fail("readyz never recovered after the queue drained")

        # --- injected rejection burst -> 429 + Retry-After ------------
        fault = faults.arm_spec("admission-reject:times=0")  # unlimited
        rejected = 0
        try:
            for _ in range(10):
                status, body, headers = call(
                    handle, "POST", "/query", {"keywords": QUERY}
                )
                if status != 429:
                    fail(f"expected 429 under injected overload, got {status}")
                if body.get("reason") != "injected":
                    fail(f"429 body lacks the typed reason: {body}")
                retry_after = headers.get("Retry-After", "")
                if not retry_after.isdigit() or not (
                    1 <= int(retry_after) <= 30
                ):
                    fail(f"bad Retry-After {retry_after!r}")
                rejected += 1
        finally:
            faults.disarm(fault)
        # Recovery: the same request is served once the fault clears.
        status, body, _ = call(handle, "POST", "/query", {"keywords": QUERY})
        if status != 200:
            fail(f"service did not recover after the burst: {status}")
        counters = service.admission.counters()
        if counters["submitted"] != counters["accepted"] + counters["rejected"]:
            fail(f"conservation violated after burst: {counters}")
    finally:
        handle.stop()
    print(
        f"http-smoke: overload OK ({rejected}x 429 with Retry-After, "
        "readyz shed first, counters conserved)"
    )


def check_forensics():
    dataset = Dataset.from_records(RECORDS, name="smoke-forensics")
    flight = FlightRecorder()
    service = QueryService(
        dataset, max_workers=1, cache_size=0,
        metrics=MetricsRegistry(), flight=flight,
    )
    handle = MCKServer(service, owns_service=True).run_in_thread()
    try:
        with faults.injected(
            "core.deadline.clock", skew=1e9, after=2, times=None
        ):
            status, body, _ = call(
                handle, "POST", "/query",
                {
                    "keywords": QUERY,
                    "algorithm": "EXACT",
                    "timeout": 60.0,
                    "explain": True,
                },
            )
        if status != 200 or body["status"] != "degraded":
            fail(f"slow query did not degrade gracefully: {status} {body}")
        if not body.get("quality"):
            fail("degraded answer carries no quality tag over the wire")
        if not body.get("explain", {}).get("phases"):
            fail("EXPLAIN did not ride the response for a wire query")
        trace_id = body["trace_id"]
        if not trace_id:
            fail("no trace id for an over-the-wire query")
        retained = {t.trace_id for t in flight.traces()}
        if trace_id not in retained:
            fail(
                f"flight recorder did not retain the degraded wire query "
                f"({trace_id} not in {len(retained)} retained)"
            )
        status, body, _ = call(handle, "GET", "/flightz")
        if status != 200 or body["stats"]["completed"] < 1:
            fail(f"/flightz does not report the retained trace: {body}")
    finally:
        handle.stop()
    print("http-smoke: forensics OK (degraded+quality tag, EXPLAIN, "
          "flight retention for wire queries)")


def check_open_loop():
    dataset = Dataset.from_records(RECORDS, name="smoke-loadgen")
    service = QueryService(dataset, max_workers=2, metrics=MetricsRegistry())
    handle = MCKServer(service, owns_service=True).run_in_thread()
    try:
        result = run_http_load(
            handle.host,
            handle.port,
            [QUERY, ["shrine", "shop"], ["restaurant", "hotel"]],
            rate=60.0,
            duration=1.0,
            algorithm=["EXACT", "SKECa+"],
            seed=3,
        )
    finally:
        handle.stop()
    if result.offered == 0:
        fail("load generator offered nothing")
    if result.completed + result.rejected + result.errors != result.offered:
        fail(f"load accounting leaks requests: {result.as_dict()}")
    if result.errors:
        fail(f"open-loop run saw server errors: {result.as_dict()}")
    p50, p95 = result.percentile(0.5), result.percentile(0.95)
    if p50 is None or p95 is None or p95 < p50:
        fail(f"nonsense percentiles: p50={p50} p95={p95}")
    print(
        f"http-smoke: open loop OK ({result.offered} offered, "
        f"{result.completed} completed, p50={p50 * 1e3:.1f}ms "
        f"p95={p95 * 1e3:.1f}ms)"
    )


def main():
    check_wire_basics()
    check_mutations()
    check_overload()
    check_forensics()
    check_open_loop()
    print("http-smoke: all checks passed")


if __name__ == "__main__":
    main()
